"""Benchmark regenerating the non-uniform score-distribution experiment."""

from conftest import run_experiment

from repro.experiments import distributions_exp


def test_distributions(benchmark):
    """T1-on vs Naive across uniform/gaussian/triangular/pareto scores."""
    table = run_experiment(benchmark, distributions_exp, "DIST")
    aggregated = table.aggregate(["workload", "policy", "budget"], ["distance"])
    budgets = sorted({r["budget"] for r in aggregated.rows})
    cells = {
        (r["workload"], r["policy"], r["budget"]): r["distance"]
        for r in aggregated.rows
    }
    # Paper claim: the proposed algorithm works under every pdf family —
    # T1-on at the top budget never loses to Naive by more than noise.
    for workload in ("uniform", "gaussian", "triangular", "pareto"):
        assert (
            cells[(workload, "T1-on", budgets[-1])]
            <= cells[(workload, "naive", budgets[-1])] + 0.05
        )
