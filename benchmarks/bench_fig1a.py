"""Benchmark regenerating Figure 1(a): distance to ω_r vs budget."""

from conftest import run_experiment

from repro.experiments import fig1a


def test_fig1a(benchmark):
    """Distance-vs-budget grid for T1-on/TB-off/C-off/incr/naive/random."""
    table = run_experiment(benchmark, fig1a, "FIG1A")
    aggregated = table.aggregate(["policy", "budget"], ["distance"])
    by_cell = {
        (r["policy"], r["budget"]): r["distance"] for r in aggregated.rows
    }
    budgets = sorted({r["budget"] for r in aggregated.rows})
    top_budget = budgets[-1]
    # Paper shape: every proposed algorithm beats Random at the top budget,
    # and budget monotonically improves T1-on.
    for proposed in ("T1-on", "TB-off", "C-off"):
        assert by_cell[(proposed, top_budget)] <= by_cell[("random", top_budget)] + 1e-9
    assert by_cell[("T1-on", top_budget)] <= by_cell[("T1-on", budgets[0])] + 1e-9
