"""Selection-step benchmark: batched vs scalar residual evaluation.

Times the two hot selection steps of the question-selection policies on the
paper-scale ``N=30, K=5`` instance:

* **T1-on / TB-off step** — score every candidate question by its expected
  residual uncertainty ``R_q`` (``rank_singles`` scalar oracle vs
  ``rank_singles_batch``);
* **C-off step** — greedy joint-residual selection of a 5-question batch
  (per-candidate ``set_residual_from_codes_scalar`` vs the batched
  ``rank_set_extensions`` path the policy now uses).

Both paths must agree to 1e-9; the batched path must be at least 5× faster
(the acceptance bar of the batch-engine PR).  Exit status is non-zero when
either check fails, so CI can gate on it; ``--json PATH`` additionally
writes the measurements as a machine-readable artifact
(``BENCH_policies.json`` in CI) for regression tracking across runs.

Run:   PYTHONPATH=src python benchmarks/bench_policies.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core.policies.conditional import ConditionalPolicy
from repro.utils.provenance import artifact_stamp
from repro.questions.candidates import relevant_questions
from repro.questions.model import Question
from repro.questions.residual import ResidualEvaluator
from repro.tpo.builders import GridBuilder
from repro.tpo.space import OrderingSpace
from repro.uncertainty.entropy import EntropyMeasure
from repro.workloads.synthetic import uniform_intervals

SPEEDUP_FLOOR = 5.0
PARITY_ATOL = 1e-9


def best_of(callable_, repetitions: int) -> float:
    """Minimum wall-clock of ``repetitions`` runs (noise-robust)."""
    timings = []
    for _ in range(repetitions):
        start = time.perf_counter()
        callable_()
        timings.append(time.perf_counter() - start)
    return min(timings)


def scalar_coff_select(
    space: OrderingSpace,
    candidates: List[Question],
    budget: int,
    evaluator: ResidualEvaluator,
) -> List[Question]:
    """The seed's C-off selection loop over the scalar residual oracle."""
    codes = np.stack(
        [space.agreement_codes(q.i, q.j) for q in candidates], axis=1
    )
    chosen: List[int] = []
    available = list(range(len(candidates)))
    for _ in range(min(budget, len(candidates))):
        best_column, best_value = None, np.inf
        for column in available:
            value = evaluator.set_residual_from_codes_scalar(
                space, codes[:, chosen + [column]]
            )
            if value < best_value - 1e-15:
                best_value, best_column = value, column
        if best_column is None:
            break
        chosen.append(best_column)
        available.remove(best_column)
        if best_value <= 1e-12:
            break
    return [candidates[c] for c in chosen]


def run(smoke: bool = False, json_path: Optional[str] = None) -> int:
    if smoke:
        n, k, width, repetitions = 15, 4, 0.25, 1
    else:
        n, k, width, repetitions = 30, 5, 0.3, 3
    distributions = uniform_intervals(n, width=width, rng=2016)
    space = (
        GridBuilder(resolution=512, max_orderings=500000)
        .build(distributions, k)
        .to_space()
    )
    candidates = relevant_questions(space, distributions)
    evaluator = ResidualEvaluator(EntropyMeasure())
    print(
        f"instance: N={n} K={k} width={width} → "
        f"L={space.size} orderings, B={len(candidates)} candidates"
    )

    failures = 0
    checks: List[dict] = []

    # ------------------------------------------------------------------
    # T1-on / TB-off selection step: score all candidates.
    # ------------------------------------------------------------------
    scalar_values = evaluator.rank_singles(space, candidates)
    batch_values = evaluator.rank_singles_batch(space, candidates)
    max_error = float(np.max(np.abs(scalar_values - batch_values)))
    scalar_time = best_of(
        lambda: evaluator.rank_singles(space, candidates), repetitions
    )
    batch_time = best_of(
        lambda: evaluator.rank_singles_batch(space, candidates), repetitions
    )
    speedup = scalar_time / batch_time
    print(
        f"top-1/TB step : scalar {scalar_time * 1e3:8.2f} ms   "
        f"batch {batch_time * 1e3:8.2f} ms   "
        f"speedup {speedup:6.1f}x   max|Δ| {max_error:.2e}"
    )
    if max_error > PARITY_ATOL:
        print(f"  FAIL: parity error exceeds {PARITY_ATOL}")
        failures += 1
    if not smoke and speedup < SPEEDUP_FLOOR:
        print(f"  FAIL: speedup below the {SPEEDUP_FLOOR}x floor")
        failures += 1
    checks.append(
        {
            "name": "rank_singles",
            "scalar_ms": scalar_time * 1e3,
            "batch_ms": batch_time * 1e3,
            "speedup": speedup,
            "max_error": max_error,
            "gated": not smoke,
        }
    )

    # ------------------------------------------------------------------
    # C-off selection step: pick a K-question batch greedily.
    # ------------------------------------------------------------------
    policy = ConditionalPolicy()
    rng = np.random.default_rng(0)
    scalar_batch = scalar_coff_select(space, candidates, k, evaluator)
    batched_batch = policy.select(space, candidates, k, evaluator, rng)
    scalar_time = best_of(
        lambda: scalar_coff_select(space, candidates, k, evaluator),
        repetitions,
    )
    batch_time = best_of(
        lambda: policy.select(space, candidates, k, evaluator, rng),
        repetitions,
    )
    speedup = scalar_time / batch_time
    agree = scalar_batch == batched_batch
    print(
        f"C-off step    : scalar {scalar_time * 1e3:8.2f} ms   "
        f"batch {batch_time * 1e3:8.2f} ms   "
        f"speedup {speedup:6.1f}x   same batch: {agree}"
    )
    if not agree:
        print("  FAIL: batched C-off picked a different question batch")
        failures += 1
    if not smoke and speedup < SPEEDUP_FLOOR:
        print(f"  FAIL: speedup below the {SPEEDUP_FLOOR}x floor")
        failures += 1
    checks.append(
        {
            "name": "coff_select",
            "scalar_ms": scalar_time * 1e3,
            "batch_ms": batch_time * 1e3,
            "speedup": speedup,
            "same_batch": agree,
            "gated": not smoke,
        }
    )

    if json_path is not None:
        artifact = {
            "benchmark": "bench_policies",
            **artifact_stamp(),
            "instance": {"n": n, "k": k, "width": width, "smoke": smoke},
            "speedup_floor": SPEEDUP_FLOOR,
            "parity_atol": PARITY_ATOL,
            "checks": checks,
            "failures": failures,
        }
        Path(json_path).write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"wrote {json_path}")

    print("PASS" if failures == 0 else f"{failures} check(s) FAILED")
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small instance, single repetition, no speedup floor (CI)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write measurements as a JSON artifact (e.g. BENCH_policies.json)",
    )
    args = parser.parse_args()
    sys.exit(1 if run(smoke=args.smoke, json_path=args.json) else 0)


if __name__ == "__main__":
    main()
