"""Benchmark regenerating the A*-vs-fast-algorithms comparison (ASTAR)."""

from conftest import run_experiment

from repro.experiments import astar_comparison


def test_astar(benchmark):
    """Quality and CPU of A*-off/A*-on next to T1-on/TB-off/C-off."""
    table = run_experiment(benchmark, astar_comparison, "ASTAR")
    aggregated = table.aggregate(["policy"], ["distance", "cpu"])
    rows = {r["policy"]: r for r in aggregated.rows}
    # Paper shape: greedy quality within a whisker of A*, far cheaper.
    assert rows["T1-on"]["distance"] <= rows["A*-off"]["distance"] + 0.1
    assert rows["T1-on"]["cpu"] <= rows["A*-off"]["cpu"]
