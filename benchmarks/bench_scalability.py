"""Benchmark regenerating the N/K scalability sweep (SCALE)."""

from conftest import run_experiment

from repro.experiments import scalability


def test_scalability(benchmark):
    """Build + session CPU per engine as N and K grow."""
    table = run_experiment(benchmark, scalability, "SCALE")
    aggregated = table.aggregate(["sweep", "engine", "n", "k"], ["build_cpu"])
    # Sanity: every sweep point produced a measurement.
    assert len(aggregated.rows) > 0
