"""Benchmark regenerating Figure 1(b): CPU seconds vs budget."""

from conftest import run_experiment

from repro.experiments import fig1b


def test_fig1b(benchmark):
    """CPU-vs-budget grid for the four fast algorithms."""
    table = run_experiment(benchmark, fig1b, "FIG1B")
    aggregated = table.aggregate(["policy"], ["cpu"])
    cpu = {r["policy"]: r["cpu"] for r in aggregated.rows}
    # Paper shape: C-off is the costliest of the four; incr the cheapest.
    assert cpu["C-off"] >= cpu["TB-off"]
    assert cpu["incr"] <= cpu["C-off"]
