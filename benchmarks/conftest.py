"""Shared benchmark plumbing.

Every benchmark regenerates one paper artifact (DESIGN.md §5): it runs the
experiment's ``fast`` grid under ``pytest-benchmark`` timing and prints the
paper-shaped series/rows (visible with ``pytest -s`` or in the captured
output block); raw records are also written to ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def run_experiment(benchmark, module, experiment_id: str, fast: bool = True):
    """Benchmark an experiment module and persist + print its report."""
    table = benchmark.pedantic(
        module.run, kwargs={"fast": fast}, iterations=1, rounds=1
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    table.to_csv(RESULTS_DIR / f"{experiment_id.lower()}.csv")
    print()
    print(module.report(table))
    return table
