"""Benchmark regenerating the uncertainty-measure comparison (MEAS)."""

from conftest import run_experiment

from repro.experiments import measures


def test_measures(benchmark):
    """Final distance when T1-on is driven by U_H / U_Hw / U_ORA / U_MPO."""
    table = run_experiment(benchmark, measures, "MEAS")
    aggregated = table.aggregate(["measure"], ["distance"])
    values = {r["measure"]: r["distance"] for r in aggregated.rows}
    # Paper claim: at least one structural measure does not lose to U_H.
    structural_best = min(values["Hw"], values["ORA"], values["MPO"])
    assert structural_best <= values["H"] + 0.05
