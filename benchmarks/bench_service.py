"""Service-layer benchmark entry point (sessions/sec, cache hit rate).

Thin wrapper around :mod:`repro.service.bench` so the benchmark runs the
same way the other ``benchmarks/bench_*.py`` scripts do; the measurement
logic lives in the package, where ``repro bench-service`` shares it.

Run:  PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service.bench import main

if __name__ == "__main__":
    sys.exit(1 if main() else 0)
