"""Micro-benchmarks of the three TPO construction engines.

Not a paper artifact per se, but the cost model behind Figure 1(b): how
expensive is materializing ``T_K`` itself under each engine on the
standard Figure-1 workload.
"""

import pytest

from repro.tpo import ExactBuilder, GridBuilder, MonteCarloBuilder
from repro.workloads import uniform_intervals

N, K, WIDTH, SEED = 12, 6, 0.2, 11


@pytest.fixture(scope="module")
def workload():
    """The Figure-1-style uniform-interval workload (fixed seed)."""
    return uniform_intervals(N, width=WIDTH, rng=SEED)


def test_grid_engine(benchmark, workload):
    """Grid engine (the default)."""
    tree = benchmark(lambda: GridBuilder(resolution=800).build(workload, K))
    assert tree.is_complete


def test_exact_engine(benchmark, workload):
    """Exact piecewise-polynomial engine (the test oracle)."""
    tree = benchmark.pedantic(
        lambda: ExactBuilder().build(workload, K), iterations=1, rounds=2
    )
    assert tree.is_complete


def test_mc_engine(benchmark, workload):
    """Monte Carlo engine at 50k samples."""
    tree = benchmark(
        lambda: MonteCarloBuilder(samples=50000, seed=SEED).build(workload, K)
    )
    assert tree.is_complete
