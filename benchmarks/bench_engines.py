"""TPO construction benchmark entry point (flat grid vs pointer baseline).

Thin wrapper around :mod:`repro.tpo.bench` so the benchmark runs the same
way the other ``benchmarks/bench_*.py`` scripts do; the measurement logic
lives in the package, where ``repro bench-engines`` shares it.

Gates (CI): the flat level-table grid engine must reproduce the pointer
baseline's leaf probabilities to ≤ 1e-9 and build ≥ 4× faster on the
full-size instance.

Run:  PYTHONPATH=src python benchmarks/bench_engines.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.tpo.bench import main

if __name__ == "__main__":
    sys.exit(1 if main() else 0)
