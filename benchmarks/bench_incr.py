"""Benchmark regenerating the incr round-size ablation (INCR)."""

from conftest import run_experiment

from repro.experiments import incr_ablation


def test_incr(benchmark):
    """Distance/CPU of incr across round sizes vs full-tree T1-on."""
    table = run_experiment(benchmark, incr_ablation, "INCR")
    aggregated = table.aggregate(["arm"], ["distance", "cpu"])
    rows = {r["arm"]: r for r in aggregated.rows}
    reference = rows["T1-on (full tree)"]
    incr_rows = [r for arm, r in rows.items() if arm.startswith("incr")]
    # Paper shape: incr's CPU is below the full-tree algorithm for every n.
    assert all(r["cpu"] <= reference["cpu"] + 1e-9 for r in incr_rows)
