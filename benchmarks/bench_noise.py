"""Benchmark regenerating the noisy-worker experiment (NOISE)."""

from conftest import run_experiment

from repro.experiments import noisy


def test_noise(benchmark):
    """Distance vs budget for worker accuracies 1.0/0.9/0.8/0.7 (+voting)."""
    table = run_experiment(benchmark, noisy, "NOISE")
    aggregated = table.aggregate(["arm", "budget"], ["distance"])
    budgets = sorted({r["budget"] for r in aggregated.rows})
    cells = {(r["arm"], r["budget"]): r["distance"] for r in aggregated.rows}
    # Paper shape: even noisy answers reduce distance versus budget 0.
    for arm in ("p=1", "p=0.9", "p=0.8"):
        assert cells[(arm, budgets[-1])] <= cells[(arm, budgets[0])] + 1e-9
