"""Benchmark for the transitive-inference ablation (TRANS, extension)."""

from conftest import run_experiment

from repro.experiments import transitive_ablation


def test_transitive(benchmark):
    """Distance at equal paid budget, closure on vs off, + free answers."""
    table = run_experiment(benchmark, transitive_ablation, "TRANS")
    aggregated = table.aggregate(["arm", "budget"], ["distance"])
    budgets = sorted({r["budget"] for r in aggregated.rows})
    cells = {(r["arm"], r["budget"]): r["distance"] for r in aggregated.rows}
    # The closure never hurts at equal paid budget (it only adds answers).
    for policy in ("T1-on", "naive"):
        assert cells[(f"{policy}+closure", budgets[-1])] <= (
            cells[(policy, budgets[-1])] + 0.02
        )
