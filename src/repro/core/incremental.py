"""``incr`` — the incremental TPO construction algorithm (§III-D).

The offline/online algorithms above all materialize the full ``T_K`` before
selecting questions — prohibitive for large, highly uncertain datasets
whose trees hold millions of orderings.  ``incr`` interleaves:

1. build the TPO one level at a time (``T_1, T_2, …``), but only when the
   current partial tree does not offer enough candidate questions;
2. select the best ``n`` questions on the *partial* tree, pose them, and
   prune/reweight with the answers (answers about shallow levels prune
   subtrees that will then never be materialized).

The round size ``n`` interpolates between a fully online (``n = 1``) and a
fully offline (``n = B``) interaction pattern, which is why the paper calls
``incr`` a hybrid.  After the budget is exhausted the tree is completed to
depth K (re-applying all collected constraints) so the result is comparable
with the other algorithms.

Every step of the loop leans on the flat level-table tree: ``extend``
appends one array-backed level in a single batched pass, pruning
propagates alive-masks down the tables (compacting the builder's
frontier payload with them), and the repeated ``to_space`` flattenings
between rounds are vectorized gathers rather than per-leaf walks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from repro.core.policies.base import Policy
from repro.questions.candidates import informative_questions
from repro.questions.model import Answer
from repro.tpo.space import DegenerateSpaceError, OrderingSpace
from repro.tpo.tree import TPOTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.session import UncertaintyReductionSession


class IncrementalAlgorithm(Policy):
    """Hybrid level-by-level construction + rounds of ``n`` questions.

    Parameters
    ----------
    round_size:
        Questions posed per round (the paper's ``n``, ``1 ≤ n ≤ B``).
    """

    name = "incr"

    def __init__(self, round_size: int = 5) -> None:
        if round_size < 1:
            raise ValueError(f"round_size must be >= 1, got {round_size}")
        self.round_size = round_size

    # ------------------------------------------------------------------

    def run(
        self,
        session: "UncertaintyReductionSession",
        budget: int,
    ) -> tuple:
        """Drive the whole loop; returns ``(final_space, answers)``.

        Called by :meth:`UncertaintyReductionSession.run`, which provides
        the builder, crowd, evaluator, and stopwatch.
        """
        builder = session.builder
        crowd = session.crowd
        evaluator = session.evaluator
        watch = session.watch
        answers: List[Answer] = []
        counted_contradictions: set = set()
        with watch.span("build"):
            tree = builder.start(session.distributions, session.k)
            builder.extend(tree)
            tree.renormalize()
        asked = 0
        while asked < budget:
            space = self._current_space(tree, answers)
            with watch.span("select"):
                candidates = informative_questions(space)
            # Build deeper levels only when questions run short (§III-D).
            while (
                len(candidates) < min(self.round_size, budget - asked)
                and not tree.is_complete
            ):
                with watch.span("build"):
                    self._extend_with_constraints(
                        builder, tree, answers, evaluator, counted_contradictions
                    )
                space = self._current_space(tree, answers)
                with watch.span("select"):
                    candidates = informative_questions(space)
            if not candidates:
                break
            round_budget = min(self.round_size, budget - asked, len(candidates))
            with watch.span("select"):
                residuals = evaluator.rank_singles_batch(space, candidates)
                order = np.argsort(residuals, kind="stable")[:round_budget]
                chosen = [candidates[int(c)] for c in order]
            for question in chosen:
                answer = crowd.ask(question)
                answers.append(answer)
                asked += 1
                with watch.span("update"):
                    self._apply_answer(
                        tree, answer, evaluator, counted_contradictions
                    )
            if tree.is_complete and self._current_space(tree, answers).is_certain:
                break
        # Complete the tree so the final space is a genuine T_K.
        while not tree.is_complete:
            with watch.span("build"):
                self._extend_with_constraints(
                    builder, tree, answers, evaluator, counted_contradictions
                )
        return self._current_space(tree, answers), answers

    # ------------------------------------------------------------------

    def _count_contradiction(self, evaluator, counted, answer: Answer) -> None:
        """Count a swallowed contradiction once per answer per run.

        The replay loop re-applies every answer after each extension, so
        an answer that stays contradictory would otherwise be counted at
        every level; keying on the answer's identity keeps
        ``SessionResult.contradictions`` comparable to the other policies.
        """
        if evaluator is not None and id(answer) not in counted:
            counted.add(id(answer))
            evaluator.contradictions += 1

    def _apply_answer(
        self,
        tree: TPOTree,
        answer: Answer,
        evaluator,
        counted: set,
    ) -> None:
        """Prune (reliable) or reweight (noisy) the partial tree."""
        q = answer.question
        if answer.accuracy >= 1.0:
            try:
                tree.prune_with_answer(q.i, q.j, answer.holds)
            except DegenerateSpaceError:
                # Contradictory answer: keep the tree consistent, but
                # count it so SessionResult.contradictions reports incr
                # runs the same way as the other policies.
                self._count_contradiction(evaluator, counted, answer)
        # Noisy answers are replayed on the flattened space instead (the
        # per-leaf weights would be double-counted across extensions).

    def _extend_with_constraints(
        self,
        builder,
        tree: TPOTree,
        answers: List[Answer],
        evaluator,
        counted: set,
    ) -> None:
        """Add one level, then re-apply all reliable answers.

        New nodes may contradict earlier answers (the pruned pair can
        reappear deeper in the tree), so pruning must be replayed after
        every extension — it is idempotent.  An answer that only *becomes*
        contradictory here (deeper levels plus other prunings can leave it
        no consistent ordering) is still a swallowed contradiction and is
        counted, once, like a first-application one.
        """
        builder.extend(tree)
        for answer in answers:
            if answer.accuracy >= 1.0:
                q = answer.question
                try:
                    tree.prune_with_answer(q.i, q.j, answer.holds)
                except DegenerateSpaceError:
                    self._count_contradiction(evaluator, counted, answer)
        tree.renormalize()

    def _current_space(
        self, tree: TPOTree, answers: List[Answer]
    ) -> OrderingSpace:
        """Flatten the tree and replay noisy answers as reweightings."""
        space = tree.to_space()
        for answer in answers:
            if answer.accuracy < 1.0:
                q = answer.question
                try:
                    space = space.reweight_by_answer(
                        q.i, q.j, answer.holds, answer.accuracy
                    )
                except DegenerateSpaceError:
                    pass
        return space


__all__ = ["IncrementalAlgorithm"]
