"""The uncertainty-reduction session: policy × crowd × TPO orchestration.

A session owns everything one top-K-with-crowd run needs — the uncertain
scores, the TPO builder, the uncertainty measure, and the (simulated)
crowd — and executes a question-selection policy against a budget, keeping
the books the experiments need: questions asked, CPU time split into
build/select/update, uncertainty before/after, and the paper's quality
metric ``D(ω_r, T_K)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.incremental import IncrementalAlgorithm
from repro.core.policies.base import (
    POOL_ALL,
    OfflinePolicy,
    OnlinePolicy,
    Policy,
)
from repro.crowd.simulator import SimulatedCrowd
from repro.distributions.base import ScoreDistribution
from repro.questions.candidates import all_pair_questions, relevant_questions
from repro.questions.model import Answer, Question
from repro.questions.residual import ResidualEvaluator, select_min_residual
from repro.questions.transitive import InferenceCache
from repro.rank.kendall import DEFAULT_PENALTY, expected_topk_distance
from repro.tpo.builders import ENGINES, TPOBuilder
from repro.tpo.space import OrderingSpace
from repro.uncertainty.base import UncertaintyMeasure
from repro.uncertainty.entropy import EntropyMeasure
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timing import Stopwatch


@dataclass
class SessionResult:
    """Outcome of one policy run (one repetition of one experiment cell)."""

    policy: str
    budget: int
    questions_asked: int
    answers: List[Answer]
    final_space: OrderingSpace
    initial_uncertainty: float
    final_uncertainty: float
    distance_to_truth: float
    initial_distance: float
    orderings_initial: int
    orderings_final: int
    #: CPU seconds per session phase.  Exactly three keys may appear —
    #: ``"build"`` (TPO construction, including ``incr``'s level-by-level
    #: extensions), ``"select"`` (policy question scoring), and
    #: ``"update"`` (posterior pruning/reweighting after answers) — and a
    #: key is present only once its phase has run at least once (e.g. a
    #: zero-budget offline run never records ``"update"``).
    #: :attr:`cpu_seconds` is their sum.
    timings: Dict[str, float] = field(default_factory=dict)
    crowd_cost: float = 0.0
    #: ``D(ω_r, ·)`` before any question plus after every *charged* answer
    #: (inferred answers are applied but not recorded), so
    #: ``len(trajectory) == questions_asked + 1`` whenever tracked.
    trajectory: Optional[List[float]] = None
    #: Questions answered for free by transitive inference (0 unless the
    #: session was built with ``use_transitive_inference=True``).
    inferred_answers: int = 0
    #: Contradictory reliable answers swallowed during this run (the
    #: assumed accuracy overstated the crowd; the space was left
    #: unchanged).  Non-zero means the "reliable" crowd was in fact noisy.
    contradictions: int = 0

    @property
    def cpu_seconds(self) -> float:
        """Algorithm CPU time (build + select + update, no crowd latency)."""
        return sum(self.timings.values())

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.policy:>10s}  B={self.budget:<3d} asked={self.questions_asked:<3d} "
            f"D={self.distance_to_truth:.4f} (from {self.initial_distance:.4f})  "
            f"U={self.final_uncertainty:.4f} (from {self.initial_uncertainty:.4f})  "
            f"cpu={self.cpu_seconds:.3f}s"
        )


class UncertaintyReductionSession:
    """Runs question-selection policies over one uncertain top-K query.

    Parameters
    ----------
    distributions:
        Uncertain scores of the N tuples.
    k:
        Top-K depth of the query.
    crowd:
        Answer source (normally a :class:`SimulatedCrowd`); its ground
        truth also defines the quality metric.
    builder:
        TPO engine (default: grid).
    measure:
        Uncertainty measure driving all policies (default: ``U_H``).
    track_trajectory:
        When True, record ``D(ω_r, ·)`` after every answer.
    use_transitive_inference:
        When True (and the crowd is reliable), answers implied by the
        transitive closure of previous answers — or by disjoint pdf
        supports — are applied for free instead of being posted to the
        crowd, stretching the budget (see
        :mod:`repro.questions.transitive`).
    """

    def __init__(
        self,
        distributions: Sequence[ScoreDistribution],
        k: int,
        crowd: SimulatedCrowd,
        builder: Optional[TPOBuilder] = None,
        measure: Optional[UncertaintyMeasure] = None,
        penalty: float = DEFAULT_PENALTY,
        rng: SeedLike = None,
        track_trajectory: bool = False,
        use_transitive_inference: bool = False,
    ) -> None:
        self.distributions = list(distributions)
        self.k = min(k, len(self.distributions))
        self.crowd = crowd
        self.builder = (
            builder if builder is not None else ENGINES.create("grid")
        )
        self.measure = measure if measure is not None else EntropyMeasure()
        self.evaluator = ResidualEvaluator(self.measure)
        self.penalty = penalty
        self.rng = ensure_rng(rng)
        self.track_trajectory = track_trajectory
        self.use_transitive_inference = use_transitive_inference
        self.watch = Stopwatch()
        self._inference: Optional[InferenceCache] = None
        self._contradictions_at_start = self.evaluator.contradictions

    # ------------------------------------------------------------------

    def _distance(self, space: OrderingSpace) -> float:
        """The paper's ``D(ω_r, T_K)`` against the crowd's ground truth."""
        reference = self.crowd.truth.top_k(self.k)
        return expected_topk_distance(
            space, reference, penalty=self.penalty, normalized=True
        )

    def _candidates(self, space: OrderingSpace, pool: str) -> List[Question]:
        if pool == POOL_ALL:
            return all_pair_questions(space)
        return relevant_questions(space, self.distributions)

    # ------------------------------------------------------------------

    def run(self, policy: Policy, budget: int) -> SessionResult:
        """Execute ``policy`` with ``budget`` questions; returns the books.

        Every call starts from a freshly built TPO and the crowd's current
        ground truth; timings and crowd statistics are reset.
        """
        if budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self.watch.reset()
        self.crowd.stats.reset()
        self._contradictions_at_start = self.evaluator.contradictions
        self._inference = None
        if self.use_transitive_inference and self.crowd.is_reliable:
            self._inference = InferenceCache(
                len(self.distributions), self.distributions
            )
        if isinstance(policy, IncrementalAlgorithm):
            return self._run_incremental(policy, budget)
        with self.watch.span("build"):
            tree = self.builder.build(self.distributions, self.k)
            space = tree.to_space()
        initial_uncertainty = self.evaluator.uncertainty(space)
        initial_distance = self._distance(space)
        orderings_initial = space.size
        trajectory = [initial_distance] if self.track_trajectory else None
        answers: List[Answer] = []
        if isinstance(policy, OfflinePolicy):
            space = self._run_offline(policy, space, budget, answers, trajectory)
        elif isinstance(policy, OnlinePolicy):
            space = self._run_online(policy, space, budget, answers, trajectory)
        else:
            raise TypeError(
                f"{type(policy).__name__} is neither offline, online, nor incr"
            )
        return self._result(
            policy,
            budget,
            answers,
            space,
            initial_uncertainty,
            initial_distance,
            orderings_initial,
            trajectory,
        )

    # ------------------------------------------------------------------

    def _obtain_answer(self, question: Question) -> tuple:
        """Answer a question, for free when transitively implied.

        Returns ``(answer, was_inferred)``; inferred answers never reach
        the crowd and do not consume budget.
        """
        if self._inference is not None:
            inferred = self._inference.lookup(question)
            if inferred is not None:
                return inferred, True
        answer = self.crowd.ask(question)
        if self._inference is not None:
            self._inference.record(answer)
        return answer, False

    def _run_offline(
        self,
        policy: OfflinePolicy,
        space: OrderingSpace,
        budget: int,
        answers: List[Answer],
        trajectory: Optional[List[float]],
    ) -> OrderingSpace:
        with self.watch.span("select"):
            candidates = self._candidates(space, policy.pool)
            batch = policy.select(
                space, candidates, budget, self.evaluator, self.rng
            )
        for question in batch:
            answer, inferred = self._obtain_answer(question)
            if not inferred:
                answers.append(answer)
            with self.watch.span("update"):
                space = self.evaluator.apply_answer(
                    space, question, answer.holds, answer.accuracy
                )
            # Inferred answers are applied but consume no budget, so they
            # do not get a trajectory point: len(trajectory) must stay
            # questions_asked + 1.
            if trajectory is not None and not inferred:
                trajectory.append(self._distance(space))
        return space

    def _run_online(
        self,
        policy: OnlinePolicy,
        space: OrderingSpace,
        budget: int,
        answers: List[Answer],
        trajectory: Optional[List[float]],
    ) -> OrderingSpace:
        # Livelock guard: an inferred answer consumes no budget, and when
        # it also fails to shrink/reweight the space the iteration makes no
        # progress.  Questions known to be fruitless are filtered out of
        # the candidate pool, so any policy drawing from the pool —
        # deterministic or stochastic — falls through to a chargeable
        # question if one remains and returns None once none do.  A small
        # constant skip bound backstops policies that ignore the pool and
        # keep re-proposing a fruitless question.
        fruitless: set = set()
        consecutive_skips = 0
        while len(answers) < budget:
            with self.watch.span("select"):
                candidates = self._candidates(space, policy.pool)
                if fruitless:
                    candidates = [
                        q for q in candidates if q not in fruitless
                    ]
                question = policy.next_question(
                    space,
                    candidates,
                    budget - len(answers),
                    self.evaluator,
                    self.rng,
                )
            if question is None:
                break  # early termination: uncertainty exhausted
            if question in fruitless:
                consecutive_skips += 1
                if consecutive_skips > 8:
                    break  # policy keeps proposing a no-progress question
                continue
            answer, inferred = self._obtain_answer(question)
            if not inferred:
                answers.append(answer)
            with self.watch.span("update"):
                updated = self.evaluator.apply_answer(
                    space, question, answer.holds, answer.accuracy
                )
            if (not inferred) or (updated is not space):
                fruitless.clear()
                consecutive_skips = 0
            else:
                fruitless.add(question)
            space = updated
            if trajectory is not None and not inferred:
                trajectory.append(self._distance(space))
        return space

    def _run_incremental(
        self, policy: IncrementalAlgorithm, budget: int
    ) -> SessionResult:
        space, answers = policy.run(self, budget)
        # incr never materializes the unpruned T_K; initial metrics are
        # reported as NaN rather than paying the full construction cost.
        return self._result(
            policy,
            budget,
            answers,
            space,
            initial_uncertainty=float("nan"),
            initial_distance=float("nan"),
            orderings_initial=-1,
            trajectory=None,
        )

    # ------------------------------------------------------------------

    def _result(
        self,
        policy: Policy,
        budget: int,
        answers: List[Answer],
        space: OrderingSpace,
        initial_uncertainty: float,
        initial_distance: float,
        orderings_initial: int,
        trajectory: Optional[List[float]],
    ) -> SessionResult:
        return SessionResult(
            policy=policy.name,
            budget=budget,
            questions_asked=len(answers),
            answers=answers,
            final_space=space,
            initial_uncertainty=initial_uncertainty,
            final_uncertainty=self.evaluator.uncertainty(space),
            distance_to_truth=self._distance(space),
            initial_distance=initial_distance,
            orderings_initial=orderings_initial,
            orderings_final=space.size,
            timings=dict(self.watch.totals),
            crowd_cost=self.crowd.stats.total_cost,
            trajectory=trajectory,
            inferred_answers=(
                self._inference.savings if self._inference is not None else 0
            ),
            contradictions=(
                self.evaluator.contradictions - self._contradictions_at_start
            ),
        )


@dataclass(frozen=True)
class SessionSnapshot:
    """Restorable mid-session state: the query depth plus every applied
    answer, in order.

    The snapshot deliberately stores *answers*, not the pruned space: the
    live space is a deterministic function of (initial TPO, answer
    sequence), so replaying the answers over a freshly built — or
    cache-shared — initial space reproduces the state bit-for-bit.  This is
    the same event-sourcing contract the service layer's JSONL log builds
    on, and it keeps snapshots small and JSON-portable.
    """

    k: int
    #: ``(i, j, holds, accuracy)`` per applied answer, canonical ``i < j``.
    answers: Tuple[Tuple[int, int, bool, float], ...]

    def to_dict(self) -> Dict:
        """Plain-JSON form (used by the service snapshot endpoint)."""
        return {"k": self.k, "answers": [list(a) for a in self.answers]}

    @classmethod
    def from_dict(cls, data: Dict) -> "SessionSnapshot":
        """Inverse of :meth:`to_dict`."""
        return cls(
            k=int(data["k"]),
            answers=tuple(
                (int(i), int(j), bool(holds), float(accuracy))
                for i, j, holds, accuracy in data["answers"]
            ),
        )


class InteractiveSession:
    """A stepwise (question-at-a-time) uncertainty-reduction session.

    Where :class:`UncertaintyReductionSession` drives a policy loop to
    completion in one call, this is the *interactive* surface the service
    layer serves traffic with: callers pull the currently most informative
    question, push answers as the crowd produces them, and may snapshot and
    later restore the session at any point in between.

    Parameters
    ----------
    distributions:
        Uncertain scores of the N tuples.
    k:
        Top-K depth of the query.
    space:
        The *initial* ordering space (a freshly built TPO flattened via
        ``to_space``).  Spaces are immutable, so one instance may be shared
        by any number of concurrent sessions — this is the hook the
        service-layer TPO cache plugs into.
    measure:
        Uncertainty measure driving question ranking (default ``U_H``);
        ignored when ``evaluator`` is given.
    evaluator:
        Optional shared :class:`ResidualEvaluator` (the session manager
        passes one so evaluation counters aggregate across sessions).
    """

    def __init__(
        self,
        distributions: Sequence[ScoreDistribution],
        k: int,
        space: OrderingSpace,
        measure: Optional[UncertaintyMeasure] = None,
        evaluator: Optional[ResidualEvaluator] = None,
    ) -> None:
        self.distributions = list(distributions)
        self.k = min(k, len(self.distributions))
        if evaluator is None:
            evaluator = ResidualEvaluator(
                measure if measure is not None else EntropyMeasure()
            )
        self.evaluator = evaluator
        self.initial_space = space
        self.space = space
        self.answers: List[Answer] = []

    # ------------------------------------------------------------------

    @property
    def questions_asked(self) -> int:
        """Number of answers applied so far."""
        return len(self.answers)

    @property
    def is_settled(self) -> bool:
        """True once a single ordering remains."""
        return self.space.is_certain

    def candidates(self) -> List[Question]:
        """The live relevant pool ``Q_K`` (settled pairs drop out)."""
        return relevant_questions(self.space, self.distributions)

    def ranking(
        self, candidates: Optional[Sequence[Question]] = None
    ) -> Tuple[List[Question], np.ndarray]:
        """All candidate questions with their expected residuals ``R_q``.

        The pair of aligned sequences — not just the winner — so callers
        coalescing rankings across sessions (the service manager) can
        compute once and share.
        """
        if candidates is None:
            candidates = self.candidates()
        candidates = list(candidates)
        return candidates, self.evaluator.rank_singles_batch(
            self.space, candidates
        )

    def next_question(
        self,
        ranking: Optional[Tuple[Sequence[Question], np.ndarray]] = None,
    ) -> Optional[Question]:
        """The most informative question now, or None when nothing is left.

        Ties resolve to the first candidate in canonical pair order, so the
        choice is deterministic — a restored session asks exactly the
        questions the uninterrupted one would.  On a beam-approximate
        space, residuals within the measure's certified interval width
        count as tied (:func:`select_min_residual`); exact spaces keep
        the historical plain ``argmin``.  ``ranking`` short-circuits the
        computation with a precomputed (possibly shared) ranking.
        """
        if ranking is None:
            ranking = self.ranking()
        candidates, residuals = ranking
        if len(candidates) == 0:
            return None
        slack = self.evaluator.ranking_slack(self.space)
        return candidates[select_min_residual(residuals, slack)]

    def submit_answer(
        self, question: Question, holds: bool, accuracy: float = 1.0
    ) -> Answer:
        """Apply one crowd answer (prune or reweight) and record it."""
        self.space = self.evaluator.apply_answer(
            self.space, question, holds, accuracy
        )
        answer = Answer(question, holds, accuracy=accuracy)
        self.answers.append(answer)
        return answer

    def top_k(self) -> List[int]:
        """The current most probable top-K prefix (the paper's MPO)."""
        return [int(t) for t in self.space.most_probable_ordering()]

    def uncertainty(self) -> float:
        """Current ``U(T)`` under the session's measure."""
        return self.evaluator.uncertainty(self.space)

    # ------------------------------------------------------------------

    def answers_key(self) -> Tuple[Tuple[int, int, bool, float], ...]:
        """Hashable identity of the applied answer sequence.

        Two sessions over the same initial space with equal keys are in
        bit-identical states — the property the service manager's
        cross-session ranking coalescing keys on.
        """
        return tuple(
            (a.question.i, a.question.j, a.holds, a.accuracy)
            for a in self.answers
        )

    def snapshot(self) -> SessionSnapshot:
        """Freeze the session into a restorable, JSON-portable snapshot."""
        return SessionSnapshot(k=self.k, answers=self.answers_key())

    @classmethod
    def restore(
        cls,
        snapshot: SessionSnapshot,
        distributions: Sequence[ScoreDistribution],
        space: OrderingSpace,
        measure: Optional[UncertaintyMeasure] = None,
        evaluator: Optional[ResidualEvaluator] = None,
    ) -> "InteractiveSession":
        """Rebuild a live session by replaying a snapshot's answers.

        ``distributions`` and ``space`` must describe the same instance the
        snapshot was taken from (the initial space, not the pruned one).
        """
        session = cls(
            distributions,
            snapshot.k,
            space,
            measure=measure,
            evaluator=evaluator,
        )
        for i, j, holds, accuracy in snapshot.answers:
            session.submit_answer(Question(i, j), holds, accuracy=accuracy)
        return session


__all__ = [
    "UncertaintyReductionSession",
    "SessionResult",
    "InteractiveSession",
    "SessionSnapshot",
]
