"""Question-selection policies (the paper's algorithm suite)."""

from repro.core.policies.astar import AStarOfflinePolicy, AStarOnlinePolicy
from repro.core.policies.base import (
    POOL_ALL,
    POOL_RELEVANT,
    OfflinePolicy,
    OnlinePolicy,
    Policy,
)
from repro.core.policies.baselines import NaivePolicy, RandomPolicy
from repro.core.policies.conditional import ConditionalPolicy
from repro.core.policies.exhaustive import ExhaustivePolicy
from repro.core.policies.stopping import ValueOfInformationStopper
from repro.core.policies.top1 import Top1OnlinePolicy
from repro.core.policies.topb import TopBPolicy

__all__ = [
    "Policy",
    "OfflinePolicy",
    "OnlinePolicy",
    "POOL_ALL",
    "POOL_RELEVANT",
    "RandomPolicy",
    "NaivePolicy",
    "TopBPolicy",
    "ConditionalPolicy",
    "AStarOfflinePolicy",
    "AStarOnlinePolicy",
    "Top1OnlinePolicy",
    "ExhaustivePolicy",
    "ValueOfInformationStopper",
]
