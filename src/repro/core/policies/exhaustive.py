"""Exhaustive offline selection — the brute-force reference optimum.

Enumerates every B-subset of the candidate questions and returns the one
with minimal expected residual uncertainty.  Exponential; guarded by a
subset cap.  Not part of the paper's algorithm suite — it exists so the
test suite can *prove* ``A*-off`` optimal (Theorem 3.2) and measure how
close the greedy algorithms get on small instances.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Sequence

import numpy as np

from repro.core.policies.base import OfflinePolicy
from repro.questions.model import Question
from repro.questions.residual import ResidualEvaluator
from repro.tpo.space import OrderingSpace


class ExhaustivePolicy(OfflinePolicy):
    """Try every B-subset of candidates; pick the best.

    Parameters
    ----------
    max_subsets:
        Safety valve — raises :class:`ValueError` when the enumeration
        would exceed this many subsets.
    """

    name = "exhaustive"

    def __init__(self, max_subsets: int = 200000) -> None:
        self.max_subsets = max_subsets
        #: Residual value of the winning subset (diagnostics for tests).
        self.last_best_residual: float = float("nan")

    def select(
        self,
        space: OrderingSpace,
        candidates: Sequence[Question],
        budget: int,
        evaluator: ResidualEvaluator,
        rng: np.random.Generator,
    ) -> List[Question]:
        if budget <= 0 or not candidates:
            return []
        budget = min(budget, len(candidates))
        count = math.comb(len(candidates), budget)
        if count > self.max_subsets:
            raise ValueError(
                f"{count} subsets exceed the cap of {self.max_subsets}; "
                "use A*-off instead"
            )
        codes = evaluator.codes_matrix(space, candidates)
        best_subset, best_value = None, np.inf
        for subset in itertools.combinations(range(len(candidates)), budget):
            value = evaluator.set_residual_from_codes(
                space, codes[:, list(subset)]
            )
            if value < best_value - 1e-15:
                best_value, best_subset = value, subset
        self.last_best_residual = float(best_value)
        return [candidates[c] for c in best_subset]


__all__ = ["ExhaustivePolicy"]
