"""Policy interfaces for uncertainty-reduction question selection.

The paper's two interaction modes with a crowdsourcing market (§III):

* **offline** — the whole batch of B questions is chosen before any answer
  arrives (tasks published once, evaluated as a whole);
* **online** — each question may depend on all previous answers (the
  employer inspects crowd work as it becomes available).

The ``incr`` algorithm is a *hybrid*: it additionally controls TPO
construction, so it implements a third interface that drives the whole
loop (see :mod:`repro.core.incremental`).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.questions.model import Question
from repro.questions.residual import ResidualEvaluator
from repro.tpo.space import OrderingSpace

#: Candidate pools a policy may request from the session.
POOL_ALL = "all"  # every pair of tuples in T_K (Random baseline)
POOL_RELEVANT = "relevant"  # the paper's Q_K (overlapping pdfs)


class Policy(abc.ABC):
    """Common surface of all question-selection strategies."""

    #: Identifier used in experiment configs and result tables.
    name: str = "abstract"
    #: Which candidate pool the session should hand to this policy.
    pool: str = POOL_RELEVANT

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class OfflinePolicy(Policy):
    """Selects the full question batch before any answer is known."""

    @abc.abstractmethod
    def select(
        self,
        space: OrderingSpace,
        candidates: Sequence[Question],
        budget: int,
        evaluator: ResidualEvaluator,
        rng: np.random.Generator,
    ) -> List[Question]:
        """Return at most ``budget`` questions from ``candidates``."""


class OnlinePolicy(Policy):
    """Selects one question at a time, seeing all previous answers."""

    @abc.abstractmethod
    def next_question(
        self,
        space: OrderingSpace,
        candidates: Sequence[Question],
        remaining_budget: int,
        evaluator: ResidualEvaluator,
        rng: np.random.Generator,
    ) -> Optional[Question]:
        """Return the next question, or None to terminate early."""


__all__ = [
    "Policy",
    "OfflinePolicy",
    "OnlinePolicy",
    "POOL_ALL",
    "POOL_RELEVANT",
]
