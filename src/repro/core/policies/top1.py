"""``T1-on`` — the Top-1 online algorithm (§III-B).

At every step, pick the single question minimizing the expected residual
uncertainty of the *current* (already pruned) tree, ask it, prune with the
received answer, repeat.  Terminates early when all uncertainty is removed
with fewer than B questions — one of its practical advantages over the
offline batch algorithms.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.policies.base import OnlinePolicy
from repro.questions.model import Question
from repro.questions.residual import ResidualEvaluator, select_min_residual
from repro.tpo.space import OrderingSpace


class Top1OnlinePolicy(OnlinePolicy):
    """Greedy one-step-lookahead online selection.

    On a beam-approximate space, residuals within the measure's certified
    interval width are treated as tied and the first in canonical order
    wins (see :func:`select_min_residual`); on exact spaces this is the
    historical ``argmin``.
    """

    name = "T1-on"

    def next_question(
        self,
        space: OrderingSpace,
        candidates: Sequence[Question],
        remaining_budget: int,
        evaluator: ResidualEvaluator,
        rng: np.random.Generator,
    ) -> Optional[Question]:
        if remaining_budget <= 0 or not candidates or space.is_certain:
            return None
        residuals = evaluator.rank_singles_batch(space, candidates)
        slack = evaluator.ranking_slack(space)
        return candidates[select_min_residual(residuals, slack)]


__all__ = ["Top1OnlinePolicy"]
