"""Value-of-information stopping for online policies.

A fixed budget is the paper's model, but a practitioner usually wants to
stop *earlier* once the next answer is no longer worth its cost.
:class:`ValueOfInformationStopper` wraps any online policy and terminates
the session when the best achievable expected uncertainty reduction drops
below a threshold — the marginal value of one more crowd task.

This composes rather than replaces the paper's algorithms: wrapping
``T1-on`` yields "T1-on with economic stopping", whose savings the test
suite quantifies.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.policies.base import OnlinePolicy
from repro.questions.model import Question
from repro.questions.residual import ResidualEvaluator
from repro.tpo.space import OrderingSpace
from repro.utils.validation import check_positive


class ValueOfInformationStopper(OnlinePolicy):
    """Terminate when no question's expected reduction clears a threshold.

    Parameters
    ----------
    inner:
        The online policy actually choosing questions.
    min_reduction:
        Minimum expected uncertainty reduction (in the driving measure's
        units) a question must promise; anything below stops the session.
    """

    def __init__(self, inner: OnlinePolicy, min_reduction: float) -> None:
        check_positive("min_reduction", min_reduction)
        self.inner = inner
        self.min_reduction = float(min_reduction)
        self.name = f"{inner.name}+stop({min_reduction:g})"
        self.pool = inner.pool
        #: True when the last ``next_question`` call stopped for economy
        #: (rather than exhausted budget/candidates).
        self.stopped_economically = False

    def next_question(
        self,
        space: OrderingSpace,
        candidates: Sequence[Question],
        remaining_budget: int,
        evaluator: ResidualEvaluator,
        rng: np.random.Generator,
    ) -> Optional[Question]:
        self.stopped_economically = False
        question = self.inner.next_question(
            space, candidates, remaining_budget, evaluator, rng
        )
        if question is None:
            return None
        current = evaluator.uncertainty(space)
        residual = float(
            evaluator.rank_singles_batch(space, [question])[0]
        )
        if current - residual < self.min_reduction:
            self.stopped_economically = True
            return None
        return question


__all__ = ["ValueOfInformationStopper"]
