"""``TB-off`` — the Top-B offline algorithm (§III-A).

For every candidate ``q ∈ Q_K`` compute the single-question expected
residual uncertainty ``R_q(T_K)``, then return the B questions with the
largest expected uncertainty *reduction* (equivalently, the smallest
residual).  Each question is scored in isolation, so the batch may contain
redundant questions — the weakness ``C-off`` addresses at higher cost.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.policies.base import OfflinePolicy
from repro.questions.model import Question
from repro.questions.residual import ResidualEvaluator
from repro.tpo.space import OrderingSpace


class TopBPolicy(OfflinePolicy):
    """Pick the B individually-best questions by expected residual."""

    name = "TB-off"

    def select(
        self,
        space: OrderingSpace,
        candidates: Sequence[Question],
        budget: int,
        evaluator: ResidualEvaluator,
        rng: np.random.Generator,
    ) -> List[Question]:
        if budget <= 0 or not candidates:
            return []
        residuals = evaluator.rank_singles_batch(space, candidates)
        order = np.argsort(residuals, kind="stable")[:budget]
        return [candidates[int(index)] for index in order]


__all__ = ["TopBPolicy"]
