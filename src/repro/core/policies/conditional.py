"""``C-off`` — the conditional offline algorithm (§III-A).

Questions are picked one at a time, each minimizing the *joint* expected
residual uncertainty ``R_{⟨q*_1, …, q*_i, q⟩}(T_K)`` conditioned on the
previously selected (but not yet answered!) questions.  Unlike ``TB-off``
this accounts for redundancy between questions; unlike the online
algorithms it never sees an answer, so the whole batch can be published at
once.  Greedy over a monotone objective — the classic quality/cost middle
ground the paper's Figure 1 shows.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.policies.base import OfflinePolicy
from repro.questions.model import Question
from repro.questions.residual import ResidualEvaluator
from repro.tpo.space import OrderingSpace


class ConditionalPolicy(OfflinePolicy):
    """Greedy joint-residual minimization (no answers observed).

    Parameters
    ----------
    pattern_cap:
        Optional bound on answer patterns evaluated per candidate set
        (see :meth:`ResidualEvaluator.set_residual_from_codes`); ``None``
        evaluates exactly.
    """

    name = "C-off"

    def __init__(self, pattern_cap: Optional[int] = None) -> None:
        self.pattern_cap = pattern_cap

    def select(
        self,
        space: OrderingSpace,
        candidates: Sequence[Question],
        budget: int,
        evaluator: ResidualEvaluator,
        rng: np.random.Generator,
    ) -> List[Question]:
        if budget <= 0 or not candidates:
            return []
        codes = evaluator.codes_matrix(space, candidates)
        chosen_columns: List[int] = []
        available = list(range(len(candidates)))
        for _ in range(min(budget, len(candidates))):
            # All extensions of the chosen set are priced in one batched
            # call; the selection loop below keeps the original
            # first-winner-within-tolerance tie-breaking.
            values = evaluator.rank_set_extensions(
                space, codes, chosen_columns, available, self.pattern_cap
            )
            best_column, best_value = None, np.inf
            for index, column in enumerate(available):
                if values[index] < best_value - 1e-15:
                    best_value, best_column = float(values[index]), column
            if best_column is None:
                break
            chosen_columns.append(best_column)
            available.remove(best_column)
            if best_value <= 1e-12:
                break  # batch already guarantees certainty in expectation
        return [candidates[c] for c in chosen_columns]


__all__ = ["ConditionalPolicy"]
