"""``A*-off`` and ``A*-on`` — best-first search over question sets (§III).

``A*-off`` searches the space of B-subsets of ``Q_K`` for the one with the
minimum expected residual uncertainty ``R_Q``.  Search nodes are question
subsets; each is reached once (children only extend with candidates of
higher index along a fixed order), and nodes are expanded best-first by the
optimistic bound

``f(S) = max(0, R_S − (B − |S|) · δ_max)``

where ``δ_max`` is the largest single-question reduction measured on the
root space.  Under diminishing returns of question sets (marginal reduction
never grows as the set grows — the regime of Theorem 3.2), ``f`` never
overestimates the reachable reduction, so the first B-subset popped is
offline-optimal; the test suite validates this against exhaustive
enumeration on small instances.

Since the search is worst-case exponential, ``max_expansions`` bounds the
work; on exhaustion the best known partial set is completed greedily (the
result then degrades gracefully toward ``C-off``).

``A*-on`` is the online variant the paper describes: re-plan with
``A*-off`` on the pruned tree after every answer and ask the first question
of the plan.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policies.base import OfflinePolicy, OnlinePolicy
from repro.questions.model import Question
from repro.questions.residual import ResidualEvaluator
from repro.tpo.space import OrderingSpace


class AStarOfflinePolicy(OfflinePolicy):
    """Best-first (A*) search for the optimal offline question set.

    Parameters
    ----------
    max_expansions:
        Hard cap on expanded nodes; exceeded searches fall back to greedy
        completion of the best frontier node (`last_search_complete` tells
        which case occurred).
    candidate_cap:
        Optionally restrict the search to the individually-best
        ``candidate_cap`` questions (by single residual) — a documented
        speed/optimality trade-off for large ``Q_K``.
    pattern_cap:
        Forwarded to the residual evaluator (see ``C-off``).
    """

    name = "A*-off"

    def __init__(
        self,
        max_expansions: int = 20000,
        candidate_cap: Optional[int] = None,
        pattern_cap: Optional[int] = None,
    ) -> None:
        if max_expansions < 1:
            raise ValueError("max_expansions must be positive")
        self.max_expansions = max_expansions
        self.candidate_cap = candidate_cap
        self.pattern_cap = pattern_cap
        #: Diagnostics of the most recent search.
        self.last_search_complete: bool = True
        self.last_expansions: int = 0

    def select(
        self,
        space: OrderingSpace,
        candidates: Sequence[Question],
        budget: int,
        evaluator: ResidualEvaluator,
        rng: np.random.Generator,
    ) -> List[Question]:
        if budget <= 0 or not candidates:
            return []
        budget = min(budget, len(candidates))
        base_uncertainty = evaluator.uncertainty(space)
        if base_uncertainty <= 0.0:
            return []
        singles = evaluator.rank_singles_batch(space, candidates)
        order = np.argsort(singles, kind="stable")
        if self.candidate_cap is not None:
            order = order[: max(self.candidate_cap, budget)]
        ordered = [candidates[int(i)] for i in order]
        codes = evaluator.codes_matrix(space, ordered)
        n_candidates = len(ordered)
        delta_max = max(0.0, base_uncertainty - float(np.min(singles)))

        def bound(residual: float, size: int) -> float:
            return max(0.0, residual - (budget - size) * delta_max)

        # Heap entries: (f, tie, columns tuple, residual).
        counter = itertools.count()
        heap: List[Tuple[float, int, Tuple[int, ...], float]] = [
            (bound(base_uncertainty, 0), next(counter), (), base_uncertainty)
        ]
        best_goal: Optional[Tuple[float, Tuple[int, ...]]] = None
        expansions = 0
        while heap:
            f_value, _, columns, residual = heapq.heappop(heap)
            if best_goal is not None and f_value >= best_goal[0] - 1e-15:
                break
            if len(columns) == budget or residual <= 1e-12:
                # First goal popped with minimal f is optimal (admissible f).
                best_goal = (residual, columns)
                break
            expansions += 1
            if expansions > self.max_expansions:
                self.last_search_complete = False
                self.last_expansions = expansions
                completed = self._greedy_complete(
                    space, codes, list(columns), budget, evaluator
                )
                return [ordered[c] for c in completed]
            start = columns[-1] + 1 if columns else 0
            # Keep enough candidates after `child` to still reach budget:
            # child <= n_candidates - (budget - |columns|).
            last_child = n_candidates - budget + len(columns)
            children = list(range(start, last_child + 1))
            if not children:
                continue
            # All children extend the same column set — price them in one
            # batched call instead of one pattern partition per child.
            child_residuals = evaluator.rank_set_extensions(
                space, codes, list(columns), children, self.pattern_cap
            )
            for child, child_residual in zip(children, child_residuals, strict=True):
                new_columns = columns + (child,)
                heapq.heappush(
                    heap,
                    (
                        bound(float(child_residual), len(new_columns)),
                        next(counter),
                        new_columns,
                        float(child_residual),
                    ),
                )
        self.last_expansions = expansions
        self.last_search_complete = True
        if best_goal is None:
            return [ordered[c] for c in range(min(budget, n_candidates))]
        return [ordered[c] for c in best_goal[1]]

    def _greedy_complete(
        self,
        space: OrderingSpace,
        codes: np.ndarray,
        partial: List[int],
        budget: int,
        evaluator: ResidualEvaluator,
    ) -> List[int]:
        """Fill a partial set greedily once the expansion cap is hit."""
        available = [c for c in range(codes.shape[1]) if c not in set(partial)]
        while len(partial) < budget and available:
            values = evaluator.rank_set_extensions(
                space, codes, partial, available, self.pattern_cap
            )
            best_column = available[int(np.argmin(values))]
            partial.append(best_column)
            available.remove(best_column)
        return partial


class AStarOnlinePolicy(OnlinePolicy):
    """Re-plan with ``A*-off`` after every answer; ask the plan's head.

    The paper describes ``A*-on`` as iteratively applying ``A*-off`` B
    times; because the tree is re-pruned between iterations, only the first
    question of each plan is ever used.
    """

    name = "A*-on"

    def __init__(self, **offline_kwargs) -> None:
        self._offline = AStarOfflinePolicy(**offline_kwargs)

    def next_question(
        self,
        space: OrderingSpace,
        candidates: Sequence[Question],
        remaining_budget: int,
        evaluator: ResidualEvaluator,
        rng: np.random.Generator,
    ) -> Optional[Question]:
        if remaining_budget <= 0 or not candidates or space.is_certain:
            return None
        plan = self._offline.select(
            space, candidates, remaining_budget, evaluator, rng
        )
        return plan[0] if plan else None


__all__ = ["AStarOfflinePolicy", "AStarOnlinePolicy"]
