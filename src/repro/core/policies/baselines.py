"""The paper's two baseline question-selection strategies (§IV).

* ``Random`` — B questions drawn uniformly among *all* tuple comparisons in
  ``T_K``, including pairs whose order is already certain;
* ``Naive`` — avoids obviously irrelevant questions by drawing uniformly
  from the relevant set ``Q_K`` instead.

Both ignore the expected-uncertainty-reduction objective entirely; every
proposed algorithm must beat them for the paper's story to hold.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.policies.base import POOL_ALL, POOL_RELEVANT, OfflinePolicy
from repro.questions.model import Question
from repro.questions.residual import ResidualEvaluator
from repro.tpo.space import OrderingSpace
from repro.utils.rng import choice_without_replacement


class RandomPolicy(OfflinePolicy):
    """Uniformly random questions among all pairs of tuples in ``T_K``."""

    name = "random"
    pool = POOL_ALL

    def select(
        self,
        space: OrderingSpace,
        candidates: Sequence[Question],
        budget: int,
        evaluator: ResidualEvaluator,
        rng: np.random.Generator,
    ) -> List[Question]:
        return choice_without_replacement(rng, candidates, budget)


class NaivePolicy(OfflinePolicy):
    """Uniformly random questions from the relevant set ``Q_K``."""

    name = "naive"
    pool = POOL_RELEVANT

    def select(
        self,
        space: OrderingSpace,
        candidates: Sequence[Question],
        budget: int,
        evaluator: ResidualEvaluator,
        rng: np.random.Generator,
    ) -> List[Question]:
        return choice_without_replacement(rng, candidates, budget)


__all__ = ["RandomPolicy", "NaivePolicy"]
