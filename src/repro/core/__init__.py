"""The paper's primary contribution (S6 in DESIGN.md).

Question-selection policies for crowd-powered uncertainty reduction over
top-K query results, plus the session engine that runs them against a
budget and a (simulated) crowd.
"""

from repro.core.incremental import IncrementalAlgorithm
from repro.core.policies import (
    AStarOfflinePolicy,
    AStarOnlinePolicy,
    ConditionalPolicy,
    ExhaustivePolicy,
    NaivePolicy,
    OfflinePolicy,
    OnlinePolicy,
    Policy,
    RandomPolicy,
    Top1OnlinePolicy,
    TopBPolicy,
    ValueOfInformationStopper,
)
from repro.core.session import SessionResult, UncertaintyReductionSession

POLICIES = {
    "random": RandomPolicy,
    "naive": NaivePolicy,
    "TB-off": TopBPolicy,
    "C-off": ConditionalPolicy,
    "A*-off": AStarOfflinePolicy,
    "A*-on": AStarOnlinePolicy,
    "T1-on": Top1OnlinePolicy,
    "incr": IncrementalAlgorithm,
    "exhaustive": ExhaustivePolicy,
}


def make_policy(name: str, **kwargs) -> Policy:
    """Instantiate a policy by its paper name (see :data:`POLICIES`)."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "Policy",
    "OfflinePolicy",
    "OnlinePolicy",
    "RandomPolicy",
    "NaivePolicy",
    "TopBPolicy",
    "ConditionalPolicy",
    "AStarOfflinePolicy",
    "AStarOnlinePolicy",
    "Top1OnlinePolicy",
    "ExhaustivePolicy",
    "ValueOfInformationStopper",
    "IncrementalAlgorithm",
    "UncertaintyReductionSession",
    "SessionResult",
    "POLICIES",
    "make_policy",
]
