"""The paper's primary contribution (S6 in DESIGN.md).

Question-selection policies for crowd-powered uncertainty reduction over
top-K query results, plus the session engine that runs them against a
budget and a (simulated) crowd.
"""

from repro.api._deprecation import warn_deprecated
from repro.api.catalog import POLICIES
from repro.core.incremental import IncrementalAlgorithm
from repro.core.policies import (
    AStarOfflinePolicy,
    AStarOnlinePolicy,
    ConditionalPolicy,
    ExhaustivePolicy,
    NaivePolicy,
    OfflinePolicy,
    OnlinePolicy,
    Policy,
    RandomPolicy,
    Top1OnlinePolicy,
    TopBPolicy,
    ValueOfInformationStopper,
)
from repro.core.session import SessionResult, UncertaintyReductionSession


def make_policy(name: str, **kwargs) -> Policy:
    """Deprecated shim: use :class:`repro.api.PolicySpec` or
    ``repro.api.POLICIES.create`` instead."""
    warn_deprecated(
        "repro.core.make_policy", "repro.api.POLICIES.create"
    )
    return POLICIES.create(name, **kwargs)


__all__ = [
    "Policy",
    "OfflinePolicy",
    "OnlinePolicy",
    "RandomPolicy",
    "NaivePolicy",
    "TopBPolicy",
    "ConditionalPolicy",
    "AStarOfflinePolicy",
    "AStarOnlinePolicy",
    "Top1OnlinePolicy",
    "ExhaustivePolicy",
    "ValueOfInformationStopper",
    "IncrementalAlgorithm",
    "UncertaintyReductionSession",
    "SessionResult",
    "POLICIES",
    "make_policy",
]
