"""Workload generators (substrate S9 in DESIGN.md)."""

from repro.workloads.scenarios import (
    photo_contest,
    restaurant_guide,
    sensor_network,
)
from repro.workloads.synthetic import (
    GENERATORS,
    clustered_intervals,
    gaussian_scores,
    jittered_widths,
    make_workload,
    mixed_certainty,
    pareto_scores,
    triangular_scores,
    uniform_intervals,
)

__all__ = [
    "uniform_intervals",
    "jittered_widths",
    "gaussian_scores",
    "triangular_scores",
    "pareto_scores",
    "clustered_intervals",
    "mixed_certainty",
    "make_workload",
    "GENERATORS",
    "sensor_network",
    "photo_contest",
    "restaurant_guide",
]
