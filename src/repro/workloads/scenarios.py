"""Realistic scenario generators built on the uncertain-relational layer.

These produce full :class:`~repro.db.table.UncertainTable` instances for
the example applications: the kinds of workloads the paper's introduction
motivates (noisy sensing infrastructures and imprecise human contributions
on social media).
"""

from __future__ import annotations


import numpy as np

from repro.db.table import UncertainTable
from repro.distributions.gaussian import TruncatedGaussian
from repro.distributions.histogram import Histogram
from repro.distributions.uniform import Uniform
from repro.utils.rng import SeedLike, ensure_rng


def sensor_network(
    n_sensors: int = 15,
    readings_per_sensor: int = 5,
    noise_sigma: float = 0.8,
    temperature_span: float = 12.0,
    base_temperature: float = 18.0,
    rng: SeedLike = None,
) -> UncertainTable:
    """Temperature sensors with per-sensor Gaussian measurement noise.

    Each sensor's true temperature is fixed; the table stores the score as
    the posterior over repeated noisy readings — a Gaussian with standard
    error ``noise_sigma / √readings``.  "Which sensors are hottest?" is
    then an uncertain top-K query.
    """
    generator = ensure_rng(rng)
    table = UncertainTable("sensors")
    for index in range(n_sensors):
        true_temp = base_temperature + generator.random() * temperature_span
        readings = true_temp + generator.normal(
            0.0, noise_sigma, size=readings_per_sensor
        )
        posterior_mu = float(np.mean(readings))
        posterior_sigma = noise_sigma / np.sqrt(readings_per_sensor)
        table.insert(
            f"sensor-{index:02d}",
            zone=f"zone-{index % 4}",
            readings=readings_per_sensor,
            temperature=TruncatedGaussian(posterior_mu, posterior_sigma),
            true_temperature=true_temp,
        )
    return table


def photo_contest(
    n_photos: int = 12,
    votes_per_photo: int = 8,
    quality_span: float = 4.0,
    vote_noise: float = 1.2,
    rng: SeedLike = None,
) -> UncertainTable:
    """Photos rated 1–5 by a handful of users; scores are vote histograms.

    With few votes per photo the empirical rating distributions overlap
    heavily — the canonical "imprecise human contributions" scenario.
    """
    generator = ensure_rng(rng)
    table = UncertainTable("photos")
    for index in range(n_photos):
        quality = 1.0 + generator.random() * quality_span
        votes = np.clip(
            quality + generator.normal(0.0, vote_noise, size=votes_per_photo),
            1.0,
            5.0,
        )
        table.insert(
            f"photo-{index:02d}",
            author=f"user-{generator.integers(100, 999)}",
            votes=votes_per_photo,
            rating=Histogram.from_samples(votes, bins=8),
            true_quality=quality,
        )
    return table


def restaurant_guide(
    n_restaurants: int = 14,
    rng: SeedLike = None,
) -> UncertainTable:
    """Restaurants with certain price and uncertain quality/distance.

    Exercises multi-attribute scoring: quality is an interval from review
    excerpts, distance a certain number, price a certain number — a
    :class:`~repro.db.scoring.LinearScore` combines them.
    """
    generator = ensure_rng(rng)
    table = UncertainTable("restaurants")
    cuisines = ["italian", "japanese", "mexican", "indian", "french"]
    for index in range(n_restaurants):
        quality_center = 2.5 + generator.random() * 2.0
        spread = 0.3 + generator.random() * 0.7
        table.insert(
            f"restaurant-{index:02d}",
            cuisine=cuisines[int(generator.integers(len(cuisines)))],
            quality=Uniform(quality_center - spread, quality_center + spread),
            price=float(np.round(10 + generator.random() * 40, 2)),
            distance_km=float(np.round(0.2 + generator.random() * 5.0, 2)),
        )
    return table


__all__ = ["sensor_network", "photo_contest", "restaurant_guide"]
