"""Synthetic uncertain-score workload generators.

The paper's evaluation draws tuple scores from synthetic models whose one
knob — how much neighbouring pdfs overlap — controls the bushiness of the
tree of possible orderings.  Each generator returns a list of
:class:`~repro.distributions.base.ScoreDistribution`, one per tuple.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.api._deprecation import warn_deprecated
from repro.api.catalog import WORKLOADS
from repro.distributions.base import ScoreDistribution
from repro.distributions.gaussian import TruncatedGaussian
from repro.distributions.pareto import TruncatedPareto
from repro.distributions.triangular import Triangular
from repro.distributions.uniform import Uniform
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive


def uniform_intervals(
    n: int,
    width: float = 0.3,
    span: float = 1.0,
    rng: SeedLike = None,
) -> List[ScoreDistribution]:
    """The paper's primary model: uniform pdfs of fixed ``width``.

    Interval centers are uniform over ``[0, span]``; larger ``width/span``
    ⇒ more overlap ⇒ more possible orderings.
    """
    check_positive("n", n)
    check_positive("width", width)
    check_positive("span", span)
    generator = ensure_rng(rng)
    centers = generator.random(n) * span
    return [Uniform(c, c + width) for c in centers]


def jittered_widths(
    n: int,
    width: float = 0.3,
    jitter: float = 0.5,
    span: float = 1.0,
    rng: SeedLike = None,
) -> List[ScoreDistribution]:
    """Uniform intervals with per-tuple width variation.

    Widths are uniform in ``width · [1−jitter, 1+jitter]`` — models data
    sources of varying precision (e.g. mixed sensor grades).
    """
    check_positive("n", n)
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must lie in [0, 1), got {jitter}")
    generator = ensure_rng(rng)
    centers = generator.random(n) * span
    factors = 1.0 + jitter * (2.0 * generator.random(n) - 1.0)
    return [Uniform(c, c + width * f) for c, f in zip(centers, factors, strict=True)]


def gaussian_scores(
    n: int,
    sigma: float = 0.1,
    span: float = 1.0,
    rng: SeedLike = None,
) -> List[ScoreDistribution]:
    """Truncated-Gaussian scores (the paper's non-uniform case)."""
    check_positive("n", n)
    check_positive("sigma", sigma)
    generator = ensure_rng(rng)
    means = generator.random(n) * span
    return [TruncatedGaussian(m, sigma) for m in means]


def triangular_scores(
    n: int,
    width: float = 0.3,
    span: float = 1.0,
    rng: SeedLike = None,
) -> List[ScoreDistribution]:
    """Triangular (unimodal, bounded) scores with random mode skew."""
    check_positive("n", n)
    check_positive("width", width)
    generator = ensure_rng(rng)
    lowers = generator.random(n) * span
    skews = generator.random(n)
    return [
        Triangular(lo, lo + s * width, lo + width)
        for lo, s in zip(lowers, skews, strict=True)
    ]


def pareto_scores(
    n: int,
    shape: float = 1.5,
    scale_span: float = 1.0,
    tail: float = 5.0,
    rng: SeedLike = None,
) -> List[ScoreDistribution]:
    """Heavy-tailed scores: a few dominant tuples, a nearly-tied bulk."""
    check_positive("n", n)
    generator = ensure_rng(rng)
    scales = 0.5 + generator.random(n) * scale_span
    return [TruncatedPareto(s, shape, s * tail) for s in scales]


def clustered_intervals(
    n: int,
    clusters: int = 3,
    cluster_spread: float = 0.05,
    width: float = 0.2,
    span: float = 1.0,
    rng: SeedLike = None,
) -> List[ScoreDistribution]:
    """Tuples bunched into score clusters — worst case for ordering
    certainty within a cluster, near-certainty across clusters.

    Stress-tests the selection policies: questions across clusters are
    wasted budget, and good policies must discover that.
    """
    check_positive("n", n)
    check_positive("clusters", clusters)
    generator = ensure_rng(rng)
    cluster_centers = np.linspace(0.0, span, clusters + 2)[1:-1]
    assignment = generator.integers(0, clusters, size=n)
    lowers = cluster_centers[assignment] + generator.normal(
        0.0, cluster_spread, size=n
    )
    return [Uniform(lo, lo + width) for lo in lowers]


def mixed_certainty(
    n: int,
    certain_fraction: float = 0.3,
    width: float = 0.3,
    span: float = 1.0,
    rng: SeedLike = None,
) -> List[ScoreDistribution]:
    """A mix of certain (point) and uncertain (interval) scores.

    Models a table where part of the data is verified — the machinery must
    handle atoms alongside continuous pdfs.
    """
    from repro.distributions.point import PointMass

    check_positive("n", n)
    generator = ensure_rng(rng)
    dists: List[ScoreDistribution] = []
    for _ in range(n):
        center = generator.random() * span
        if generator.random() < certain_fraction:
            dists.append(PointMass(center))
        else:
            dists.append(Uniform(center, center + width))
    return dists


#: The unified workload registry (alias of :data:`repro.api.WORKLOADS`):
#: iterates, tests membership, and indexes like the dict it replaced.
GENERATORS = WORKLOADS


def make_workload(
    kind: str, n: int, rng: SeedLike = None, **kwargs
) -> List[ScoreDistribution]:
    """Deprecated shim: use :meth:`repro.api.InstanceSpec.materialize` or
    ``repro.api.WORKLOADS.create`` instead."""
    warn_deprecated(
        "repro.workloads.make_workload", "repro.api.WORKLOADS.create"
    )
    return WORKLOADS.create(kind, n, rng=rng, **kwargs)


__all__ = [
    "uniform_intervals",
    "jittered_widths",
    "gaussian_scores",
    "triangular_scores",
    "pareto_scores",
    "clustered_intervals",
    "mixed_certainty",
    "make_workload",
    "GENERATORS",
]
