"""Calibration of residual-uncertainty predictions (the fidelity gate).

The paper's question-selection machinery stands on one claim: the
*predicted* residual uncertainty :math:`R_q` (what
:meth:`ResidualEvaluator.single` computes before asking ``q``) tracks
the uncertainty actually *realized* once the crowd answers.  This suite
measures that claim directly.  Each cell runs one seeded session with a
:class:`CalibrationObserver` attached to the evaluator's committed-answer
hook, recording per answer the predicted fractional reduction
``(U_before - R_q) / U_before`` against the realized one
``(U_before - U_after) / U_before``, then summarises them as reliability
bins and an expected calibration error (ECE).

The second half of the suite checks PR 8's certified intervals: at every
state along the session (initial space + after each charged answer), the
measure's ``[lo, hi]`` must cover the *exact-space* value.  On exact
engines intervals are degenerate ``[v, v]`` so coverage is trivially
total; on beam engines the exact value is realized by replaying the
session's recorded answers through the paired exact engine (same grid
resolution, beam pruning stripped) via
:func:`repro.api.run.replay_session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.run import prepare_session, replay_session
from repro.api.specs import (
    BudgetSpec,
    CrowdSpec,
    EngineSpec,
    InstanceSpec,
    MeasureSpec,
    PolicySpec,
    SessionSpec,
)
from repro.evals.suite import EvalSuite, check, section
from repro.experiments.grid import ExperimentGrid, GridCell

#: Paper measures exercised by the calibration sweep.
MEASURE_NAMES = ("H", "Hw", "ORA", "MPO")

#: Pooled-ECE gate (documented in README "Evaluation & calibration").
#: Residual predictions are one-step *expectations* while realizations
#: are single draws, so perfect calibration is not attainable; the gate
#: catches systematic drift, not sampling noise.
ECE_THRESHOLD = 0.15

#: Certified intervals must cover realized values at every state.
NOMINAL_COVERAGE = 1.0

#: Float slack when testing membership in a certified interval.
COVERAGE_TOL = 1e-9

#: Engine params that turn beam pruning on; stripped to get the paired
#: exact engine for interval realization.
_BEAM_KEYS = ("beam_epsilon", "beam_width")


@dataclass
class CalibrationRecord:
    """One committed answer's prediction vs realization."""

    u_before: float
    u_after: float
    predicted_residual: float
    interval_before: Tuple[float, float]
    interval_after: Tuple[float, float]


class CalibrationObserver:
    """Records predicted vs realized uncertainty on the evaluator's
    committed-answer hook (:meth:`ResidualEvaluator.attach_observer`).

    The prediction is made from the *pre-answer* space — exactly the
    quantity policies rank questions by — so hypothetical scoring during
    selection never contaminates the record.
    """

    def __init__(self, evaluator: Any) -> None:
        self.evaluator = evaluator
        self.records: List[CalibrationRecord] = []

    def on_answer(
        self,
        space: Any,
        question: Any,
        holds: bool,
        accuracy: float,
        updated: Any,
    ) -> None:
        self.records.append(
            CalibrationRecord(
                u_before=self.evaluator.uncertainty(space),
                u_after=self.evaluator.uncertainty(updated),
                predicted_residual=self.evaluator.single(space, question),
                interval_before=self.evaluator.uncertainty_interval(space),
                interval_after=self.evaluator.uncertainty_interval(updated),
            )
        )


def fractional_reductions(
    records: Sequence[CalibrationRecord],
) -> Tuple[List[float], List[float]]:
    """Per-answer (predicted, realized) fractional reductions in [0, 1].

    Answers arriving on an already-certain space (``U_before == 0``)
    carry no signal and are skipped; reweighting can realize a small
    *increase*, which clips to 0 rather than going negative so the ECE
    bins stay on one scale.
    """
    predicted: List[float] = []
    realized: List[float] = []
    for record in records:
        if record.u_before <= 0.0:
            continue
        pred = (record.u_before - record.predicted_residual) / record.u_before
        real = (record.u_before - record.u_after) / record.u_before
        predicted.append(min(max(pred, 0.0), 1.0))
        realized.append(min(max(real, 0.0), 1.0))
    return predicted, realized


def reliability_bins(
    predicted: Sequence[float],
    realized: Sequence[float],
    bins: int = 10,
) -> List[List[float]]:
    """Equal-width bins over *predicted*: ``[count, sum_pred, sum_real]``.

    Sums (not means) so bins from many cells pool by element-wise
    addition — :meth:`CalibrationEval.score` merges per-cell bins this
    way before computing the suite-level ECE.
    """
    table = [[0.0, 0.0, 0.0] for _ in range(bins)]
    for pred, real in zip(predicted, realized, strict=True):
        index = min(int(pred * bins), bins - 1)
        table[index][0] += 1.0
        table[index][1] += pred
        table[index][2] += real
    return table


def expected_calibration_error(bin_table: Sequence[Sequence[float]]) -> float:
    """ECE over pooled reliability bins: count-weighted mean of
    ``|mean_pred - mean_real|`` per bin (0.0 when the table is empty)."""
    total = sum(row[0] for row in bin_table)
    if total <= 0:
        return 0.0
    ece = 0.0
    for count, sum_pred, sum_real in bin_table:
        if count > 0:
            ece += (count / total) * abs(sum_pred / count - sum_real / count)
    return ece


def merge_bins(tables: Sequence[Sequence[Sequence[float]]]) -> List[List[float]]:
    """Element-wise sum of same-width bin tables from many cells."""
    if not tables:
        return []
    width = len(tables[0])
    merged = [[0.0, 0.0, 0.0] for _ in range(width)]
    for table in tables:
        if len(table) != width:
            raise ValueError("cannot merge bin tables of different widths")
        for index, (count, sum_pred, sum_real) in enumerate(table):
            merged[index][0] += count
            merged[index][1] += sum_pred
            merged[index][2] += sum_real
    return merged


def interval_coverage(
    intervals: Sequence[Tuple[float, float]],
    exact_values: Sequence[float],
    tol: float = COVERAGE_TOL,
) -> float:
    """Fraction of states whose exact value lies inside the certified
    interval (1.0 for an empty state list — nothing to violate)."""
    if not intervals:
        return 1.0
    covered = sum(
        1
        for (lo, hi), value in zip(intervals, exact_values, strict=True)
        if lo - tol <= value <= hi + tol
    )
    return covered / len(intervals)


def _session_spec(
    *,
    measure: str,
    crowd_model: str,
    accuracy: float,
    n: int,
    k: int,
    workload: str,
    seed: int,
    budget: int,
    policy: str,
    engine_params: Dict[str, Any],
) -> SessionSpec:
    return SessionSpec(
        instance=InstanceSpec(n=n, k=k, workload=workload, seed=seed),
        policy=PolicySpec(policy),
        measure=MeasureSpec(measure),
        crowd=CrowdSpec(accuracy=accuracy, model=crowd_model),
        budget=BudgetSpec(questions=budget),
        engine=EngineSpec("grid", engine_params),
    )


def run_calibration_cell(
    *,
    measure: str,
    crowd_model: str,
    accuracy: float,
    n: int,
    k: int,
    workload: str,
    seed: int,
    budget: int,
    policy: str = "T1-on",
    engine_params: Optional[Dict[str, Any]] = None,
    bins: int = 10,
) -> Dict[str, Any]:
    """Run one instrumented session and report its calibration row.

    The returned row is JSON-serializable (grid-store friendly): scalar
    diagnostics plus the poolable ``bins`` table.  For beam engines it
    also realizes exact values along the recorded answer trajectory and
    reports certified-interval ``coverage`` against them.
    """
    engine_params = dict(engine_params or {})
    beamed = any(engine_params.get(key) for key in _BEAM_KEYS)
    spec = _session_spec(
        measure=measure,
        crowd_model=crowd_model,
        accuracy=accuracy,
        n=n,
        k=k,
        workload=workload,
        seed=seed,
        budget=budget,
        policy=policy,
        engine_params=engine_params,
    )
    prepared = prepare_session(spec)
    evaluator = prepared.session.evaluator
    observer = CalibrationObserver(evaluator)
    evaluator.attach_observer(observer)
    try:
        result = prepared.run()
    finally:
        evaluator.detach_observer(observer)

    predicted, realized = fractional_reductions(observer.records)
    bin_table = reliability_bins(predicted, realized, bins=bins)

    # States along the trajectory: the initial space plus the space after
    # every committed answer.  Their certified intervals must bracket the
    # exact value at the same state.
    if observer.records:
        intervals = [observer.records[0].interval_before] + [
            record.interval_after for record in observer.records
        ]
    else:
        intervals = [evaluator.uncertainty_interval(result.final_space)]
    if beamed:
        exact_params = {
            key: value
            for key, value in engine_params.items()
            if key not in _BEAM_KEYS
        }
        exact_spec = _session_spec(
            measure=measure,
            crowd_model=crowd_model,
            accuracy=accuracy,
            n=n,
            k=k,
            workload=workload,
            seed=seed,
            budget=budget,
            policy=policy,
            engine_params=exact_params,
        )
        answer_tuples = [
            (a.question.i, a.question.j, a.holds, a.accuracy)
            for a in result.answers
        ]
        replay = replay_session(exact_spec, answer_tuples)
        exact_values = replay.uncertainties
    else:
        if observer.records:
            exact_values = [observer.records[0].u_before] + [
                record.u_after for record in observer.records
            ]
        else:
            exact_values = [evaluator.uncertainty(result.final_space)]
    coverage = interval_coverage(intervals, exact_values)

    return {
        "measure": measure,
        "crowd_model": crowd_model,
        "accuracy": accuracy,
        "seed": seed,
        "beamed": beamed,
        "answers": len(observer.records),
        "contradictions": result.contradictions,
        "bins": bin_table,
        "ece": expected_calibration_error(bin_table),
        "coverage": coverage,
        "coverage_states": len(intervals),
        "mean_predicted": (
            sum(predicted) / len(predicted) if predicted else 0.0
        ),
        "mean_realized": (
            sum(realized) / len(realized) if realized else 0.0
        ),
        "uncertainty_initial": result.initial_uncertainty,
        "uncertainty_final": result.final_uncertainty,
    }


@dataclass
class CalibrationEval(EvalSuite):
    """Reliability + certified-interval coverage across measures/crowds."""

    name: str = field(default="calibration", init=False)

    def grid(self, fast: bool = True) -> ExperimentGrid:
        seeds = [1] if fast else [1, 2, 3]
        crowds = [("perfect", 1.0), ("noisy", 0.8)]
        epsilons = [0.02] if fast else [0.01, 0.05]
        cells: List[GridCell] = []
        for measure in MEASURE_NAMES:
            for crowd_model, accuracy in crowds:
                for seed in seeds:
                    cells.append(
                        GridCell(
                            experiment="eval-calibration",
                            runner=(
                                "repro.evals.calibration:run_calibration_cell"
                            ),
                            params={
                                "measure": measure,
                                "crowd_model": crowd_model,
                                "accuracy": accuracy,
                                "n": 9,
                                "k": 4,
                                "workload": "jittered",
                                "seed": seed,
                                "budget": 8,
                                "engine_params": {"resolution": 512},
                            },
                        )
                    )
        # Beam interval-coverage cells: larger instance so pruning bites.
        for measure in ("H", "MPO"):
            for epsilon in epsilons:
                for seed in seeds:
                    cells.append(
                        GridCell(
                            experiment="eval-calibration",
                            runner=(
                                "repro.evals.calibration:run_calibration_cell"
                            ),
                            params={
                                "measure": measure,
                                "crowd_model": "perfect",
                                "accuracy": 1.0,
                                "n": 12,
                                "k": 5,
                                "workload": "jittered",
                                "seed": seed,
                                "budget": 8,
                                "engine_params": {
                                    "resolution": 512,
                                    "beam_epsilon": epsilon,
                                },
                            },
                        )
                    )
        return ExperimentGrid("eval-calibration", cells)

    def score(self, rows: List[Dict[str, Any]]) -> Dict[str, Any]:
        exact_rows = [r for r in rows if not r["beamed"]]
        beam_rows = [r for r in rows if r["beamed"]]
        pooled = merge_bins([r["bins"] for r in exact_rows])
        pooled_ece = expected_calibration_error(pooled)
        exact_coverage = min(
            (r["coverage"] for r in exact_rows), default=1.0
        )
        # Certified bracketing only holds while beam and exact replays
        # apply identical updates; a swallowed contradiction forks the
        # trajectories, so those rows are surfaced but not gated.
        clean_beam = [r for r in beam_rows if r["contradictions"] == 0]
        beam_coverage = min(
            (r["coverage"] for r in clean_beam), default=1.0
        )
        checks = [
            check("ece_pooled", pooled_ece <= ECE_THRESHOLD,
                  pooled_ece, ECE_THRESHOLD, "<="),
            check("coverage_exact", exact_coverage >= NOMINAL_COVERAGE,
                  exact_coverage, NOMINAL_COVERAGE, ">="),
            check("coverage_beam", beam_coverage >= NOMINAL_COVERAGE,
                  beam_coverage, NOMINAL_COVERAGE, ">="),
        ]
        per_measure = {}
        for measure in MEASURE_NAMES:
            member_bins = [
                r["bins"] for r in exact_rows if r["measure"] == measure
            ]
            if member_bins:
                per_measure[measure] = expected_calibration_error(
                    merge_bins(member_bins)
                )
        metrics = {
            "ece_pooled": pooled_ece,
            "ece_per_measure": per_measure,
            "coverage_exact_min": exact_coverage,
            "coverage_beam_min": beam_coverage,
            "beam_rows_gated": len(clean_beam),
            "beam_rows_forked": len(beam_rows) - len(clean_beam),
            "answers_total": sum(r["answers"] for r in rows),
            "reliability_bins": pooled,
        }
        return section(self.name, checks, metrics)


__all__ = [
    "ECE_THRESHOLD",
    "NOMINAL_COVERAGE",
    "CalibrationEval",
    "CalibrationObserver",
    "CalibrationRecord",
    "expected_calibration_error",
    "fractional_reductions",
    "interval_coverage",
    "merge_bins",
    "reliability_bins",
    "run_calibration_cell",
]
