"""``repro.evals`` — the fidelity gate: calibration, regret, goldens.

Everything else in the repo gates *bit-parity* (snapshots, content keys)
and *speed* (benchmarks); this package gates **correctness of the
estimates themselves**.  Three suites, registered in the
:data:`repro.api.EVALS` registry and driven by ``repro eval``:

* :mod:`~repro.evals.calibration` — are predicted residual reductions
  honest (reliability bins, ECE), and do PR 8's certified ``[lo, hi]``
  intervals cover realized values?
* :mod:`~repro.evals.regret` — does acting on the estimates stay near
  the exhaustive oracle, and does beam pruning preserve policy quality?
* :mod:`~repro.evals.golden` — versioned recorded sessions replayed
  bit-identically through the batch API, the event-sourcing replay, and
  the service event-log path.

Suites declare grids (:class:`~repro.experiments.grid.ExperimentGrid`)
and score rows; execution reuses the parallel, resumable experiment
runner.  Reports (:mod:`~repro.evals.report`) are provenance-stamped
like the committed ``BENCH_*.json`` files.
"""

from repro.evals.calibration import CalibrationEval
from repro.evals.golden import GoldenEval
from repro.evals.regret import RegretEval
from repro.evals.report import (
    DEFAULT_SUITES,
    compare_to_baseline,
    load_report,
    run_eval,
    summarize,
    write_report,
)
from repro.evals.specs import EvalSpec
from repro.evals.suite import EvalSuite

__all__ = [
    "DEFAULT_SUITES",
    "CalibrationEval",
    "EvalSpec",
    "EvalSuite",
    "GoldenEval",
    "RegretEval",
    "compare_to_baseline",
    "load_report",
    "run_eval",
    "summarize",
    "write_report",
]
