"""Policy-quality regret against the exhaustive oracle.

Calibration (sibling module) checks that residual estimates are honest;
this suite checks that *acting* on them is near-optimal.  On instances
small enough for the ``exhaustive`` policy to enumerate every B-subset
of questions, each policy's distance-to-truth trajectory is compared
point-wise against the oracle's: the cumulative regret
``sum_t (D_policy[t] - D_oracle[t])`` over the budget is the suite's
headline number, and informed policies must keep it below a documented
threshold (random is reported for contrast, never gated).

The beam half of the suite answers PR 8's open question — does anytime
beam pruning change *decisions*, not just values?  The same seeded
session runs under the exact engine and under beam engines at several
``beam_epsilon`` settings; final distance and uncertainty deltas must
stay within tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.run import run_session
from repro.api.specs import (
    BudgetSpec,
    CrowdSpec,
    EngineSpec,
    InstanceSpec,
    MeasureSpec,
    PolicySpec,
    SessionSpec,
)
from repro.evals.suite import EvalSuite, check, section
from repro.experiments.grid import ExperimentGrid, GridCell

#: Policies gated on cumulative regret (the informed ones).
INFORMED_POLICIES = ("T1-on", "TB-off", "C-off")

#: Mean cumulative regret ceiling for informed policies (distances are
#: normalized to [0, 1], summed over budget+1 trajectory points).
REGRET_THRESHOLD = 0.35

#: Mean final-step regret ceiling for informed policies.
FINAL_REGRET_THRESHOLD = 0.10

#: Max |final-distance delta| between beam and exact runs of the same
#: seeded session.
BEAM_DELTA_THRESHOLD = 0.15


def _pad(trajectory: List[float], length: int) -> List[float]:
    """Extend a trajectory to ``length`` points by repeating its last
    value (early-terminating policies stop asking once certain)."""
    if not trajectory:
        raise ValueError("trajectory must contain the initial distance")
    return trajectory + [trajectory[-1]] * (length - len(trajectory))


def cumulative_regret(
    policy_trajectory: List[float], oracle_trajectory: List[float]
) -> float:
    """Sum of per-step distance gaps, oracle-padded to a common length."""
    length = max(len(policy_trajectory), len(oracle_trajectory))
    policy_points = _pad(policy_trajectory, length)
    oracle_points = _pad(oracle_trajectory, length)
    return float(
        sum(p - o for p, o in zip(policy_points, oracle_points, strict=True))
    )


def _session_spec(
    *,
    policy: str,
    measure: str,
    accuracy: float,
    n: int,
    k: int,
    workload: str,
    seed: int,
    budget: int,
    engine_params: Optional[Dict[str, Any]] = None,
) -> SessionSpec:
    crowd_model = "perfect" if accuracy >= 1.0 else "noisy"
    return SessionSpec(
        instance=InstanceSpec(n=n, k=k, workload=workload, seed=seed),
        policy=PolicySpec(policy),
        measure=MeasureSpec(measure),
        crowd=CrowdSpec(accuracy=accuracy, model=crowd_model),
        budget=BudgetSpec(questions=budget),
        engine=EngineSpec("grid", dict(engine_params or {})),
    )


def run_regret_cell(
    *,
    policy: str,
    measure: str,
    accuracy: float,
    n: int,
    k: int,
    workload: str,
    seed: int,
    budget: int,
    resolution: int = 512,
) -> Dict[str, Any]:
    """One policy-vs-oracle comparison on one seeded instance.

    The oracle runs inside the cell (same instance seed, so identical
    ground truth and crowd stream) — recomputed per policy, which keeps
    cells self-contained and content-addressable at the price of a few
    redundant oracle runs on deliberately tiny instances.
    """
    engine_params = {"resolution": resolution}
    common = dict(
        measure=measure,
        accuracy=accuracy,
        n=n,
        k=k,
        workload=workload,
        seed=seed,
        budget=budget,
        engine_params=engine_params,
    )
    result = run_session(
        _session_spec(policy=policy, **common), track_trajectory=True
    )
    oracle = run_session(
        _session_spec(policy="exhaustive", **common), track_trajectory=True
    )
    regret = cumulative_regret(result.trajectory, oracle.trajectory)
    # Row kinds discriminate oracle-regret rows from beam-delta rows at
    # scoring time; a null sentinel would not survive the result store
    # (nulls restore as NaN).
    return {
        "kind": "regret",
        "policy": policy,
        "measure": measure,
        "seed": seed,
        "budget": budget,
        "cumulative_regret": regret,
        "final_regret": (
            result.distance_to_truth - oracle.distance_to_truth
        ),
        "policy_distance": result.distance_to_truth,
        "oracle_distance": oracle.distance_to_truth,
        "questions_asked": result.questions_asked,
    }


def run_beam_delta_cell(
    *,
    policy: str,
    measure: str,
    accuracy: float,
    n: int,
    k: int,
    workload: str,
    seed: int,
    budget: int,
    beam_epsilon: float,
    resolution: int = 512,
) -> Dict[str, Any]:
    """Beam-vs-exact policy-quality delta for one seeded session."""
    common = dict(
        policy=policy,
        measure=measure,
        accuracy=accuracy,
        n=n,
        k=k,
        workload=workload,
        seed=seed,
        budget=budget,
    )
    exact = run_session(
        _session_spec(engine_params={"resolution": resolution}, **common)
    )
    beam = run_session(
        _session_spec(
            engine_params={
                "resolution": resolution,
                "beam_epsilon": beam_epsilon,
            },
            **common,
        )
    )
    return {
        "kind": "beam_delta",
        "policy": policy,
        "measure": measure,
        "seed": seed,
        "budget": budget,
        "beam_epsilon": beam_epsilon,
        "delta_distance": beam.distance_to_truth - exact.distance_to_truth,
        "delta_uncertainty": (
            beam.final_uncertainty - exact.final_uncertainty
        ),
        "exact_distance": exact.distance_to_truth,
        "beam_distance": beam.distance_to_truth,
        "beam_contradictions": beam.contradictions,
    }


@dataclass
class RegretEval(EvalSuite):
    """Cumulative regret vs oracle + beam-vs-exact quality deltas."""

    name: str = field(default="regret", init=False)

    def grid(self, fast: bool = True) -> ExperimentGrid:
        seeds = [1] if fast else [1, 2, 3]
        budget = 3 if fast else 4
        epsilons = [0.02] if fast else [0.01, 0.05]
        cells: List[GridCell] = []
        for policy in (*INFORMED_POLICIES, "random"):
            for seed in seeds:
                cells.append(
                    GridCell(
                        experiment="eval-regret",
                        runner="repro.evals.regret:run_regret_cell",
                        params={
                            "policy": policy,
                            "measure": "H",
                            "accuracy": 1.0,
                            "n": 8,
                            "k": 4,
                            "workload": "jittered",
                            "seed": seed,
                            "budget": budget,
                        },
                    )
                )
        for epsilon in epsilons:
            for seed in seeds:
                cells.append(
                    GridCell(
                        experiment="eval-regret",
                        runner="repro.evals.regret:run_beam_delta_cell",
                        params={
                            "policy": "T1-on",
                            "measure": "H",
                            "accuracy": 1.0,
                            "n": 12,
                            "k": 5,
                            "workload": "jittered",
                            "seed": seed,
                            "budget": 6,
                            "beam_epsilon": epsilon,
                        },
                    )
                )
        return ExperimentGrid("eval-regret", cells)

    def score(self, rows: List[Dict[str, Any]]) -> Dict[str, Any]:
        regret_rows = [r for r in rows if r.get("kind") == "regret"]
        beam_rows = [r for r in rows if r.get("kind") == "beam_delta"]

        def mean(values: List[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        per_policy_regret = {}
        per_policy_final = {}
        for row in regret_rows:
            per_policy_regret.setdefault(row["policy"], []).append(
                row["cumulative_regret"]
            )
            per_policy_final.setdefault(row["policy"], []).append(
                row["final_regret"]
            )
        informed_regret = max(
            (
                mean(per_policy_regret[p])
                for p in INFORMED_POLICIES
                if p in per_policy_regret
            ),
            default=0.0,
        )
        informed_final = max(
            (
                mean(per_policy_final[p])
                for p in INFORMED_POLICIES
                if p in per_policy_final
            ),
            default=0.0,
        )
        beam_delta = max(
            (abs(r["delta_distance"]) for r in beam_rows), default=0.0
        )
        checks = [
            check(
                "cumulative_regret_informed",
                informed_regret <= REGRET_THRESHOLD,
                informed_regret,
                REGRET_THRESHOLD,
                "<=",
            ),
            check(
                "final_regret_informed",
                informed_final <= FINAL_REGRET_THRESHOLD,
                informed_final,
                FINAL_REGRET_THRESHOLD,
                "<=",
            ),
            check(
                "beam_distance_delta",
                beam_delta <= BEAM_DELTA_THRESHOLD,
                beam_delta,
                BEAM_DELTA_THRESHOLD,
                "<=",
            ),
        ]
        metrics = {
            "cumulative_regret_per_policy": {
                policy: mean(values)
                for policy, values in sorted(per_policy_regret.items())
            },
            "final_regret_per_policy": {
                policy: mean(values)
                for policy, values in sorted(per_policy_final.items())
            },
            "beam_delta_per_epsilon": {
                str(epsilon): mean(
                    [
                        abs(r["delta_distance"])
                        for r in beam_rows
                        if r["beam_epsilon"] == epsilon
                    ]
                )
                for epsilon in sorted(
                    {r["beam_epsilon"] for r in beam_rows}
                )
            },
            "oracle_distance_mean": mean(
                [r["oracle_distance"] for r in regret_rows]
            ),
        }
        return section(self.name, checks, metrics)


__all__ = [
    "BEAM_DELTA_THRESHOLD",
    "FINAL_REGRET_THRESHOLD",
    "INFORMED_POLICIES",
    "REGRET_THRESHOLD",
    "RegretEval",
    "cumulative_regret",
    "run_beam_delta_cell",
    "run_regret_cell",
]
