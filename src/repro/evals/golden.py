"""Golden datasets: versioned, content-keyed recorded sessions.

A golden case freezes one fully-specified session (an
:class:`~repro.evals.specs.EvalSpec` whose BLAKE2b content key is pinned
next to it in the dataset file) together with every outcome the run
produced: the answer stream the simulated crowd emitted, the question
count, final uncertainty/distance, ordering-space sizes, and the
most-probable top-K.  Determinism is the repo's core contract — a spec
fully determines its run — so replays must match **bit-for-bit**, and
every comparison below is exact equality (floats survive the JSON
round-trip exactly; everything is cast to plain Python scalars before
recording).

Each case is replayed through three independent paths:

* the batch API (:func:`repro.api.run.run_session`) — fresh run, full
  outcome comparison;
* the sanctioned event-sourcing replay
  (:func:`repro.api.run.replay_session`) — recorded answers over a
  freshly built space;
* the service event-log path (:mod:`repro.evals.service_replay`) —
  create / submit / kill / resume through a
  :class:`~repro.service.manager.SessionManager`.

Recording is explicit and versioned: bump :data:`DATASET_VERSION`, run
:func:`record_dataset`, and commit the regenerated file together with
whatever change legitimately moved the outcomes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.api.run import replay_session, run_session
from repro.api.specs import (
    BudgetSpec,
    CrowdSpec,
    EngineSpec,
    InstanceSpec,
    MeasureSpec,
    PolicySpec,
    SessionSpec,
)
from repro.evals.specs import EvalSpec
from repro.evals.suite import EvalSuite, check, section
from repro.experiments.grid import ExperimentGrid, GridCell

#: Bumped whenever the recorded cases change shape or membership.
DATASET_VERSION = 1


def dataset_path(version: int = DATASET_VERSION) -> Path:
    """Location of the committed golden dataset for ``version``."""
    return Path(__file__).parent / "data" / f"golden_v{version}.json"


def _case_label(spec: SessionSpec) -> str:
    """Human-oriented case name (presentation only, not identity)."""
    beam = spec.engine_spec.params.get("beam_epsilon")
    suffix = f"-beam{beam}" if beam else ""
    return (
        f"{spec.policy.name}-{spec.measure.name}-n{spec.instance.n}"
        f"k{spec.instance.k}-s{spec.instance.seed}{suffix}"
    )


def record_case(spec: SessionSpec) -> Dict[str, Any]:
    """Run ``spec`` once and freeze everything it produced.

    ``verify_questions`` is recorded true for policies whose question
    sequence the *service* path can reproduce — the interactive session
    picks min-residual questions, i.e. exactly ``T1-on``'s rule.
    """
    result = run_session(spec)
    eval_spec = EvalSpec(suite="golden", session=spec)
    expected = {
        "answers": [
            [int(a.question.i), int(a.question.j), bool(a.holds),
             float(a.accuracy)]
            for a in result.answers
        ],
        "questions_asked": int(result.questions_asked),
        "contradictions": int(result.contradictions),
        "initial_uncertainty": float(result.initial_uncertainty),
        "final_uncertainty": float(result.final_uncertainty),
        "distance_to_truth": float(result.distance_to_truth),
        "orderings_initial": int(result.orderings_initial),
        "orderings_final": int(result.orderings_final),
        "top_k": [int(t) for t in result.final_space.most_probable_ordering()],
        "crowd_cost": float(result.crowd_cost),
    }
    return {
        "label": _case_label(spec),
        "key": eval_spec.content_key(),
        "eval": eval_spec.to_dict(),
        "verify_questions": spec.policy.name == "T1-on",
        "expected": expected,
    }


def _reference_specs() -> List[SessionSpec]:
    """The sessions the committed dataset records (one per regime)."""

    def spec(policy: str, measure: str, *, n: int, k: int, seed: int,
             budget: int, accuracy: float = 1.0, engine: str = "grid",
             engine_params: Optional[Dict[str, Any]] = None) -> SessionSpec:
        crowd_model = "perfect" if accuracy >= 1.0 else "noisy"
        params: Dict[str, Any] = (
            {"resolution": 512} if engine == "grid" else {}
        )
        params.update(engine_params or {})
        return SessionSpec(
            instance=InstanceSpec(n=n, k=k, workload="jittered", seed=seed),
            policy=PolicySpec(policy),
            measure=MeasureSpec(measure),
            crowd=CrowdSpec(accuracy=accuracy, model=crowd_model),
            budget=BudgetSpec(questions=budget),
            engine=EngineSpec(engine, params),
        )

    return [
        spec("T1-on", "H", n=8, k=3, seed=11, budget=5),
        spec("T1-on", "Hw", n=9, k=4, seed=12, budget=6, accuracy=0.8),
        spec("T1-on", "ORA", n=10, k=4, seed=14, budget=6),
        spec("TB-off", "MPO", n=8, k=4, seed=13, budget=4),
        spec("T1-on", "H", n=12, k=5, seed=15, budget=6,
             engine_params={"beam_epsilon": 0.02}),
        # The MC engine under beam pruning: the sampled TPO must replay
        # bit-identically too (seeded sampler + pruned beam).
        spec("T1-on", "Hw", n=10, k=4, seed=16, budget=6, engine="mc",
             engine_params={"samples": 4000, "seed": 7,
                            "beam_epsilon": 0.02, "beam_width": 48}),
    ]


def record_dataset(path: Optional[Path] = None) -> Path:
    """(Re)record the reference cases and write the dataset file."""
    target = Path(path) if path is not None else dataset_path()
    payload = {
        "format": 1,
        "version": DATASET_VERSION,
        "cases": [record_case(spec) for spec in _reference_specs()],
    }
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_dataset(path: Optional[Path] = None) -> Dict[str, Any]:
    """Load and *authenticate* the dataset: every case's pinned content
    key must match its spec, so silent drift in a recorded spec (manual
    edit, bad merge) fails loudly before anything is replayed."""
    source = Path(path) if path is not None else dataset_path()
    payload = json.loads(source.read_text(encoding="utf-8"))
    for case in payload.get("cases", []):
        actual = EvalSpec.from_dict(case["eval"]).content_key()
        if actual != case.get("key"):
            raise ValueError(
                f"golden case {case.get('label', '?')!r} key drift: "
                f"recorded {case.get('key')!r}, spec hashes to {actual!r}"
            )
    return payload


def _compare(expected: Dict[str, Any], observed: Dict[str, Any]) -> List[str]:
    """Exact-equality field comparison; returns human-readable diffs."""
    mismatches = []
    for name, want in expected.items():
        if name not in observed:
            continue
        got = observed[name]
        if got != want:
            mismatches.append(f"{name}: expected {want!r}, got {got!r}")
    return mismatches


def run_golden_api_cell(*, case: Dict[str, Any]) -> Dict[str, Any]:
    """Replay one golden case through the batch API and the
    event-sourcing replay; both must match the recording exactly."""
    spec = EvalSpec.from_dict(case["eval"])
    expected = case["expected"]
    result = run_session(spec.session)
    observed = {
        "answers": [
            [int(a.question.i), int(a.question.j), bool(a.holds),
             float(a.accuracy)]
            for a in result.answers
        ],
        "questions_asked": int(result.questions_asked),
        "contradictions": int(result.contradictions),
        "initial_uncertainty": float(result.initial_uncertainty),
        "final_uncertainty": float(result.final_uncertainty),
        "distance_to_truth": float(result.distance_to_truth),
        "orderings_initial": int(result.orderings_initial),
        "orderings_final": int(result.orderings_final),
        "top_k": [int(t) for t in result.final_space.most_probable_ordering()],
        "crowd_cost": float(result.crowd_cost),
    }
    mismatches = _compare(expected, observed)

    answers = [tuple(a) for a in expected["answers"]]
    replay = replay_session(spec.session, answers)
    replay_observed = {
        "initial_uncertainty": float(replay.uncertainties[0]),
        "final_uncertainty": float(replay.uncertainties[-1]),
        "orderings_initial": int(replay.orderings[0]),
        "orderings_final": int(replay.orderings[-1]),
        "top_k": replay.top_k(),
    }
    mismatches += [
        f"replay.{diff}" for diff in _compare(expected, replay_observed)
    ]
    return {
        "path": "api",
        "label": case.get("label", ""),
        "key": case["key"],
        "passed": not mismatches,
        "mismatches": mismatches,
    }


@dataclass
class GoldenEval(EvalSuite):
    """Bit-identical replay of the committed golden dataset."""

    name: str = field(default="golden", init=False)
    #: Override to evaluate an alternative dataset file.
    path: Optional[str] = None

    def grid(self, fast: bool = True) -> ExperimentGrid:
        payload = load_dataset(self.path)
        cells: List[GridCell] = []
        for case in payload["cases"]:
            cells.append(
                GridCell(
                    experiment="eval-golden",
                    runner="repro.evals.golden:run_golden_api_cell",
                    params={"case": case},
                )
            )
            cells.append(
                GridCell(
                    experiment="eval-golden",
                    runner=(
                        "repro.evals.service_replay:run_golden_service_cell"
                    ),
                    params={"case": case},
                )
            )
        return ExperimentGrid("eval-golden", cells)

    def score(self, rows: List[Dict[str, Any]]) -> Dict[str, Any]:
        failed = [r for r in rows if not r["passed"]]
        checks = [
            check("golden_replays", not failed, float(len(failed)), 0.0, "<=")
        ]
        metrics = {
            "cases": len({r["key"] for r in rows}),
            "replays": len(rows),
            "failed": [
                {
                    "path": r["path"],
                    "label": r["label"],
                    "mismatches": r["mismatches"],
                }
                for r in failed
            ],
        }
        return section(self.name, checks, metrics)


__all__ = [
    "DATASET_VERSION",
    "GoldenEval",
    "dataset_path",
    "load_dataset",
    "record_case",
    "record_dataset",
    "run_golden_api_cell",
]
