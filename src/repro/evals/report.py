"""Scored evaluation reports: run suites, judge them, compare baselines.

``run_eval`` is the engine behind the ``repro eval`` CLI verb: it asks
each requested ``EVALS`` suite for its grid, executes through the PR 2
runner (parallel and resumable when a store directory is given), scores
the assembled rows, and stamps the result with the repo's provenance
fields — the same shape as the committed ``BENCH_*.json`` artifacts, so
``EVAL_report.json`` slots into the same in-tree trajectory tracking.

``compare_to_baseline`` is deliberately coarse: a regression is a
pass→fail flip at the suite or individual-check level against the
committed baseline report.  Threshold tuning changes values, not flips,
so nightly CI only pages when a gate actually breaks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.api.catalog import EVALS
from repro.experiments.runner import ProgressFn, run_grid
from repro.experiments.store import ResultStore
from repro.utils.provenance import artifact_stamp

#: Suite execution order for a full run.
DEFAULT_SUITES = ("calibration", "regret", "golden")


def run_eval(
    suites: Optional[List[str]] = None,
    fast: bool = True,
    workers: int = 0,
    store_dir: Optional[Path] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> Dict[str, Any]:
    """Execute the requested suites and assemble the scored report."""
    names = list(suites) if suites else list(DEFAULT_SUITES)
    sections: Dict[str, Any] = {}
    cells = 0
    wall = 0.0
    for name in names:
        suite = EVALS.create(name)
        store = None
        if store_dir is not None:
            directory = Path(store_dir)
            directory.mkdir(parents=True, exist_ok=True)
            store = ResultStore(directory / f"{name}.jsonl")
        grid_report = run_grid(
            suite.grid(fast),
            workers=workers,
            store=store,
            resume=resume,
            progress=progress,
        )
        sections[name] = suite.score(grid_report.table.rows)
        cells += len(grid_report.table)
        wall += grid_report.wall_seconds
    return {
        "format": 1,
        **artifact_stamp(),
        "fast": bool(fast),
        "cells": cells,
        "wall_seconds": wall,
        "suites": sections,
        "passed": all(s["passed"] for s in sections.values()),
    }


def write_report(report: Dict[str, Any], path: Path) -> None:
    """Write the report as stable, diff-friendly JSON."""
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_report(path: Path) -> Dict[str, Any]:
    """Read a previously written report."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def compare_to_baseline(
    current: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Pass→fail flips of the current report against a baseline one."""
    regressions: List[str] = []
    for name, base_section in baseline.get("suites", {}).items():
        if not base_section.get("passed"):
            continue  # was already failing; not a regression
        section = current.get("suites", {}).get(name)
        if section is None:
            regressions.append(f"suite {name!r}: present in baseline, not run")
            continue
        if not section.get("passed"):
            regressions.append(f"suite {name!r}: passed in baseline, now fails")
        current_checks = {c["name"]: c for c in section.get("checks", [])}
        for base_check in base_section.get("checks", []):
            if not base_check.get("passed"):
                continue
            now = current_checks.get(base_check["name"])
            if now is not None and not now.get("passed"):
                regressions.append(
                    f"check {name}.{base_check['name']}: "
                    f"value {now['value']:.6g} violates threshold "
                    f"{now['direction']} {now['threshold']:.6g} "
                    f"(baseline value {base_check['value']:.6g})"
                )
    return regressions


def summarize(report: Dict[str, Any]) -> str:
    """Multi-line human-readable digest for the CLI."""
    lines = []
    for name, section in report.get("suites", {}).items():
        status = "PASS" if section["passed"] else "FAIL"
        lines.append(f"{name:>12s}  {status}")
        for item in section["checks"]:
            mark = "ok " if item["passed"] else "BAD"
            lines.append(
                f"{'':>12s}  [{mark}] {item['name']}: "
                f"{item['value']:.6g} {item['direction']} "
                f"{item['threshold']:.6g}"
            )
    overall = "PASS" if report.get("passed") else "FAIL"
    lines.append(
        f"{'overall':>12s}  {overall}  "
        f"({report.get('cells', 0)} cells, "
        f"{report.get('wall_seconds', 0.0):.1f}s)"
    )
    return "\n".join(lines)


__all__ = [
    "DEFAULT_SUITES",
    "compare_to_baseline",
    "load_report",
    "run_eval",
    "summarize",
    "write_report",
]
