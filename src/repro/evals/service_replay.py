"""Golden replay through the service event-log path.

The third leg of the golden-dataset contract: the same recorded session
must reproduce bit-identically when driven through the *service* machinery
— :class:`~repro.service.manager.SessionManager` create / submit-answer
calls with a durable JSONL event log, followed by a kill-and-resume that
rebuilds the manager from that log.  For ``T1-on`` recordings the check
is stronger than final-state equality: the manager's ``next_question``
must equal the recorded question before every submitted answer (the
interactive min-residual rule *is* T1-on), and the resumed manager must
agree with the uninterrupted one.

This module is the sanctioned exception to lint rule RPL010: evaluation
code constructs sessions through :mod:`repro.api.run` — except here,
where exercising the service path **is** the point.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.evals.specs import EvalSpec
from repro.questions.model import Question
from repro.service.manager import SessionManager


def _state(manager: SessionManager, sid: str) -> Dict[str, Any]:
    """Comparable snapshot of one managed session's final state."""
    snapshot = manager.snapshot(sid)
    session = manager._get(sid).session
    return {
        "questions_asked": int(snapshot["questions_asked"]),
        "final_uncertainty": float(session.uncertainty()),
        "orderings_final": int(snapshot["orderings"]),
        "top_k": [int(t) for t in snapshot["top_k"]],
    }


def _next_pair(manager: SessionManager, sid: str) -> Optional[List[int]]:
    question = manager.next_question(sid)
    return None if question is None else [question.i, question.j]


def run_golden_service_cell(*, case: Dict[str, Any]) -> Dict[str, Any]:
    """Drive one golden case through create → answers → resume."""
    spec = EvalSpec.from_dict(case["eval"]).session
    expected = case["expected"]
    verify_questions = bool(case.get("verify_questions"))
    mismatches: List[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-eval-") as tmp:
        log_path = Path(tmp) / "events.jsonl"
        manager = SessionManager(
            log_path=log_path,
            builder=spec.build_builder(),
            measure=spec.measure.build(),
        )
        sid = manager.create_session(
            spec.instance.to_dict(), session_id=case["key"][:16]
        )
        for step, (i, j, holds, accuracy) in enumerate(expected["answers"]):
            if verify_questions:
                pair = _next_pair(manager, sid)
                if pair != [i, j]:
                    mismatches.append(
                        f"question[{step}]: expected ({i}, {j}), "
                        f"service offered {pair}"
                    )
            manager.submit_answer(sid, i, j, holds, accuracy)
        live = _state(manager, sid)
        mismatches += [
            f"service.{name}: expected {expected[name]!r}, got {value!r}"
            for name, value in live.items()
            if name in expected and value != expected[name]
        ]

        # Kill-and-resume: a manager rebuilt from the log alone must land
        # in the *same* state and offer the same next question.
        resumed_manager = SessionManager.resume(
            log_path,
            builder=spec.build_builder(),
            measure=spec.measure.build(),
        )
        resumed = _state(resumed_manager, sid)
        mismatches += [
            f"resume.{name}: live {value!r}, resumed {resumed[name]!r}"
            for name, value in live.items()
            if resumed[name] != value
        ]
        live_next = _next_pair(manager, sid)
        resumed_next = _next_pair(resumed_manager, sid)
        if live_next != resumed_next:
            mismatches.append(
                f"resume.next_question: live {live_next}, "
                f"resumed {resumed_next}"
            )

    return {
        "path": "service",
        "label": case.get("label", ""),
        "key": case["key"],
        "passed": not mismatches,
        "mismatches": mismatches,
    }


__all__ = ["run_golden_service_cell"]
