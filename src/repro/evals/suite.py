"""The suite contract shared by every ``EVALS`` registry entry.

A suite is declarative about *what* to run (``grid(fast)`` returns a
:class:`~repro.experiments.grid.ExperimentGrid`, executed by the PR 2
runner — parallel and resumable for free) and pure about *how* to judge
it (``score(rows)`` maps the assembled result rows to a report section
with explicit pass/fail checks).  The split means a nightly run can
execute once, store every row durably, and re-score against new
thresholds without recomputing anything.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.experiments.grid import ExperimentGrid


def check(name: str, passed: bool, value: float, threshold: float,
          direction: str) -> Dict[str, Any]:
    """One scored gate: ``value`` compared against ``threshold``.

    ``direction`` documents which way is good (``"<="`` or ``">="``) so
    report readers — and the baseline regression comparison — need no
    out-of-band knowledge to interpret the numbers.
    """
    if direction not in ("<=", ">="):
        raise ValueError(f"check direction must be '<=' or '>=': {direction}")
    return {
        "name": name,
        "passed": bool(passed),
        "value": float(value),
        "threshold": float(threshold),
        "direction": direction,
    }


def section(name: str, checks: List[Dict[str, Any]],
            metrics: Dict[str, Any]) -> Dict[str, Any]:
    """Assemble one suite's report section; passes iff every check does."""
    return {
        "name": name,
        "passed": all(c["passed"] for c in checks),
        "checks": checks,
        "metrics": metrics,
    }


class EvalSuite:
    """Base class for evaluation suites (``EVALS`` registry values)."""

    #: Registry name; subclasses override.
    name = "base"

    def grid(self, fast: bool = True) -> ExperimentGrid:
        """Declare the suite's work as grid cells (never run them here)."""
        raise NotImplementedError

    def score(self, rows: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Judge assembled result rows; returns a :func:`section` dict."""
        raise NotImplementedError


__all__ = ["EvalSuite", "check", "section"]
