"""Frozen, content-addressed identity for evaluation work.

An :class:`EvalSpec` names one evaluation *case*: which suite owns it
(``calibration`` / ``regret`` / ``golden`` — the ``EVALS`` registry
names), the fully-specified :class:`~repro.api.specs.SessionSpec` it
evaluates, and suite-level parameters (bin counts, epsilon settings,
expected outcomes for golden cases).  Like every other spec in the repo
it round-trips through canonical JSON and is addressed by a BLAKE2b
content key — golden datasets store that key next to each case so any
drift in the recorded spec is detected before a replay is even
attempted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from typing import Mapping

from repro.api.canonical import canonical_json as _canonical_json
from repro.api.canonical import content_key as _content_key
from repro.api.specs import SessionSpec, _canonical_params, _require_keys


@dataclass(frozen=True)
class EvalSpec:
    """One evaluation case: a suite name + the session it evaluates.

    ``params`` carries suite-specific configuration and participates in
    the content key, so two cases that differ only in (say) the number
    of reliability bins are distinct artifacts.
    """

    suite: str
    session: SessionSpec
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.suite, str) or not self.suite:
            raise ValueError("EvalSpec.suite must be a non-empty string")
        if not isinstance(self.session, SessionSpec):
            raise TypeError(
                "EvalSpec.session must be a SessionSpec, got "
                f"{type(self.session).__name__}"
            )
        object.__setattr__(
            self, "params", _canonical_params(self.params, "EvalSpec")
        )

    # -- canonical round-trip ------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable canonical form."""
        return {
            "suite": self.suite,
            "session": self.session.to_dict(),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "EvalSpec":
        """Inverse of :meth:`to_dict` (validates on construction)."""
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"EvalSpec payload must be a mapping, got "
                f"{type(payload).__name__}"
            )
        data = dict(payload)
        _require_keys(data, {"suite", "session", "params"}, "EvalSpec")
        return cls(
            suite=data.get("suite", ""),
            session=SessionSpec.from_dict(data.get("session", {})),
            params=dict(data.get("params", {})),
        )

    def canonical_json(self) -> str:
        """Key-sorted, locale-independent JSON form."""
        return _canonical_json(self.to_dict())

    def content_key(self) -> str:
        """BLAKE2b content address — golden cases pin this next to the
        spec so recorded expectations cannot silently drift."""
        return _content_key(self.to_dict())


__all__ = ["EvalSpec"]
