"""Command-line interface.

Three subcommands cover the common workflows without writing Python:

* ``experiment`` — run any reproduction experiment and print its report
  (``python -m repro experiment FIG1A --full``);
* ``demo`` — one crowd-powered top-K session on a synthetic workload with
  a chosen policy, printing the question/answer trace;
* ``inspect`` — uncertainty diagnostics for a synthetic workload (how many
  orderings, which ranks are contested, what to ask first).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core import POLICIES, make_policy
from repro.core.session import UncertaintyReductionSession
from repro.crowd.oracle import GroundTruth
from repro.crowd.simulator import SimulatedCrowd
from repro.tpo.analysis import (
    overlap_statistics,
    profile_space,
    question_impact_table,
)
from repro.tpo.builders import GridBuilder
from repro.workloads.synthetic import GENERATORS, make_workload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Crowdsourcing for top-K query processing over uncertain data "
            "(ICDE'16 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiment = sub.add_parser(
        "experiment", help="run a reproduction experiment"
    )
    experiment.add_argument(
        "id",
        help="experiment id from DESIGN.md §5 (e.g. FIG1A) or 'all'",
    )
    experiment.add_argument(
        "--full",
        action="store_true",
        help="paper-sized grid instead of the fast profile",
    )
    experiment.add_argument(
        "--output",
        default=None,
        help="write a consolidated Markdown report to this path",
    )
    experiment.add_argument(
        "--csv-dir",
        default=None,
        help="dump raw per-experiment CSV records into this directory",
    )

    demo = sub.add_parser("demo", help="run one crowd-powered session")
    demo.add_argument("--policy", default="T1-on", choices=sorted(POLICIES))
    demo.add_argument("--n", type=int, default=12, help="number of tuples")
    demo.add_argument("--k", type=int, default=6, help="top-K depth")
    demo.add_argument("--budget", type=int, default=10)
    demo.add_argument("--width", type=float, default=0.3, help="pdf width")
    demo.add_argument(
        "--accuracy", type=float, default=1.0, help="worker accuracy"
    )
    demo.add_argument("--seed", type=int, default=0)

    inspect = sub.add_parser(
        "inspect", help="diagnose a workload's ordering uncertainty"
    )
    inspect.add_argument(
        "--workload", default="uniform", choices=sorted(GENERATORS)
    )
    inspect.add_argument("--n", type=int, default=12)
    inspect.add_argument("--k", type=int, default=6)
    inspect.add_argument("--seed", type=int, default=0)
    return parser


def _command_experiment(args) -> int:
    from repro.experiments import EXPERIMENTS

    wanted = args.id.upper()
    if wanted != "ALL" and wanted not in EXPERIMENTS:
        print(
            f"unknown experiment {args.id!r}; "
            f"available: {', '.join(sorted(EXPERIMENTS))} or all",
            file=sys.stderr,
        )
        return 2
    names = sorted(EXPERIMENTS) if wanted == "ALL" else [wanted]
    if args.output is not None or args.csv_dir is not None:
        from repro.experiments.report import run_report

        document = run_report(
            names,
            fast=not args.full,
            output=args.output,
            csv_dir=args.csv_dir,
        )
        if args.output is not None:
            print(f"report written to {args.output}")
        else:
            print(document)
        return 0
    for name in names:
        module = EXPERIMENTS[name]
        table = module.run(fast=not args.full)
        print(module.report(table))
        print()
    return 0


def _command_demo(args) -> int:
    rng = np.random.default_rng(args.seed)
    scores = make_workload("uniform", args.n, rng=rng, width=args.width)
    truth = GroundTruth.sample(scores, rng)
    crowd = SimulatedCrowd(truth, worker_accuracy=args.accuracy, rng=rng)
    session = UncertaintyReductionSession(
        scores, args.k, crowd, builder=GridBuilder(resolution=800), rng=rng
    )
    result = session.run(make_policy(args.policy), args.budget)
    print(f"true top-{args.k}: {[int(t) for t in truth.top_k(args.k)]}")
    print(result.summary())
    for answer in result.answers:
        print(f"  {answer}")
    best = result.final_space.most_probable_ordering()
    print(f"most probable top-{args.k}: {[int(t) for t in best]}")
    return 0


def _command_inspect(args) -> int:
    scores = make_workload(args.workload, args.n, rng=args.seed)
    stats = overlap_statistics(scores)
    print(f"workload: {args.workload}, n={args.n}")
    for key, value in stats.items():
        print(f"  {key}: {value:g}")
    space = GridBuilder(resolution=800).build(scores, args.k).to_space()
    print()
    print(profile_space(space).format())
    print()
    print("best questions to ask:")
    for question, residual, reduction in question_impact_table(space, top=5):
        print(
            f"  {question}  residual={residual:.3f}  "
            f"reduction={reduction:.3f}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "inspect":
        return _command_inspect(args)
    return 2  # unreachable: argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
