"""Command-line interface.

Subcommands cover the common workflows without writing Python:

* ``experiment`` — run any reproduction experiment and print its report
  (``python -m repro experiment FIG1A --full``);
* ``run-grid`` — the same experiments through the parallel, resumable grid
  runner (``python -m repro run-grid FIG1A --workers 4 --store out.jsonl
  --resume``);
* ``demo`` — one crowd-powered top-K session on a synthetic workload with
  a chosen policy, printing the question/answer trace;
* ``list`` — every registered plugin (policies, measures, crowd models,
  workloads, scenarios, distributions, engines) from the
  :mod:`repro.api` registries;
* ``inspect`` — uncertainty diagnostics for a synthetic workload (how many
  orderings, which ranks are contested, what to ask first);
* ``serve`` — the concurrent multi-session HTTP service speaking the
  versioned ``/v1`` wire protocol (shared TPO cache, durable event log,
  resumable: ``python -m repro serve --port 8080 --log events.jsonl
  --resume``);
* ``bench-service`` — the service-layer throughput/cache benchmark
  (``python -m repro bench-service --smoke``);
* ``bench-engines`` — the TPO construction benchmark gating the flat
  level-table grid engine against the pointer baseline
  (``python -m repro bench-engines --smoke``);
* ``eval`` — the fidelity gate: calibration / regret / golden-dataset
  suites scored into a provenance-stamped report
  (``python -m repro eval --suite golden --json EVAL_report.json``);
* ``lint`` — the domain-aware static analysis suite (rules
  RPL001–RPL010 with a ratcheting baseline:
  ``python -m repro lint --format github``);
* ``check`` — the whole-program call-graph & dataflow analyzer
  (interprocedural checks RPC101–RPC104, same baseline machinery:
  ``python -m repro check --format github``).

Everything is constructed through the typed :mod:`repro.api` specs — the
CLI is just an argparse veneer over ``SessionSpec``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, List, Optional

from repro import __version__
from repro.api import (
    BudgetSpec,
    CrowdSpec,
    InstanceSpec,
    PolicySpec,
    SessionSpec,
    all_registries,
    prepare_session,
)
from repro.api.catalog import POLICIES, WORKLOADS
from repro.api.specs import EngineSpec
from repro.tpo.analysis import (
    overlap_statistics,
    profile_space,
    question_impact_table,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Crowdsourcing for top-K query processing over uncertain data "
            "(ICDE'16 reproduction)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiment = sub.add_parser(
        "experiment", help="run a reproduction experiment"
    )
    experiment.add_argument(
        "id",
        help="experiment id from DESIGN.md §5 (e.g. FIG1A) or 'all'",
    )
    experiment.add_argument(
        "--full",
        action="store_true",
        help="paper-sized grid instead of the fast profile",
    )
    experiment.add_argument(
        "--output",
        default=None,
        help="write a consolidated Markdown report to this path",
    )
    experiment.add_argument(
        "--csv-dir",
        default=None,
        help="dump raw per-experiment CSV records into this directory",
    )

    run_grid = sub.add_parser(
        "run-grid",
        help="run experiment grids in parallel with a resumable store",
    )
    run_grid.add_argument(
        "ids",
        nargs="+",
        help="experiment ids from DESIGN.md §5 (e.g. FIG1A) or 'all'",
    )
    run_grid.add_argument(
        "--workers",
        type=int,
        default=0,
        help="pool workers; 0 or 1 runs serially in-process",
    )
    run_grid.add_argument(
        "--full",
        action="store_true",
        help="paper-sized grid instead of the fast profile",
    )
    run_grid.add_argument(
        "--store",
        default=None,
        help="JSON-lines result store (appended to as cells finish)",
    )
    run_grid.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already present in --store",
    )
    run_grid.add_argument(
        "--policies",
        default=None,
        help="comma-separated policy filter (e.g. T1-on,naive)",
    )
    run_grid.add_argument(
        "--budgets",
        default=None,
        help="comma-separated budget filter (e.g. 0,5)",
    )
    run_grid.add_argument(
        "--list",
        action="store_true",
        dest="list_cells",
        help="print the cell ids and parameters without running anything",
    )

    demo = sub.add_parser("demo", help="run one crowd-powered session")
    demo.add_argument(
        "--policy", default="T1-on", choices=POLICIES.available()
    )
    demo.add_argument("--n", type=int, default=12, help="number of tuples")
    demo.add_argument("--k", type=int, default=6, help="top-K depth")
    demo.add_argument("--budget", type=int, default=10)
    demo.add_argument("--width", type=float, default=0.3, help="pdf width")
    demo.add_argument(
        "--accuracy", type=float, default=1.0, help="worker accuracy"
    )
    demo.add_argument("--seed", type=int, default=0)

    listing = sub.add_parser(
        "list", help="list every registered plugin (the repro.api catalog)"
    )
    listing.add_argument(
        "--kind",
        default=None,
        choices=sorted(all_registries()),
        help="restrict to one registry",
    )
    listing.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable output",
    )

    inspect = sub.add_parser(
        "inspect", help="diagnose a workload's ordering uncertainty"
    )
    inspect.add_argument(
        "--workload", default="uniform", choices=WORKLOADS.available()
    )
    inspect.add_argument("--n", type=int, default=12)
    inspect.add_argument("--k", type=int, default=6)
    inspect.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="run the concurrent multi-session HTTP service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--log",
        default=None,
        metavar="PATH",
        help="append-only JSONL event log (enables durable sessions)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="restore every session recorded in --log before serving",
    )
    serve.add_argument(
        "--cache-capacity",
        type=int,
        default=64,
        help="TPO cache entries shared across sessions (0 disables)",
    )
    serve.add_argument(
        "--resolution",
        type=int,
        default=1024,
        help="grid-builder resolution for session TPOs",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes; >1 runs the sharded router runtime "
            "(sessions placed by BLAKE2b of the session id)"
        ),
    )
    serve.add_argument(
        "--store",
        default=None,
        choices=["none", "memory", "disk-npz", "shared-memory"],
        help=(
            "cold-tier store backend behind the per-worker hot cache "
            "(default: none for --workers 1, disk-npz otherwise)"
        ),
    )
    serve.add_argument(
        "--store-path",
        default=None,
        metavar="DIR",
        help="cold-tier directory for the disk-npz backend",
    )
    serve.add_argument(
        "--shard-by",
        default="blake2b",
        choices=["blake2b"],
        help="session-to-worker placement strategy",
    )

    bench_service = sub.add_parser(
        "bench-service",
        help="benchmark the service layer (sessions/sec, cache hit rate)",
    )
    bench_service.add_argument("--sessions", type=int, default=64)
    bench_service.add_argument("--instances", type=int, default=8)
    bench_service.add_argument("--answers", type=int, default=20)
    bench_service.add_argument("--n", type=int, default=24)
    bench_service.add_argument("--k", type=int, default=4)
    bench_service.add_argument("--width", type=float, default=0.35)
    bench_service.add_argument("--resolution", type=int, default=640)
    bench_service.add_argument(
        "--multi",
        action="store_true",
        help="benchmark the sharded multi-worker runtime instead",
    )
    bench_service.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes for --multi",
    )
    bench_service.add_argument("--smoke", action="store_true")
    bench_service.add_argument("--json", default=None, metavar="PATH")

    bench_engines = sub.add_parser(
        "bench-engines",
        help="benchmark TPO construction (flat grid vs pointer baseline)",
    )
    bench_engines.add_argument("--n", type=int, default=18)
    bench_engines.add_argument("--k", type=int, default=6)
    bench_engines.add_argument("--width", type=float, default=0.35)
    bench_engines.add_argument("--resolution", type=int, default=800)
    bench_engines.add_argument("--mc-samples", type=int, default=200000)
    bench_engines.add_argument("--repetitions", type=int, default=3)
    bench_engines.add_argument("--smoke", action="store_true")
    bench_engines.add_argument("--json", default=None, metavar="PATH")

    evaluate = sub.add_parser(
        "eval",
        help=(
            "run the evaluation suites (calibration, regret, golden) "
            "and score the report"
        ),
    )
    evaluate.add_argument(
        "--suite",
        action="append",
        dest="suites",
        default=None,
        metavar="NAME",
        help=(
            "suite to run (repeatable; default: all registered suites)"
        ),
    )
    evaluate.add_argument(
        "--full",
        action="store_true",
        help="nightly-sized grids instead of the fast smoke profile",
    )
    evaluate.add_argument(
        "--workers",
        type=int,
        default=0,
        help="pool workers; 0 or 1 runs serially in-process",
    )
    evaluate.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="per-suite JSONL result stores (enables --resume)",
    )
    evaluate.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already present in --store-dir",
    )
    evaluate.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the scored report (EVAL_report.json shape) here",
    )
    evaluate.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "committed baseline report; exit non-zero on any "
            "pass-to-fail regression against it"
        ),
    )

    lint = sub.add_parser(
        "lint",
        help=(
            "run the domain-aware static analysis suite "
            "(RPL001-RPL010, ratcheting baseline)"
        ),
    )
    from repro.devtools.lint.cli import add_lint_arguments

    add_lint_arguments(lint)

    check = sub.add_parser(
        "check",
        help=(
            "run the whole-program call-graph & dataflow analyzer "
            "(RPC101-RPC104, ratcheting baseline)"
        ),
    )
    from repro.devtools.analysis.cli import add_check_arguments

    add_check_arguments(check)
    return parser


def _command_experiment(args) -> int:
    from repro.experiments import EXPERIMENTS

    wanted = args.id.upper()
    if wanted != "ALL" and wanted not in EXPERIMENTS:
        print(
            f"unknown experiment {args.id!r}; "
            f"available: {', '.join(sorted(EXPERIMENTS))} or all",
            file=sys.stderr,
        )
        return 2
    names = sorted(EXPERIMENTS) if wanted == "ALL" else [wanted]
    if args.output is not None or args.csv_dir is not None:
        from repro.experiments.report import run_report

        document = run_report(
            names,
            fast=not args.full,
            output=args.output,
            csv_dir=args.csv_dir,
        )
        if args.output is not None:
            print(f"report written to {args.output}")
        else:
            print(document)
        return 0
    for name in names:
        module = EXPERIMENTS[name]
        table = module.run(fast=not args.full)
        print(module.report(table))
        print()
    return 0


def _command_run_grid(args) -> int:
    from repro.api.canonical import canonical_json
    from repro.experiments import EXPERIMENTS
    from repro.experiments.runner import run_grid
    from repro.experiments.store import ResultStore

    wanted = [name.upper() for name in args.ids]
    if "ALL" in wanted:
        wanted = sorted(EXPERIMENTS)
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment ids {unknown}; "
            f"available: {', '.join(sorted(EXPERIMENTS))} or all",
            file=sys.stderr,
        )
        return 2
    if args.resume and args.store is None:
        print("--resume requires --store", file=sys.stderr)
        return 2
    store = ResultStore(args.store) if args.store is not None else None
    policies = (
        [p.strip() for p in args.policies.split(",")]
        if args.policies
        else None
    )
    try:
        budgets = (
            [int(b) for b in args.budgets.split(",")]
            if args.budgets
            else None
        )
    except ValueError:
        print(
            f"--budgets must be comma-separated integers, "
            f"got {args.budgets!r}",
            file=sys.stderr,
        )
        return 2
    for name in wanted:
        module = EXPERIMENTS[name]
        grid = module.grid(fast=not args.full).filter(
            policies=policies, budgets=budgets
        )
        if len(grid) == 0:
            print(
                f"{name}: no cells match the given filters; skipping",
                file=sys.stderr,
            )
            continue
        if args.list_cells:
            print(f"{name}: {len(grid)} cells")
            for cell in grid:
                print(f"  {cell.cell_id}  {canonical_json(cell.params)}")
            continue

        def progress(done, total, cell):
            print(f"  [{done}/{total}] {cell.experiment} {cell.cell_id}")

        report = run_grid(
            grid,
            workers=args.workers,
            store=store,
            resume=args.resume,
            progress=progress,
        )
        print(report.summary())
        print(module.report(report.table))
        print()
    return 0


def _command_demo(args) -> int:
    spec = SessionSpec(
        instance=InstanceSpec(
            n=args.n,
            k=args.k,
            workload="uniform",
            seed=args.seed,
            params={"width": args.width},
        ),
        policy=PolicySpec(args.policy),
        crowd=CrowdSpec(accuracy=args.accuracy),
        budget=BudgetSpec(args.budget),
        engine=EngineSpec("grid", {"resolution": 800}),
    )
    prepared = prepare_session(spec)
    result = prepared.run()
    true_top = [int(t) for t in prepared.truth.top_k(spec.instance.k)]
    print(f"true top-{spec.instance.k}: {true_top}")
    print(result.summary())
    for answer in result.answers:
        print(f"  {answer}")
    best = result.final_space.most_probable_ordering()
    print(f"most probable top-{spec.instance.k}: {[int(t) for t in best]}")
    return 0


def _command_list(args) -> int:
    registries = all_registries()
    if args.kind is not None:
        registries = {args.kind: registries[args.kind]}
    if args.as_json:
        print(
            json.dumps(
                {
                    kind: registry.available()
                    for kind, registry in registries.items()
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    for kind, registry in sorted(registries.items()):
        names = registry.available()
        print(f"{kind} ({len(names)}): {', '.join(names)}")
    return 0


def _command_inspect(args) -> int:
    scores = WORKLOADS.create(args.workload, args.n, rng=args.seed)
    stats = overlap_statistics(scores)
    print(f"workload: {args.workload}, n={args.n}")
    for key, value in stats.items():
        print(f"  {key}: {value:g}")
    engine = EngineSpec("grid", {"resolution": 800}).build()
    space = engine.build(scores, args.k).to_space()
    print()
    print(profile_space(space).format())
    print()
    print("best questions to ask:")
    for question, residual, reduction in question_impact_table(space, top=5):
        print(
            f"  {question}  residual={residual:.3f}  "
            f"reduction={reduction:.3f}"
        )
    return 0


def _serve_spec_from_args(args) -> Any:
    """The ``repro serve`` flags are a thin parser over ``ServeSpec``."""
    from repro.api.specs import ServeSpec, StoreSpec

    backend = args.store
    if backend is None:
        # A fleet without a shared tier would rebuild every TPO per
        # worker; the single process keeps its historical plain cache.
        backend = "disk-npz" if args.workers > 1 else "none"
    path = args.store_path
    if backend == "disk-npz" and path is None:
        path = (
            f"{args.log}.store" if args.log else "repro-tpo-store"
        )
    store = StoreSpec(
        backend=backend, hot_capacity=args.cache_capacity, path=path
    )
    return ServeSpec(
        host=args.host,
        port=args.port,
        workers=args.workers,
        shard_by=args.shard_by,
        store=store,
        log=args.log,
        resolution=args.resolution,
    )


def _command_serve(args) -> int:
    import asyncio

    from repro.service.manager import SessionManager
    from repro.service.server import serve

    if args.resume and args.log is None:
        print("--resume requires --log", file=sys.stderr)
        return 2
    try:
        spec = _serve_spec_from_args(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if spec.workers > 1:
        from repro.service.sharding import run_sharded

        try:
            run_sharded(spec, resume=args.resume)
        except KeyboardInterrupt:
            print("service stopped")
        return 0
    kwargs = dict(
        cache=spec.store.build(),
        builder=EngineSpec(
            "grid", {"resolution": spec.resolution}
        ).build(),
    )
    if args.resume:
        manager = SessionManager.resume(spec.log, **kwargs)
        restored = len(manager.session_ids(status=None))
        print(f"restored {restored} session(s) from {spec.log}")
    else:
        manager = SessionManager(log_path=spec.log, **kwargs)
    try:
        asyncio.run(serve(manager, host=spec.host, port=spec.port))
    except KeyboardInterrupt:
        print("service stopped")
    return 0


def _command_bench_service(args) -> int:
    from repro.service.bench import run as run_bench
    from repro.service.bench import run_multi

    if args.multi:
        failures = run_multi(
            sessions=args.sessions,
            instances=args.instances,
            answers=args.answers,
            n=args.n,
            k=args.k,
            width=args.width,
            resolution=args.resolution,
            workers=args.workers,
            json_path=args.json,
            smoke=args.smoke,
        )
    else:
        failures = run_bench(
            sessions=args.sessions,
            instances=args.instances,
            answers=args.answers,
            n=args.n,
            k=args.k,
            width=args.width,
            resolution=args.resolution,
            json_path=args.json,
            smoke=args.smoke,
        )
    return 1 if failures else 0


def _command_bench_engines(args) -> int:
    from repro.tpo.bench import run as run_bench

    failures = run_bench(
        n=args.n,
        k=args.k,
        width=args.width,
        resolution=args.resolution,
        mc_samples=args.mc_samples,
        repetitions=args.repetitions,
        json_path=args.json,
        smoke=args.smoke,
    )
    return 1 if failures else 0


def _command_eval(args) -> int:
    from pathlib import Path

    from repro.api.catalog import EVALS
    from repro.evals.report import (
        compare_to_baseline,
        load_report,
        run_eval,
        summarize,
        write_report,
    )

    available = EVALS.available()
    unknown = [s for s in (args.suites or []) if s not in available]
    if unknown:
        print(
            f"unknown eval suites {unknown}; "
            f"available: {', '.join(sorted(available))}",
            file=sys.stderr,
        )
        return 2
    if args.resume and args.store_dir is None:
        print("--resume requires --store-dir", file=sys.stderr)
        return 2

    def progress(done, total, cell):
        print(f"  [{done}/{total}] {cell.experiment} {cell.cell_id}")

    report = run_eval(
        suites=args.suites,
        fast=not args.full,
        workers=args.workers,
        store_dir=Path(args.store_dir) if args.store_dir else None,
        resume=args.resume,
        progress=progress,
    )
    print(summarize(report))
    if args.json is not None:
        write_report(report, Path(args.json))
        print(f"report written to {args.json}")
    exit_code = 0 if report["passed"] else 1
    if args.baseline is not None:
        baseline = load_report(Path(args.baseline))
        if args.suites:
            # An explicit --suite selection is not a regression of the
            # suites deliberately left out; compare only what ran.
            baseline = dict(
                baseline,
                suites={
                    name: section
                    for name, section in baseline.get("suites", {}).items()
                    if name in args.suites
                },
            )
        regressions = compare_to_baseline(report, baseline)
        for line in regressions:
            print(f"REGRESSION: {line}", file=sys.stderr)
        if regressions:
            exit_code = 1
        else:
            print(f"no regressions against {args.baseline}")
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "run-grid":
        return _command_run_grid(args)
    if args.command == "demo":
        return _command_demo(args)
    if args.command == "list":
        return _command_list(args)
    if args.command == "inspect":
        return _command_inspect(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "bench-service":
        return _command_bench_service(args)
    if args.command == "bench-engines":
        return _command_bench_engines(args)
    if args.command == "eval":
        return _command_eval(args)
    if args.command == "lint":
        from repro.devtools.lint.cli import run_lint

        return run_lint(args)
    if args.command == "check":
        from repro.devtools.analysis.cli import run_check

        return run_check(args)
    return 2  # unreachable: argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
