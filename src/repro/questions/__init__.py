"""Crowd-question machinery (substrate S5 in DESIGN.md)."""

from repro.questions.candidates import (
    all_pair_questions,
    informative_questions,
    is_settled,
    relevant_questions,
)
from repro.questions.model import Answer, Question
from repro.questions.residual import ResidualEvaluator
from repro.questions.transitive import InferenceCache, TransitiveClosure

__all__ = [
    "Question",
    "Answer",
    "all_pair_questions",
    "relevant_questions",
    "informative_questions",
    "is_settled",
    "ResidualEvaluator",
    "TransitiveClosure",
    "InferenceCache",
]
