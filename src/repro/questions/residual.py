"""Expected residual uncertainty of question (sets).

This is the objective every selection policy optimizes (§III of the paper):
``R_q(T_K)`` — the expected uncertainty of the tree after asking ``q`` and
pruning with the answer — and its generalization ``R_Q`` to question sets.

Single questions are a two-outcome expectation.  For sets we avoid the
``2^B`` answer-vector blow-up: each ordering of the space induces an answer
*pattern* in ``{+1, −1, 0}^B``, so at most ``L`` (= number of orderings)
distinct answer combinations actually have support.  ``R_Q`` is the
pattern-mass-weighted expectation of the measure over the compatible
sub-spaces (exact whenever all orderings are decisive on all questions,
e.g. when ``K = N``; the canonical tractable reading otherwise — see
DESIGN.md §3.3).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.questions.model import Question
from repro.tpo.space import DegenerateSpaceError, OrderingSpace
from repro.uncertainty.base import UncertaintyMeasure


class ResidualEvaluator:
    """Evaluates expected residual uncertainty under a fixed measure.

    Parameters
    ----------
    measure:
        The uncertainty measure ``U`` defining the objective.
    """

    def __init__(self, measure: UncertaintyMeasure) -> None:
        self.measure = measure
        #: Number of measure evaluations performed (cost accounting).
        self.evaluations = 0

    # ------------------------------------------------------------------

    def uncertainty(self, space: OrderingSpace) -> float:
        """``U(T)`` itself (counted like any other evaluation)."""
        self.evaluations += 1
        return self.measure(space)

    def single(self, space: OrderingSpace, question: Question) -> float:
        """``R_q(T) = Pr(yes)·U(T|yes) + Pr(no)·U(T|no)``.

        ``Pr(yes)`` is the normalized decisive mass (paths silent on the
        pair are consistent with either answer and survive both prunings).
        """
        codes = space.agreement_codes(question.i, question.j)
        mass_yes = float(space.probabilities[codes == 1].sum())
        mass_no = float(space.probabilities[codes == -1].sum())
        decisive = mass_yes + mass_no
        if decisive <= 0.0:
            # The question cannot prune anything: residual = current U.
            return self.uncertainty(space)
        p_yes = mass_yes / decisive
        residual = 0.0
        if p_yes > 0.0:
            residual += p_yes * self.uncertainty(space.restrict(codes != -1))
        if p_yes < 1.0:
            residual += (1.0 - p_yes) * self.uncertainty(
                space.restrict(codes != 1)
            )
        return residual

    def rank_singles(
        self, space: OrderingSpace, questions: Sequence[Question]
    ) -> np.ndarray:
        """``R_q`` for every candidate; returns an aligned float array."""
        return np.array([self.single(space, q) for q in questions])

    # ------------------------------------------------------------------

    def codes_matrix(
        self, space: OrderingSpace, questions: Sequence[Question]
    ) -> np.ndarray:
        """``(L, B)`` stance matrix of every path on every question.

        Policies that evaluate many overlapping question sets (``C-off``,
        ``A*``, ``Exhaustive``) compute this once and pass column slices to
        :meth:`set_residual_from_codes`.
        """
        if not questions:
            return np.zeros((space.size, 0), dtype=np.int8)
        return np.stack(
            [space.agreement_codes(q.i, q.j) for q in questions], axis=1
        )

    def question_set(
        self,
        space: OrderingSpace,
        questions: Sequence[Question],
        pattern_cap: Optional[int] = None,
    ) -> float:
        """``R_Q(T)`` for a set of questions via the pattern partition.

        ``pattern_cap`` optionally bounds the number of distinct patterns
        evaluated (most massive first) and treats the tail as unresolved
        (contributing the current-space measure) — an upper bound used to
        keep deep offline searches affordable.
        """
        codes = self.codes_matrix(space, questions)
        return self.set_residual_from_codes(space, codes, pattern_cap)

    def set_residual_from_codes(
        self,
        space: OrderingSpace,
        codes: np.ndarray,
        pattern_cap: Optional[int] = None,
    ) -> float:
        """``R_Q`` given a precomputed ``(L, B)`` stance matrix."""
        if codes.shape[1] == 0:
            return self.uncertainty(space)
        patterns, inverse = np.unique(codes, axis=0, return_inverse=True)
        masses = np.bincount(inverse, weights=space.probabilities)
        order = np.argsort(-masses)
        residual = 0.0
        evaluated_mass = 0.0
        for position, pattern_index in enumerate(order):
            if pattern_cap is not None and position >= pattern_cap:
                break
            mass = masses[pattern_index]
            if mass <= 0.0:
                continue
            pattern = patterns[pattern_index]
            constrained = pattern != 0
            if not np.any(constrained):
                # Totally silent pattern: observing "answers" compatible
                # with it leaves the space untouched.
                compatible = np.ones(space.size, dtype=bool)
            else:
                relevant = codes[:, constrained]
                target = pattern[constrained]
                compatible = np.all(
                    (relevant == 0) | (relevant == target), axis=1
                )
            residual += mass * self.uncertainty(space.restrict(compatible))
            evaluated_mass += mass
        if evaluated_mass < 1.0 - 1e-12:
            residual += (1.0 - evaluated_mass) * self.uncertainty(space)
        return residual

    # ------------------------------------------------------------------

    def apply_answer(
        self,
        space: OrderingSpace,
        question: Question,
        holds: bool,
        accuracy: float = 1.0,
    ) -> OrderingSpace:
        """Update a space with a received answer (prune or reweight).

        With ``accuracy == 1`` the disagreeing orderings are pruned; a
        contradictory answer (possible only if the assumed accuracy
        overstates the worker) leaves the space unchanged rather than
        emptying it, mirroring a deployment that must stay consistent.
        """
        if accuracy >= 1.0:
            try:
                return space.condition(question.i, question.j, holds)
            except DegenerateSpaceError:
                return space
        return space.reweight_by_answer(question.i, question.j, holds, accuracy)


__all__ = ["ResidualEvaluator"]
