"""Expected residual uncertainty of question (sets).

This is the objective every selection policy optimizes (§III of the paper):
``R_q(T_K)`` — the expected uncertainty of the tree after asking ``q`` and
pruning with the answer — and its generalization ``R_Q`` to question sets.

Single questions are a two-outcome expectation.  For sets we avoid the
``2^B`` answer-vector blow-up: each ordering of the space induces an answer
*pattern* in ``{+1, −1, 0}^B``, so at most ``L`` (= number of orderings)
distinct answer combinations actually have support.  ``R_Q`` is the
pattern-mass-weighted expectation of the measure over the compatible
sub-spaces (exact whenever all orderings are decisive on all questions,
e.g. when ``K = N``; the canonical tractable reading otherwise — see
DESIGN.md §3.3).

Batched evaluation
------------------
Selection policies score *every* candidate pair per step, which under the
scalar path means two throwaway :class:`~repro.tpo.space.OrderingSpace`
objects per candidate.  The batch engine instead works on *hypothetical
posteriors*: an answer outcome is just a masked reweighting of the path
probability vector, so

1. :meth:`ResidualEvaluator.stance_matrix` computes the full ``(L, B)``
   stance matrix for all candidates in one shot from ``positions()``;
2. both answer branches of every candidate become rows of one ``(≤2B, L)``
   weight matrix, priced by a single call to
   :meth:`~repro.uncertainty.base.UncertaintyMeasure.evaluate_batch`
   (each measure vectorizes over rows, no intermediate spaces);
3. :meth:`ResidualEvaluator.rank_singles_batch` combines the branch values
   into the ``(B,)`` residual vector the policies consume, and
   :meth:`ResidualEvaluator.set_residual_from_codes` prices all answer
   patterns of a question set the same way.

The scalar path (:meth:`ResidualEvaluator.single`,
:meth:`ResidualEvaluator.rank_singles`,
:meth:`ResidualEvaluator.set_residual_from_codes_scalar`) is retained as
the test oracle; parity within 1e-9 is enforced by the test suite across
all registered measures and TPO engines.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.questions.model import Question
from repro.tpo.space import DegenerateSpaceError, OrderingSpace
from repro.uncertainty.base import UncertaintyMeasure


def _rows_per_chunk(size: int, cap: int = 4096) -> int:
    """Hypothetical-posterior rows per batched measure call.

    Bounds the ``rows × L`` float64 temporaries the measures allocate to
    ~128 MB regardless of ``L``, so the batch engine never exceeds the
    O(L) working set of the scalar path by more than a constant.
    """
    return max(1, min(cap, (1 << 24) // max(size, 1)))


def select_min_residual(
    residuals: np.ndarray, slack: float = 0.0
) -> int:
    """Index of the chosen candidate under interval-aware tie-breaking.

    With ``slack == 0`` this is exactly ``argmin`` (first minimum in
    canonical candidate order — the historical deterministic rule).  On a
    beam-approximate space residuals are only known to within the
    measure's certified interval width, so candidates within ``slack`` of
    the minimum are treated as tied and the first of them in canonical
    order wins — selection cannot flap on noise the approximation itself
    introduced.  An infinite ``slack`` (the conservative base-measure
    fallback) therefore picks the first candidate.
    """
    residuals = np.asarray(residuals, dtype=float)
    if residuals.size == 0:
        raise ValueError("no candidates to select from")
    if slack <= 0.0:
        return int(np.argmin(residuals))
    if not np.isfinite(slack):
        return 0
    best = float(residuals.min())
    return int(np.flatnonzero(residuals <= best + slack)[0])


class ResidualEvaluator:
    """Evaluates expected residual uncertainty under a fixed measure.

    Parameters
    ----------
    measure:
        The uncertainty measure ``U`` defining the objective.
    """

    def __init__(self, measure: UncertaintyMeasure) -> None:
        self.measure = measure
        #: Number of measure evaluations performed (cost accounting).
        #: Batched calls count one evaluation per hypothetical posterior.
        self.evaluations = 0
        #: Contradictory reliable answers swallowed by :meth:`apply_answer`
        #: (the space was left unchanged instead of being emptied).
        self.contradictions = 0
        #: Realized-value observers notified by :meth:`apply_answer`
        #: (see :meth:`attach_observer`).  Empty in every hot path.
        self._observers: list = []

    # ------------------------------------------------------------------
    # Realized-value hooks (the evaluation harness's instrumentation)
    # ------------------------------------------------------------------

    def attach_observer(self, observer: object) -> None:
        """Subscribe an observer to *real* answer applications.

        ``observer.on_answer(before, question, holds, accuracy, after)``
        is called once per :meth:`apply_answer` — the one place every
        committed answer flows through, for batch sessions and the
        interactive service alike — with the pre- and post-update spaces.
        Hypothetical posteriors priced during question scoring never
        trigger it, so an observer sees exactly the realized trajectory.
        This is the hook :mod:`repro.evals` builds calibration curves on
        (predicted residual reduction vs what the answer actually did).
        """
        if observer not in self._observers:
            self._observers.append(observer)

    def detach_observer(self, observer: object) -> None:
        """Unsubscribe a previously attached observer (idempotent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    # ------------------------------------------------------------------

    def uncertainty(self, space: OrderingSpace) -> float:
        """``U(T)`` itself (counted like any other evaluation)."""
        self.evaluations += 1
        return self.measure(space)

    def uncertainty_interval(
        self, space: OrderingSpace
    ) -> "tuple[float, float]":
        """Certified ``[lo, hi]`` for ``U(T)`` (see
        :meth:`UncertaintyMeasure.evaluate_interval`)."""
        self.evaluations += 1
        return self.measure.evaluate_interval(space)

    def ranking_slack(self, space: OrderingSpace) -> float:
        """Indifference slack for candidate selection on ``space``.

        Exact spaces get ``0.0`` — selection reduces to the historical
        ``argmin`` with zero extra measure work.  On a beam-approximate
        space the certified interval width of the measure bounds how far
        any residual can be from its exact value, so residuals closer
        than that are genuinely indistinguishable.
        """
        if space.lost_mass <= 0.0:
            return 0.0
        lo, hi = self.uncertainty_interval(space)
        return float(hi - lo)

    def single(self, space: OrderingSpace, question: Question) -> float:
        """``R_q(T) = Pr(yes)·U(T|yes) + Pr(no)·U(T|no)``.

        ``Pr(yes)`` is the normalized decisive mass (paths silent on the
        pair are consistent with either answer and survive both prunings).
        """
        codes = space.agreement_codes(question.i, question.j)
        mass_yes = float(space.probabilities[codes == 1].sum())
        mass_no = float(space.probabilities[codes == -1].sum())
        decisive = mass_yes + mass_no
        if decisive <= 0.0:
            # The question cannot prune anything: residual = current U.
            return self.uncertainty(space)
        p_yes = mass_yes / decisive
        residual = 0.0
        if p_yes > 0.0:
            residual += p_yes * self.uncertainty(space.restrict(codes != -1))
        if p_yes < 1.0:
            residual += (1.0 - p_yes) * self.uncertainty(
                space.restrict(codes != 1)
            )
        return residual

    def rank_singles(
        self, space: OrderingSpace, questions: Sequence[Question]
    ) -> np.ndarray:
        """``R_q`` for every candidate, one at a time (the scalar oracle).

        Kept for verification; policies use the equivalent — and much
        faster — :meth:`rank_singles_batch`.
        """
        return np.array(
            [self.single(space, q) for q in questions], dtype=np.float64
        )

    def rank_singles_batch(
        self,
        space: OrderingSpace,
        questions: Sequence[Question],
        chunk: Optional[int] = None,
    ) -> np.ndarray:
        """``R_q`` for every candidate via the batched measure API.

        Builds the ``(L, B)`` stance matrix in one shot, turns both answer
        branches of every decisive candidate into rows of a hypothetical
        posterior weight matrix, and prices all of them with chunked
        :meth:`~repro.uncertainty.base.UncertaintyMeasure.evaluate_restrictions`
        calls — no intermediate :class:`OrderingSpace` objects, and all
        float temporaries bounded to ``chunk × L`` elements (chunk is
        auto-sized from ``L`` when omitted).  Values match
        :meth:`rank_singles` to float precision.
        """
        count = len(questions)
        if count == 0:
            return np.zeros(0, dtype=np.float64)
        if chunk is None:
            chunk = _rows_per_chunk(space.size)
        codes = self.codes_matrix(space, questions)
        p = space.probabilities
        yes_stance = codes == 1  # (L, B)
        no_stance = codes == -1
        # One float view of the stances yields both masses as matvecs:
        # p·codes = m_yes − m_no and p·|codes| = m_yes + m_no; converted
        # in column chunks so the float64 temporaries stay bounded.
        signed = np.empty(count, dtype=np.float64)
        decisive = np.empty(count, dtype=np.float64)
        for start in range(0, count, chunk):
            block = slice(start, min(start + chunk, count))
            codes_float = codes[:, block].astype(np.float64)
            signed[block] = p @ codes_float
            decisive[block] = p @ np.abs(codes_float)
        mass_yes = 0.5 * (decisive + signed)
        mass_no = 0.5 * (decisive - signed)
        residuals = np.empty(count, dtype=np.float64)
        silent = decisive <= 0.0
        if np.any(silent):
            # Such questions cannot prune anything: residual = current U.
            residuals[silent] = self.uncertainty(space)
        active = ~silent
        yes_branch = active & (mass_yes > 0.0)
        no_branch = active & (mass_no > 0.0)

        # Surviving-path masks per branch ("yes" keeps codes != -1 etc.),
        # built chunk by chunk so no (2B, L) matrix ever exists — the
        # memory bound holds in B as well as L.
        def evaluate_branch(
            excluded_stance: np.ndarray, selected: np.ndarray, out: np.ndarray
        ) -> int:
            columns = np.flatnonzero(selected)
            for start in range(0, columns.size, chunk):
                block = columns[start : start + chunk]
                rows = ~excluded_stance.T[block]
                out[block] = self.measure.evaluate_restrictions(space, rows)
            return columns.size

        u_yes = np.zeros(count, dtype=np.float64)
        u_no = np.zeros(count, dtype=np.float64)
        evaluated = evaluate_branch(no_stance, yes_branch, u_yes)
        evaluated += evaluate_branch(yes_stance, no_branch, u_no)
        self.evaluations += evaluated
        p_yes = mass_yes / np.where(active, decisive, 1.0)
        residuals[active] = (
            p_yes[active] * u_yes[active]
            + (1.0 - p_yes[active]) * u_no[active]
        )
        return residuals

    def rank_singles_many(
        self,
        requests: Sequence[tuple],
        keys: Optional[Sequence] = None,
    ) -> list:
        """Price many ``(space, questions)`` ranking requests at once.

        The cross-session batch entry point: a service manager holding N
        concurrent sessions funnels their pending next-question requests
        through one call.  ``keys`` optionally names each request's state
        (e.g. the (instance hash, answer history) of its session); requests
        sharing a key are in bit-identical states, so their ranking is
        computed by a single :meth:`rank_singles_batch` call and fanned
        back out.  Without keys every request is priced independently.

        Returns one residual array per request, aligned with ``requests``
        (shared — not copied — within a key group; treat as read-only).
        """
        count = len(requests)
        if keys is None:
            keys = range(count)
        elif len(keys) != count:
            raise ValueError(
                f"got {len(keys)} keys for {count} requests"
            )
        groups: dict = {}
        for index, key in enumerate(keys):
            groups.setdefault(key, []).append(index)
        results: list = [None] * count
        for indices in groups.values():
            space, questions = requests[indices[0]]
            values = self.rank_singles_batch(space, list(questions))
            for index in indices:
                results[index] = values
        return results

    # ------------------------------------------------------------------

    def codes_matrix(
        self, space: OrderingSpace, questions: Sequence[Question]
    ) -> np.ndarray:
        """``(L, B)`` stance matrix of every path on every question.

        Computed in one vectorized shot from ``space.positions()`` (see
        :meth:`~repro.tpo.space.OrderingSpace.stance_matrix`) rather than
        ``B`` separate ``agreement_codes`` calls.  Policies that evaluate
        many overlapping question sets (``C-off``, ``A*``, ``Exhaustive``)
        compute this once and pass column slices to
        :meth:`set_residual_from_codes`.
        """
        if not questions:
            return np.zeros((space.size, 0), dtype=np.int8)
        i_indices = np.fromiter((q.i for q in questions), dtype=np.intp)
        j_indices = np.fromiter((q.j for q in questions), dtype=np.intp)
        return space.stance_matrix(i_indices, j_indices)

    def question_set(
        self,
        space: OrderingSpace,
        questions: Sequence[Question],
        pattern_cap: Optional[int] = None,
    ) -> float:
        """``R_Q(T)`` for a set of questions via the pattern partition.

        ``pattern_cap`` optionally bounds the number of distinct patterns
        evaluated (most massive first) and treats the tail as unresolved
        (contributing the current-space measure) — an upper bound used to
        keep deep offline searches affordable.
        """
        codes = self.codes_matrix(space, questions)
        return self.set_residual_from_codes(space, codes, pattern_cap)

    def set_residual_from_codes(
        self,
        space: OrderingSpace,
        codes: np.ndarray,
        pattern_cap: Optional[int] = None,
    ) -> float:
        """``R_Q`` given a precomputed ``(L, B)`` stance matrix.

        All (capped) answer patterns become rows of hypothetical posterior
        weight matrices priced by chunked ``evaluate_restrictions`` calls
        (chunks sized so memory stays bounded even when every ordering
        induces its own pattern); values match
        :meth:`set_residual_from_codes_scalar` to float precision.
        """
        if codes.shape[1] == 0:
            return self.uncertainty(space)
        patterns, inverse = np.unique(codes, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        masses = np.bincount(inverse, weights=space.probabilities)
        order = np.argsort(-masses)
        if pattern_cap is not None:
            order = order[:pattern_cap]
        order = order[masses[order] > 0.0]
        if order.size == 0:
            return self.uncertainty(space)
        # One compatibility mask per evaluated pattern: a path survives
        # when, on every question the pattern constrains, it either agrees
        # or is silent.
        chunk = _rows_per_chunk(space.size)
        residual = 0.0
        for start in range(0, order.size, chunk):
            block = order[start : start + chunk]
            rows = np.empty((block.size, space.size), dtype=bool)
            for row_index, pattern_index in enumerate(block):
                pattern = patterns[pattern_index]
                constrained = pattern != 0
                if not np.any(constrained):
                    # Totally silent pattern: observing "answers" compatible
                    # with it leaves the space untouched.
                    rows[row_index] = True
                else:
                    relevant = codes[:, constrained]
                    target = pattern[constrained]
                    rows[row_index] = np.all(
                        (relevant == 0) | (relevant == target), axis=1
                    )
            values = self.measure.evaluate_restrictions(space, rows)
            residual += float(np.dot(masses[block], values))
        self.evaluations += order.size
        evaluated_mass = float(masses[order].sum())
        if evaluated_mass < 1.0 - 1e-12:
            residual += (1.0 - evaluated_mass) * self.uncertainty(space)
        return residual

    def rank_set_extensions(
        self,
        space: OrderingSpace,
        codes: np.ndarray,
        base_columns: Sequence[int],
        candidate_columns: Sequence[int],
        pattern_cap: Optional[int] = None,
    ) -> np.ndarray:
        """``R_{S ∪ {c}}`` for every candidate column ``c`` at once.

        The greedy set policies (``C-off``, ``A*``) score every remaining
        candidate as an extension of the same already-chosen set ``S``.
        Recomputing the answer-pattern partition per candidate makes the
        ``np.unique`` sort the bottleneck; here the partition of ``S`` is
        computed once, each extension's patterns are derived by a
        ``bincount`` over ``3·base_pattern + stance`` ids, and all
        compatibility masks are assembled vectorized.  Values match
        per-candidate :meth:`set_residual_from_codes` to float precision,
        including the tie resolution of a ``pattern_cap`` cut (both paths
        rank the identical lexicographically-ordered mass array).
        """
        base_columns = list(base_columns)
        candidate_columns = list(candidate_columns)
        if not candidate_columns:
            return np.zeros(0, dtype=np.float64)
        p = space.probabilities
        size = space.size
        if base_columns:
            base_codes = codes[:, base_columns]
            base_patterns, base_inverse = np.unique(
                base_codes, axis=0, return_inverse=True
            )
            base_inverse = base_inverse.ravel()
        else:
            base_patterns = np.zeros((1, 0), dtype=codes.dtype)
            base_inverse = np.zeros(size, dtype=np.intp)
        n_base = base_patterns.shape[0]
        # Compatibility masks of base patterns, built lazily: under a
        # pattern_cap only the capped patterns of each candidate are ever
        # touched, so memory stays O(touched · L) rather than
        # O(n_base · L · |S|) — n_base can approach L on large spaces.
        compat_cache: dict = {}

        def base_compat_row(pattern_index: int) -> np.ndarray:
            row = compat_cache.get(pattern_index)
            if row is None:
                pattern = base_patterns[pattern_index]
                # A pattern constrains only the questions it is decisive
                # on; a path is compatible when it is silent or agrees.
                constrained = pattern != 0
                if not np.any(constrained):
                    row = np.ones(size, dtype=bool)
                else:
                    relevant = base_codes[:, constrained]
                    row = np.all(
                        (relevant == 0) | (relevant == pattern[constrained]),
                        axis=1,
                    )
                compat_cache[pattern_index] = row
            return row
        results = np.empty(len(candidate_columns), dtype=np.float64)
        current_uncertainty: Optional[float] = None
        chunk = _rows_per_chunk(size)
        for out_index, column in enumerate(candidate_columns):
            stances = codes[:, column]
            ids = base_inverse * 3 + (stances.astype(np.intp) + 1)
            # Compress to ids actually realized by some path: ascending id
            # order equals np.unique's lexicographic pattern order (base
            # pattern rank, then stance −1 < 0 < +1), so the capped
            # argsort below sees the *same* mass array as
            # set_residual_from_codes and resolves mass ties identically.
            realized = np.flatnonzero(np.bincount(ids, minlength=3 * n_base))
            masses = np.bincount(ids, weights=p, minlength=3 * n_base)[
                realized
            ]
            order = np.argsort(-masses)
            if pattern_cap is not None:
                order = order[:pattern_cap]
            order = order[masses[order] > 0.0]
            residual = 0.0
            for start in range(0, order.size, chunk):
                block_positions = order[start : start + chunk]
                block = realized[block_positions]
                base_index = block // 3
                stance_index = block % 3  # 0 → −1, 1 → silent, 2 → +1
                rows = np.empty((block.size, size), dtype=bool)
                for row_index, pattern_index in enumerate(base_index):
                    rows[row_index] = base_compat_row(int(pattern_index))
                decisive = stance_index != 1
                if np.any(decisive):
                    targets = (stance_index[decisive] - 1).astype(codes.dtype)
                    rows[decisive] &= (stances[None, :] == 0) | (
                        stances[None, :] == targets[:, None]
                    )
                values = self.measure.evaluate_restrictions(space, rows)
                residual += float(np.dot(masses[block_positions], values))
            self.evaluations += order.size
            evaluated_mass = float(masses[order].sum())
            if evaluated_mass < 1.0 - 1e-12:
                if current_uncertainty is None:
                    current_uncertainty = self.uncertainty(space)
                residual += (1.0 - evaluated_mass) * current_uncertainty
            results[out_index] = residual
        return results

    def set_residual_from_codes_scalar(
        self,
        space: OrderingSpace,
        codes: np.ndarray,
        pattern_cap: Optional[int] = None,
    ) -> float:
        """Scalar oracle for :meth:`set_residual_from_codes` (one restricted
        space per answer pattern); retained for tests and benchmarks."""
        if codes.shape[1] == 0:
            return self.uncertainty(space)
        patterns, inverse = np.unique(codes, axis=0, return_inverse=True)
        inverse = inverse.ravel()
        masses = np.bincount(inverse, weights=space.probabilities)
        order = np.argsort(-masses)
        residual = 0.0
        evaluated_mass = 0.0
        for position, pattern_index in enumerate(order):
            if pattern_cap is not None and position >= pattern_cap:
                break
            mass = masses[pattern_index]
            if mass <= 0.0:
                continue
            pattern = patterns[pattern_index]
            constrained = pattern != 0
            if not np.any(constrained):
                compatible = np.ones(space.size, dtype=bool)
            else:
                relevant = codes[:, constrained]
                target = pattern[constrained]
                compatible = np.all(
                    (relevant == 0) | (relevant == target), axis=1
                )
            residual += mass * self.uncertainty(space.restrict(compatible))
            evaluated_mass += mass
        if evaluated_mass < 1.0 - 1e-12:
            residual += (1.0 - evaluated_mass) * self.uncertainty(space)
        return residual

    # ------------------------------------------------------------------

    def apply_answer(
        self,
        space: OrderingSpace,
        question: Question,
        holds: bool,
        accuracy: float = 1.0,
    ) -> OrderingSpace:
        """Update a space with a received answer (prune or reweight).

        With ``accuracy == 1`` the disagreeing orderings are pruned; a
        contradictory answer (possible only if the assumed accuracy
        overstates the worker) leaves the space unchanged rather than
        emptying it, mirroring a deployment that must stay consistent.
        Swallowed contradictions are counted in :attr:`contradictions` so
        sessions can surface them instead of silently misreporting noisy
        crowds as clean.
        """
        if accuracy >= 1.0:
            try:
                updated = space.condition(question.i, question.j, holds)
            except DegenerateSpaceError:
                self.contradictions += 1
                updated = space
        else:
            updated = space.reweight_by_answer(
                question.i, question.j, holds, accuracy
            )
        for observer in self._observers:
            observer.on_answer(space, question, holds, accuracy, updated)
        return updated


__all__ = ["ResidualEvaluator", "select_min_residual"]
