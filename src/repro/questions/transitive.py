"""Transitive inference over collected reliable answers.

Pairwise ranking answers compose: ``t_a ≺ t_b`` and ``t_b ≺ t_c`` imply
``t_a ≺ t_c``, so a question whose answer is already implied wastes budget.
This module maintains the transitive closure of the reliable answers
received so far (plus the order constraints already implied by
non-overlapping score pdfs) and lets the session answer such questions for
free — an optimization the paper's model admits but does not evaluate; the
``TRANS`` ablation experiment quantifies it.

Only applicable to reliable (accuracy = 1) answers: noisy verdicts do not
compose transitively without a probabilistic closure.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.distributions.base import ScoreDistribution
from repro.questions.model import Answer, Question


class TransitiveClosure:
    """Incremental transitive closure of "ranks-higher-than" facts.

    ``add(i, j)`` records ``t_i ≺ t_j``; ``implies(i, j)`` answers whether
    the recorded facts already force an order on the pair.  Insertion
    keeps the closure updated in O(V²) worst case per edge — fine at the
    tens-of-tuples scale of crowd-powered queries.
    """

    def __init__(self, n_tuples: int) -> None:
        if n_tuples < 1:
            raise ValueError("need at least one tuple")
        self.n_tuples = n_tuples
        #: above[i] = set of tuples known to rank strictly below t_i.
        self._below: Dict[int, Set[int]] = {i: set() for i in range(n_tuples)}
        self._above: Dict[int, Set[int]] = {i: set() for i in range(n_tuples)}

    def knows(self, i: int, j: int) -> bool:
        """True when the relative order of the pair is already determined."""
        return j in self._below[i] or i in self._below[j]

    def implies(self, i: int, j: int) -> Optional[bool]:
        """The implied truth of ``t_i ≺ t_j``, or None if undetermined."""
        if j in self._below[i]:
            return True
        if i in self._below[j]:
            return False
        return None

    def add(self, i: int, j: int) -> None:
        """Record ``t_i ≺ t_j`` and propagate transitively.

        Raises :class:`ValueError` on a fact contradicting the closure —
        the caller is feeding in answers claimed to be reliable, so a
        cycle means the reliability assumption is broken.
        """
        if i == j:
            raise ValueError("a tuple cannot rank above itself")
        if i in self._below[j]:
            raise ValueError(
                f"t{i} ≺ t{j} contradicts the existing closure"
            )
        if j in self._below[i]:
            return  # already known
        uppers = self._above[i] | {i}
        lowers = self._below[j] | {j}
        for upper in uppers:
            self._below[upper] |= lowers
        for lower in lowers:
            self._above[lower] |= uppers

    def add_answer(self, answer: Answer) -> None:
        """Record a reliable crowd answer (noisy answers are rejected)."""
        if answer.accuracy < 1.0:
            raise ValueError(
                "transitive closure only composes reliable answers"
            )
        q = answer.question
        if answer.holds:
            self.add(q.i, q.j)
        else:
            self.add(q.j, q.i)

    def seed_from_supports(
        self, distributions: Sequence[ScoreDistribution]
    ) -> int:
        """Pre-load the order already certain from disjoint pdf supports.

        Returns the number of seeded facts.
        """
        seeded = 0
        for i, di in enumerate(distributions):
            for j in range(i + 1, len(distributions)):
                dj = distributions[j]
                if di.lower >= dj.upper and self.implies(i, j) is None:
                    self.add(i, j)
                    seeded += 1
                elif dj.lower >= di.upper and self.implies(j, i) is None:
                    self.add(j, i)
                    seeded += 1
        return seeded

    def known_pairs(self) -> int:
        """Number of ordered pairs currently determined."""
        return sum(len(below) for below in self._below.values())

    def __repr__(self) -> str:
        return (
            f"TransitiveClosure(tuples={self.n_tuples}, "
            f"known_pairs={self.known_pairs()})"
        )


class InferenceCache:
    """Session helper: answer implied questions without paying the crowd.

    Wraps a closure and keeps simple savings accounting; the session (or a
    policy wrapper) consults :meth:`lookup` before posting a question and
    records every real answer via :meth:`record`.
    """

    def __init__(
        self,
        n_tuples: int,
        distributions: Optional[Sequence[ScoreDistribution]] = None,
    ) -> None:
        self.closure = TransitiveClosure(n_tuples)
        self.seeded = (
            self.closure.seed_from_supports(distributions)
            if distributions is not None
            else 0
        )
        self.inferred = 0
        self.asked = 0

    def lookup(self, question: Question) -> Optional[Answer]:
        """A free answer when the closure already implies one."""
        implied = self.closure.implies(question.i, question.j)
        if implied is None:
            return None
        self.inferred += 1
        return Answer(question, implied, accuracy=1.0)

    def record(self, answer: Answer) -> None:
        """Feed back a real crowd answer (ignores noisy ones)."""
        self.asked += 1
        if answer.accuracy >= 1.0:
            try:
                self.closure.add_answer(answer)
            except ValueError:
                pass  # contradictory reliable answer: do not poison closure

    @property
    def savings(self) -> int:
        """Questions answered for free so far."""
        return self.inferred


__all__ = ["TransitiveClosure", "InferenceCache"]
