"""Crowd task model: pairwise ranking questions and their answers.

A crowd task is the comparison ``q = (t_i ?≺ t_j)`` — "does tuple i rank
higher than tuple j?".  Questions are canonicalized to ``i < j`` so that a
pair is one hashable identity regardless of phrasing; an :class:`Answer`
then states whether the canonical claim holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True, order=True)
class Question:
    """The pairwise comparison ``t_i ?≺ t_j`` (canonical form ``i < j``)."""

    i: int
    j: int

    def __post_init__(self) -> None:
        if self.i == self.j:
            raise ValueError("a question must compare two distinct tuples")
        if self.i > self.j:
            # Canonicalize: swap via object.__setattr__ (frozen dataclass).
            i, j = self.j, self.i
            object.__setattr__(self, "i", i)
            object.__setattr__(self, "j", j)

    @property
    def pair(self) -> Tuple[int, int]:
        """The compared tuple indices ``(i, j)`` with ``i < j``."""
        return (self.i, self.j)

    def __repr__(self) -> str:
        return f"Question(t{self.i} ?≺ t{self.j})"


@dataclass(frozen=True)
class Answer:
    """A worker's reply to a question.

    Attributes
    ----------
    question:
        The canonical question being answered.
    holds:
        True ⇔ the worker asserts ``t_i ≺ t_j`` (the canonical claim).
    accuracy:
        The reliability assumed for this answer when updating the TPO:
        1.0 triggers hard pruning, anything lower a Bayesian reweighting.
    """

    question: Question
    holds: bool
    accuracy: float = 1.0

    def __repr__(self) -> str:
        relation = "≺" if self.holds else "⊀"
        return (
            f"Answer(t{self.question.i} {relation} t{self.question.j}, "
            f"accuracy={self.accuracy:g})"
        )


__all__ = ["Question", "Answer"]
