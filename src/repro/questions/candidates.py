"""Candidate question generation.

The paper distinguishes three pools (§III–IV):

* *all comparisons* among tuples appearing in ``T_K`` — what the ``Random``
  baseline draws from;
* the relevant set ``Q_K`` — comparisons of tuples **whose pdfs overlap**,
  i.e. whose relative order is genuinely uncertain (the ``Naive`` baseline
  and all proposed algorithms draw from this);
* the *informative* subset — pairs on which the current ordering space
  still disagrees, so an answer is guaranteed to prune something.  ``Q_K``
  shrinks to this set as answers arrive (asking an already-settled pair
  wastes budget), so the selection policies regenerate candidates from the
  live space.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.distributions.base import ScoreDistribution
from repro.questions.model import Question
from repro.tpo.space import OrderingSpace


def all_pair_questions(space: OrderingSpace) -> List[Question]:
    """Every pairwise comparison among tuples present in the space."""
    present = space.present_tuples()
    return [
        Question(int(present[a]), int(present[b]))
        for a in range(len(present))
        for b in range(a + 1, len(present))
    ]


def relevant_questions(
    space: OrderingSpace,
    distributions: Optional[Sequence[ScoreDistribution]] = None,
) -> List[Question]:
    """The paper's ``Q_K``: pairs with an uncertain relative order.

    When ``distributions`` are given, uncertainty means overlapping score
    pdfs (the paper's definition); otherwise it is inferred from the space
    (both orders carry positive probability).  Pairs already settled by the
    space — every ordering agrees — are excluded in both modes, since their
    expected uncertainty reduction is zero.
    """
    questions: List[Question] = []
    present = space.present_tuples()
    for a in range(len(present)):
        for b in range(a + 1, len(present)):
            i, j = int(present[a]), int(present[b])
            if distributions is not None and not distributions[i].overlaps(
                distributions[j]
            ):
                continue
            if is_settled(space, i, j):
                continue
            questions.append(Question(i, j))
    return questions


def is_settled(space: OrderingSpace, i: int, j: int) -> bool:
    """True when every ordering of the space agrees on the pair's order.

    A pair with all stances ``≥ 0`` (or all ``≤ 0``) cannot be pruned by
    the *likely* answer; it is settled in the weaker sense used for
    candidate filtering when both decisive stances are absent on one side.
    """
    codes = space.agreement_codes(i, j)
    mass_plus = float(space.probabilities[codes == 1].sum())
    mass_minus = float(space.probabilities[codes == -1].sum())
    return mass_plus <= 0.0 or mass_minus <= 0.0


def informative_questions(space: OrderingSpace) -> List[Question]:
    """Pairs on which the space still disagrees (strictly prunable)."""
    return relevant_questions(space, distributions=None)


__all__ = [
    "all_pair_questions",
    "relevant_questions",
    "informative_questions",
    "is_settled",
]
