"""repro — Crowdsourcing for Top-K Query Processing over Uncertain Data.

A full reproduction of Ciceri, Fraternali, Martinenghi & Tagliasacchi
(ICDE 2016 / TKDE 28(1), 2016): top-K query processing over tuples with
uncertain scores, where a budget of pairwise crowd questions is spent to
shrink the space of possible orderings.

Quick start (the typed :mod:`repro.api` front door)::

    from repro.api import InstanceSpec, SessionSpec, run_session

    spec = SessionSpec(
        instance=InstanceSpec(n=12, k=5, seed=0, params={"width": 0.3}),
    )
    result = run_session(spec)
    print(result.summary())

Lower-level building blocks (distributions, builders, sessions, crowds)
remain importable from this package for programmatic composition.  The
old module-level factories (``make_policy``, ``get_measure``,
``make_workload``, ``make_builder``) are deprecated shims over
:mod:`repro.api` and emit :class:`DeprecationWarning`.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced figure and table.
"""

from repro import api
from repro.core import (
    AStarOfflinePolicy,
    AStarOnlinePolicy,
    ConditionalPolicy,
    ExhaustivePolicy,
    IncrementalAlgorithm,
    NaivePolicy,
    POLICIES,
    RandomPolicy,
    SessionResult,
    Top1OnlinePolicy,
    TopBPolicy,
    UncertaintyReductionSession,
    make_policy,
)
from repro.crowd import (
    GroundTruth,
    NoisyWorker,
    PerfectWorker,
    SimulatedCrowd,
)
from repro.db import (
    AttributeScore,
    LinearScore,
    UncertainTable,
    crowdsourced_topk,
    topk,
)
from repro.core.policies import ValueOfInformationStopper
from repro.distributions import (
    AffineDistribution,
    Histogram,
    Mixture,
    PointMass,
    ScoreDistribution,
    Triangular,
    TruncatedGaussian,
    TruncatedPareto,
    Uniform,
)
from repro.questions import Answer, Question, relevant_questions
from repro.rank import expected_topk_distance, kendall_tau, topk_kendall
from repro.tpo import (
    ExactBuilder,
    GridBuilder,
    MonteCarloBuilder,
    OrderingSpace,
    TPOTree,
    expected_ranks,
    make_builder,
    profile_space,
    pt_k,
    u_kranks,
    u_topk,
)
from repro.uncertainty import (
    EntropyMeasure,
    MPOUncertainty,
    ORAUncertainty,
    WeightedEntropyMeasure,
    get_measure,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # the typed public API
    "api",
    # distributions
    "ScoreDistribution",
    "Uniform",
    "Triangular",
    "TruncatedGaussian",
    "TruncatedPareto",
    "Histogram",
    "PointMass",
    "AffineDistribution",
    "Mixture",
    # tpo
    "TPOTree",
    "OrderingSpace",
    "GridBuilder",
    "ExactBuilder",
    "MonteCarloBuilder",
    "make_builder",
    "u_topk",
    "u_kranks",
    "pt_k",
    "expected_ranks",
    "profile_space",
    # uncertainty
    "EntropyMeasure",
    "WeightedEntropyMeasure",
    "ORAUncertainty",
    "MPOUncertainty",
    "get_measure",
    # questions
    "Question",
    "Answer",
    "relevant_questions",
    # rank
    "kendall_tau",
    "topk_kendall",
    "expected_topk_distance",
    # crowd
    "GroundTruth",
    "PerfectWorker",
    "NoisyWorker",
    "SimulatedCrowd",
    # core
    "UncertaintyReductionSession",
    "SessionResult",
    "make_policy",
    "POLICIES",
    "RandomPolicy",
    "NaivePolicy",
    "TopBPolicy",
    "ConditionalPolicy",
    "AStarOfflinePolicy",
    "AStarOnlinePolicy",
    "Top1OnlinePolicy",
    "ExhaustivePolicy",
    "ValueOfInformationStopper",
    "IncrementalAlgorithm",
    # db
    "UncertainTable",
    "AttributeScore",
    "LinearScore",
    "topk",
    "crowdsourced_topk",
]
