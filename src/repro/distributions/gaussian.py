"""Truncated Gaussian score distribution.

The paper reports that its algorithms "work also with non-uniform tuple
score distributions"; the Gaussian is the canonical non-uniform case.  The
analytic cdf/quantile use the error function; the exact TPO engine receives
a fine histogram discretization (the same treatment the TKDE version applies
to arbitrary pdfs).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.special import erf, erfinv

from repro.distributions.base import ArrayLike, ScoreDistribution
from repro.distributions.histogram import Histogram
from repro.distributions.piecewise import PiecewisePolynomial

_SQRT2 = math.sqrt(2.0)


def _phi(z: np.ndarray) -> np.ndarray:
    """Standard normal cdf."""
    return 0.5 * (1.0 + erf(z / _SQRT2))


class TruncatedGaussian(ScoreDistribution):
    """Normal(mu, sigma²) truncated to ``[lower, upper]``.

    Defaults truncate at ``mu ± 4 sigma``, which keeps >99.99 % of the mass
    while preserving the bounded support the TPO machinery requires.
    """

    def __init__(
        self,
        mu: float,
        sigma: float,
        lower: Optional[float] = None,
        upper: Optional[float] = None,
    ) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma!r}")
        self._mu = float(mu)
        self._sigma = float(sigma)
        self._lower = float(mu - 4.0 * sigma) if lower is None else float(lower)
        self._upper = float(mu + 4.0 * sigma) if upper is None else float(upper)
        if self._upper <= self._lower:
            raise ValueError("truncation interval must be non-degenerate")
        alpha = (self._lower - self._mu) / self._sigma
        beta = (self._upper - self._mu) / self._sigma
        self._cdf_alpha = float(_phi(np.asarray(alpha)))
        self._mass = float(_phi(np.asarray(beta))) - self._cdf_alpha
        if self._mass <= 0:
            raise ValueError(
                "truncation interval carries no Gaussian mass; widen it"
            )

    @property
    def mu(self) -> float:
        """Mean of the untruncated Gaussian."""
        return self._mu

    @property
    def sigma(self) -> float:
        """Standard deviation of the untruncated Gaussian."""
        return self._sigma

    @property
    def lower(self) -> float:
        return self._lower

    @property
    def upper(self) -> float:
        return self._upper

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        z = (x - self._mu) / self._sigma
        raw = np.exp(-0.5 * z * z) / (self._sigma * math.sqrt(2.0 * math.pi))
        inside = (x >= self._lower) & (x <= self._upper)
        return np.where(inside, raw / self._mass, 0.0)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        z = (np.clip(x, self._lower, self._upper) - self._mu) / self._sigma
        value = (_phi(z) - self._cdf_alpha) / self._mass
        value = np.where(x < self._lower, 0.0, value)
        value = np.where(x >= self._upper, 1.0, value)
        return np.clip(value, 0.0, 1.0)

    def quantile(self, p: ArrayLike) -> ArrayLike:
        p = np.asarray(p, dtype=float)
        p = np.clip(p, 0.0, 1.0)
        target = self._cdf_alpha + p * self._mass
        target = np.clip(target, 1e-15, 1.0 - 1e-15)
        z = _SQRT2 * erfinv(2.0 * target - 1.0)
        return np.clip(self._mu + self._sigma * z, self._lower, self._upper)

    def mean(self) -> float:
        a = (self._lower - self._mu) / self._sigma
        b = (self._upper - self._mu) / self._sigma
        phi = lambda z: math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
        return self._mu + self._sigma * (phi(a) - phi(b)) / self._mass

    def variance(self) -> float:
        a = (self._lower - self._mu) / self._sigma
        b = (self._upper - self._mu) / self._sigma
        phi = lambda z: math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
        correction = (a * phi(a) - b * phi(b)) / self._mass
        shift = (phi(a) - phi(b)) / self._mass
        return self._sigma**2 * max(1.0 + correction - shift**2, 0.0)

    def piecewise_pdf(self, resolution: Optional[int] = None) -> PiecewisePolynomial:
        bins = resolution or self.DEFAULT_RESOLUTION
        return Histogram.discretize(self, bins=bins).piecewise_pdf()

    def __repr__(self) -> str:
        return (
            f"TruncatedGaussian(mu={self._mu:.6g}, sigma={self._sigma:.6g}, "
            f"support=[{self._lower:.6g}, {self._upper:.6g}])"
        )


__all__ = ["TruncatedGaussian"]
