"""Truncated Pareto (heavy-tailed) score distribution.

Heavy-tailed scores are the stress case for ordering uncertainty: a few
tuples dominate while the bulk is nearly tied.  Used by the non-uniform
score-distribution experiment (DIST in DESIGN.md §5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributions.base import ArrayLike, ScoreDistribution
from repro.distributions.histogram import Histogram
from repro.distributions.piecewise import PiecewisePolynomial


class TruncatedPareto(ScoreDistribution):
    """Pareto(scale, shape) truncated to ``[scale, upper]``.

    The pdf is proportional to ``x^{-(shape+1)}`` on ``[scale, upper]``.
    """

    def __init__(self, scale: float, shape: float, upper: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale!r}")
        if shape <= 0:
            raise ValueError(f"shape must be positive, got {shape!r}")
        if upper <= scale:
            raise ValueError("upper truncation must exceed the scale")
        self._scale = float(scale)
        self._shape = float(shape)
        self._upper_bound = float(upper)
        # Mass of the untruncated Pareto inside [scale, upper].
        self._mass = 1.0 - (self._scale / self._upper_bound) ** self._shape

    @property
    def scale(self) -> float:
        """Pareto scale (left endpoint of the support)."""
        return self._scale

    @property
    def shape(self) -> float:
        """Pareto tail index (smaller = heavier tail)."""
        return self._shape

    @property
    def lower(self) -> float:
        return self._scale

    @property
    def upper(self) -> float:
        return self._upper_bound

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        inside = (x >= self._scale) & (x <= self._upper_bound)
        with np.errstate(divide="ignore", invalid="ignore"):
            raw = (
                self._shape
                * self._scale**self._shape
                / np.where(inside, x, 1.0) ** (self._shape + 1.0)
            )
        return np.where(inside, raw / self._mass, 0.0)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        clipped = np.clip(x, self._scale, self._upper_bound)
        raw = 1.0 - (self._scale / clipped) ** self._shape
        value = raw / self._mass
        value = np.where(x < self._scale, 0.0, value)
        value = np.where(x >= self._upper_bound, 1.0, value)
        return np.clip(value, 0.0, 1.0)

    def quantile(self, p: ArrayLike) -> ArrayLike:
        p = np.asarray(p, dtype=float)
        p = np.clip(p, 0.0, 1.0)
        raw = p * self._mass
        value = self._scale / (1.0 - raw) ** (1.0 / self._shape)
        return np.clip(value, self._scale, self._upper_bound)

    def mean(self) -> float:
        a, s, u = self._shape, self._scale, self._upper_bound
        if abs(a - 1.0) < 1e-12:
            raw = s * np.log(u / s)
        else:
            raw = a * s**a / (1.0 - a) * (u ** (1.0 - a) - s ** (1.0 - a))
        return float(raw / self._mass)

    def variance(self) -> float:
        a, s, u = self._shape, self._scale, self._upper_bound
        if abs(a - 2.0) < 1e-12:
            raw2 = 2.0 * s**2 * np.log(u / s)
        else:
            raw2 = a * s**a / (2.0 - a) * (u ** (2.0 - a) - s ** (2.0 - a))
        second_moment = float(raw2 / self._mass)
        return max(second_moment - self.mean() ** 2, 0.0)

    def piecewise_pdf(self, resolution: Optional[int] = None) -> PiecewisePolynomial:
        bins = resolution or self.DEFAULT_RESOLUTION
        return Histogram.discretize(self, bins=bins).piecewise_pdf()

    def __repr__(self) -> str:
        return (
            f"TruncatedPareto(scale={self._scale:.6g}, shape={self._shape:.6g}, "
            f"upper={self._upper_bound:.6g})"
        )


__all__ = ["TruncatedPareto"]
