"""Abstract interface for uncertain tuple scores.

The paper models the score of tuple ``t_i`` as a random variable with a pdf
``f_i`` over a bounded interval.  :class:`ScoreDistribution` is the contract
every concrete score model implements; everything downstream (TPO builders,
question generation, crowd simulation) programs against it.

Two representations coexist:

* an *analytic* one (``pdf``/``cdf``/``quantile``), used by the grid and
  Monte Carlo engines and by the crowd oracle, and
* a *piecewise-polynomial* one (:meth:`piecewise_pdf`), used by the exact
  engine.  For polynomial-family distributions the conversion is lossless;
  smooth distributions (Gaussian, Pareto) are discretized into fine
  histograms — precisely the discretization the TKDE paper applies.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple, Union

import numpy as np

from repro.distributions.piecewise import PiecewisePolynomial
from repro.utils.rng import SeedLike, ensure_rng

ArrayLike = Union[float, np.ndarray]


class ScoreDistribution(abc.ABC):
    """Probability distribution of one tuple's score.

    Concrete subclasses must have bounded support ``[lower, upper]`` and a
    well-defined density (point masses are modelled by
    :class:`~repro.distributions.point.PointMass`, which overrides the
    comparison logic instead of providing a density).
    """

    #: Number of histogram bins used when discretizing a non-polynomial pdf.
    DEFAULT_RESOLUTION = 256

    # -- support -------------------------------------------------------

    @property
    @abc.abstractmethod
    def lower(self) -> float:
        """Infimum of the support."""

    @property
    @abc.abstractmethod
    def upper(self) -> float:
        """Supremum of the support."""

    @property
    def support(self) -> Tuple[float, float]:
        """``(lower, upper)`` as a tuple."""
        return (self.lower, self.upper)

    @property
    def is_deterministic(self) -> bool:
        """True when the score is a single point (no uncertainty)."""
        return False

    def width(self) -> float:
        """Width of the support interval."""
        return self.upper - self.lower

    # -- density / distribution ----------------------------------------

    @abc.abstractmethod
    def pdf(self, x: ArrayLike) -> ArrayLike:
        """Probability density at ``x`` (vectorized, 0 outside support)."""

    @abc.abstractmethod
    def cdf(self, x: ArrayLike) -> ArrayLike:
        """``Pr(X <= x)`` (vectorized)."""

    def sf(self, x: ArrayLike) -> ArrayLike:
        """Survival function ``Pr(X > x)``."""
        return 1.0 - np.asarray(self.cdf(x))

    @abc.abstractmethod
    def quantile(self, p: ArrayLike) -> ArrayLike:
        """Inverse CDF; ``quantile(0)=lower`` and ``quantile(1)=upper``."""

    # -- moments ---------------------------------------------------------

    def mean(self) -> float:
        """Expected score.  Default: integrate the piecewise pdf."""
        pdf = self.piecewise_pdf()
        identity = PiecewisePolynomial(
            [pdf.lower, pdf.upper], [[pdf.lower, 1.0]]
        )
        return (pdf * identity).definite_integral()

    def variance(self) -> float:
        """Score variance.  Default: integrate the piecewise pdf."""
        pdf = self.piecewise_pdf()
        mu = self.mean()
        centered = PiecewisePolynomial(
            [pdf.lower, pdf.upper], [[(pdf.lower - mu) ** 2, 2.0 * (pdf.lower - mu), 1.0]]
        )
        return max(0.0, (pdf * centered).definite_integral())

    def std(self) -> float:
        """Score standard deviation."""
        return float(np.sqrt(self.variance()))

    # -- sampling --------------------------------------------------------

    def sample(self, rng: SeedLike = None, size: Optional[int] = None) -> ArrayLike:
        """Draw score realizations via inverse-transform sampling."""
        generator = ensure_rng(rng)
        u = generator.random(size)
        return self.quantile(u)

    # -- exact-engine view ------------------------------------------------

    @abc.abstractmethod
    def piecewise_pdf(self, resolution: Optional[int] = None) -> PiecewisePolynomial:
        """Pdf as a piecewise polynomial (exact or discretized)."""

    def piecewise_cdf(self, resolution: Optional[int] = None) -> PiecewisePolynomial:
        """CDF as a piecewise polynomial on the support.

        The returned function equals the CDF on ``[lower, upper]``; callers
        combining CDFs of several tuples should
        :meth:`~repro.distributions.piecewise.PiecewisePolynomial.extend_right_constant`
        it to the common upper bound first.
        """
        return self.piecewise_pdf(resolution).antiderivative()

    # -- pairwise comparisons ----------------------------------------------

    def overlaps(self, other: "ScoreDistribution", tolerance: float = 0.0) -> bool:
        """True when the supports overlap, i.e. the relative order of the two
        scores is uncertain (this is the membership test for ``Q_K``)."""
        return (
            self.lower < other.upper - tolerance
            and other.lower < self.upper - tolerance
        )

    def prob_greater(self, other: "ScoreDistribution") -> float:
        """``Pr(X > Y)`` for independent scores ``X ~ self``, ``Y ~ other``.

        Computed in closed form as ``∫ f_X(x) · F_Y(x) dx``; ties have
        probability zero for continuous scores.  Subclasses with atoms
        override this.
        """
        if self.lower >= other.upper:
            return 1.0
        if self.upper <= other.lower:
            return 0.0
        if other.is_deterministic:
            return float(np.clip(self.sf(other.lower), 0.0, 1.0))
        f_x = self.piecewise_pdf()
        cdf_y = other.piecewise_cdf().extend_right_constant(
            max(self.upper, other.upper)
        )
        return float(np.clip((f_x * cdf_y).definite_integral(), 0.0, 1.0))

    # -- misc ----------------------------------------------------------------

    def describe(self) -> dict:
        """Summary dict used by serialization and reporting."""
        return {
            "type": type(self).__name__,
            "lower": self.lower,
            "upper": self.upper,
            "mean": self.mean(),
            "std": self.std(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(support=[{self.lower:.6g}, {self.upper:.6g}])"
        )


__all__ = ["ScoreDistribution", "ArrayLike"]
