"""Uncertain score models (substrate S1 in DESIGN.md).

Exports the :class:`ScoreDistribution` interface, the concrete distribution
family, the exact piecewise-polynomial algebra backing the exact TPO engine,
and pairwise helpers (overlap tests, ``Pr(X > Y)`` matrices).
"""

from repro.distributions.base import ScoreDistribution
from repro.distributions.gaussian import TruncatedGaussian
from repro.distributions.grid import Grid
from repro.distributions.histogram import Histogram
from repro.distributions.ops import (
    certain_order,
    expected_scores,
    joint_sample,
    overlap_matrix,
    prob_greater_matrix,
)
from repro.distributions.affine import AffineDistribution
from repro.distributions.mixture import Mixture
from repro.distributions.pareto import TruncatedPareto
from repro.distributions.piecewise import PiecewisePolynomial, product
from repro.distributions.point import PointMass
from repro.distributions.triangular import Triangular
from repro.distributions.uniform import Uniform

__all__ = [
    "ScoreDistribution",
    "Uniform",
    "Triangular",
    "TruncatedGaussian",
    "TruncatedPareto",
    "Histogram",
    "PointMass",
    "AffineDistribution",
    "Mixture",
    "PiecewisePolynomial",
    "product",
    "Grid",
    "prob_greater_matrix",
    "overlap_matrix",
    "certain_order",
    "joint_sample",
    "expected_scores",
]
