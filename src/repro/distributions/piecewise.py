"""Exact piecewise-polynomial function algebra.

This module is the numeric core of the *exact* TPO construction engine.
Score pdfs in the polynomial family (uniform, triangular, histogram, and any
discretized density) are represented as piecewise polynomials; products,
antiderivatives, and definite integrals — the only operations the ordering
probability recursion of Li & Deshpande (PVLDB'10) needs — then stay inside
the family and are computed in closed form.

Representation
--------------
A :class:`PiecewisePolynomial` is determined by

* ``breakpoints`` — a strictly increasing array ``x_0 < x_1 < … < x_m``;
* ``coefficients`` — for each piece ``[x_i, x_{i+1})`` an ascending-power
  coefficient vector in the *local* coordinate ``u = x − x_i``.

Local coordinates keep evaluation well-conditioned even when scores live far
from the origin; every piece is evaluated by Horner's rule at small ``u``.
The function is defined as 0 outside ``[x_0, x_m]``, which matches how pdfs
with bounded support behave.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

#: Breakpoints closer than this are merged when combining functions.
MERGE_TOLERANCE = 1e-12


def _as_coeff_array(coeffs: Sequence[float]) -> np.ndarray:
    array = np.asarray(coeffs, dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ValueError(f"coefficient vector must be 1-D non-empty, got shape {array.shape}")
    # Trim trailing zero coefficients but always keep at least the constant.
    nonzero = np.nonzero(array)[0]
    if nonzero.size == 0:
        return np.zeros(1)
    return array[: nonzero[-1] + 1].copy()


def shift_coefficients(coeffs: np.ndarray, delta: float) -> np.ndarray:
    """Re-express ``p(u)`` as a polynomial in ``v = u − delta``.

    If ``p(u) = Σ c_j u^j`` then ``p(v + delta) = Σ c'_k v^k`` with
    ``c'_k = Σ_{j≥k} C(j, k) · c_j · delta^{j−k}``.  Used when a piece is
    split and its coefficients must be rebased onto the new left endpoint.
    """
    if delta == 0.0:
        return coeffs.copy()
    degree = len(coeffs) - 1
    shifted = np.zeros_like(coeffs)
    for j, c in enumerate(coeffs):
        if c == 0.0:
            continue
        power = 1.0
        for k in range(j, -1, -1):
            shifted[k] += c * math.comb(j, j - k) * power
            power *= delta
    return shifted


def _eval_horner(coeffs: np.ndarray, u: np.ndarray) -> np.ndarray:
    result = np.full_like(u, coeffs[-1], dtype=float)
    for c in coeffs[-2::-1]:
        result = result * u + c
    return result


class PiecewisePolynomial:
    """A real function that is polynomial on each piece and 0 outside.

    Instances are immutable; all operations return new objects.
    """

    __slots__ = ("breakpoints", "coefficients")

    def __init__(
        self,
        breakpoints: Sequence[float],
        coefficients: Iterable[Sequence[float]],
    ) -> None:
        xs = np.asarray(breakpoints, dtype=float)
        if xs.ndim != 1 or xs.size < 2:
            raise ValueError("breakpoints must be a 1-D array with at least two entries")
        if np.any(np.diff(xs) <= 0):
            raise ValueError("breakpoints must be strictly increasing")
        pieces = [_as_coeff_array(c) for c in coefficients]
        if len(pieces) != xs.size - 1:
            raise ValueError(
                f"need exactly {xs.size - 1} coefficient vectors, got {len(pieces)}"
            )
        self.breakpoints = xs
        self.coefficients = pieces

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls, lower: float = 0.0, upper: float = 1.0) -> "PiecewisePolynomial":
        """The zero function on ``[lower, upper]``."""
        return cls([lower, upper], [[0.0]])

    @classmethod
    def constant(cls, value: float, lower: float, upper: float) -> "PiecewisePolynomial":
        """``f(x) = value`` on ``[lower, upper]``, 0 outside."""
        return cls([lower, upper], [[value]])

    @classmethod
    def from_histogram(
        cls, edges: Sequence[float], densities: Sequence[float]
    ) -> "PiecewisePolynomial":
        """Piecewise-constant function with bin ``edges`` and ``densities``."""
        edges = np.asarray(edges, dtype=float)
        densities = np.asarray(densities, dtype=float)
        if densities.size != edges.size - 1:
            raise ValueError("need one density per bin")
        return cls(edges, [[d] for d in densities])

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def lower(self) -> float:
        """Left end of the support interval."""
        return float(self.breakpoints[0])

    @property
    def upper(self) -> float:
        """Right end of the support interval."""
        return float(self.breakpoints[-1])

    @property
    def piece_count(self) -> int:
        """Number of polynomial pieces."""
        return len(self.coefficients)

    @property
    def degree(self) -> int:
        """Maximum polynomial degree over all pieces."""
        return max(len(c) - 1 for c in self.coefficients)

    def __call__(self, x: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Evaluate the function (vectorized); 0 outside the support."""
        scalar = np.isscalar(x)
        values = np.atleast_1d(np.asarray(x, dtype=float))
        result = np.zeros_like(values)
        xs = self.breakpoints
        inside = (values >= xs[0]) & (values <= xs[-1])
        if np.any(inside):
            idx = np.searchsorted(xs, values[inside], side="right") - 1
            idx = np.clip(idx, 0, len(self.coefficients) - 1)
            out = np.empty(idx.shape, dtype=float)
            for piece in np.unique(idx):
                mask = idx == piece
                u = values[inside][mask] - xs[piece]
                out[mask] = _eval_horner(self.coefficients[piece], u)
            result[inside] = out
        return float(result[0]) if scalar else result

    def is_zero(self, tolerance: float = 0.0) -> bool:
        """True when every coefficient is (within ``tolerance`` of) zero."""
        return all(np.all(np.abs(c) <= tolerance) for c in self.coefficients)

    # ------------------------------------------------------------------
    # Calculus
    # ------------------------------------------------------------------

    def antiderivative(self) -> "PiecewisePolynomial":
        """Return ``F`` with ``F' = f`` on the support and ``F(x_0) = 0``.

        ``F`` is continuous across pieces; note ``F`` is *not* zero to the
        right of the support — callers needing a CDF should combine this
        with :meth:`definite_integral` to extend the final value.
        """
        new_coeffs: List[np.ndarray] = []
        running = 0.0
        xs = self.breakpoints
        for i, coeffs in enumerate(self.coefficients):
            integrated = np.empty(len(coeffs) + 1)
            integrated[0] = running
            integrated[1:] = coeffs / np.arange(1, len(coeffs) + 1)
            new_coeffs.append(integrated)
            width = xs[i + 1] - xs[i]
            running = float(_eval_horner(integrated, np.array([width]))[0])
        return PiecewisePolynomial(xs, new_coeffs)

    def definite_integral(
        self, a: Optional[float] = None, b: Optional[float] = None
    ) -> float:
        """Integral of ``f`` over ``[a, b]`` (default: whole support)."""
        xs = self.breakpoints
        a = xs[0] if a is None else max(a, xs[0])
        b = xs[-1] if b is None else min(b, xs[-1])
        if b <= a:
            return 0.0
        total = 0.0
        start = int(np.searchsorted(xs, a, side="right") - 1)
        start = min(max(start, 0), len(self.coefficients) - 1)
        for i in range(start, len(self.coefficients)):
            left, right = xs[i], xs[i + 1]
            if left >= b:
                break
            lo = max(left, a) - left
            hi = min(right, b) - left
            coeffs = self.coefficients[i]
            powers = np.arange(1, len(coeffs) + 1)
            total += float(np.sum(coeffs / powers * (hi**powers - lo**powers)))
        return total

    def derivative(self) -> "PiecewisePolynomial":
        """Piecewise derivative (discontinuities at breakpoints allowed)."""
        new_coeffs = []
        for coeffs in self.coefficients:
            if len(coeffs) == 1:
                new_coeffs.append(np.zeros(1))
            else:
                new_coeffs.append(coeffs[1:] * np.arange(1, len(coeffs)))
        return PiecewisePolynomial(self.breakpoints, new_coeffs)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def _refined_coefficients(self, xs: np.ndarray) -> List[np.ndarray]:
        """Coefficients of this function on the finer grid ``xs``.

        ``xs`` must cover a sub-interval of the support and include all of
        this function's interior breakpoints that fall inside it.  Pieces of
        ``xs`` outside the support get zero coefficients.
        """
        own = self.breakpoints
        result: List[np.ndarray] = []
        for i in range(len(xs) - 1):
            left = xs[i]
            midpoint = 0.5 * (xs[i] + xs[i + 1])
            if midpoint < own[0] or midpoint > own[-1]:
                result.append(np.zeros(1))
                continue
            piece = int(np.searchsorted(own, midpoint, side="right") - 1)
            piece = min(max(piece, 0), len(self.coefficients) - 1)
            delta = left - own[piece]
            result.append(shift_coefficients(self.coefficients[piece], delta))
        return result

    @staticmethod
    def _merged_breakpoints(
        first: "PiecewisePolynomial",
        second: "PiecewisePolynomial",
        lower: float,
        upper: float,
    ) -> np.ndarray:
        points = np.concatenate([first.breakpoints, second.breakpoints])
        points = points[(points >= lower - MERGE_TOLERANCE) & (points <= upper + MERGE_TOLERANCE)]
        points = np.concatenate([points, [lower, upper]])
        points = np.unique(points)
        # Merge near-duplicates to avoid zero-width pieces.
        keep = [points[0]]
        for p in points[1:]:
            if p - keep[-1] > MERGE_TOLERANCE:
                keep.append(p)
        if len(keep) == 1:
            keep.append(keep[0] + MERGE_TOLERANCE)
        return np.asarray(keep)

    def __mul__(self, other: Union["PiecewisePolynomial", float]) -> "PiecewisePolynomial":
        if isinstance(other, (int, float)):
            return PiecewisePolynomial(
                self.breakpoints, [c * float(other) for c in self.coefficients]
            )
        lower = max(self.lower, other.lower)
        upper = min(self.upper, other.upper)
        if upper <= lower:
            return PiecewisePolynomial.zero(self.lower, self.upper)
        xs = self._merged_breakpoints(self, other, lower, upper)
        mine = self._refined_coefficients(xs)
        theirs = other._refined_coefficients(xs)
        product = [np.convolve(a, b) for a, b in zip(mine, theirs, strict=True)]
        return PiecewisePolynomial(xs, product)

    __rmul__ = __mul__

    def __add__(self, other: "PiecewisePolynomial") -> "PiecewisePolynomial":
        lower = min(self.lower, other.lower)
        upper = max(self.upper, other.upper)
        xs = self._merged_breakpoints(self, other, lower, upper)
        mine = self._refined_coefficients(xs)
        theirs = other._refined_coefficients(xs)
        summed = []
        for a, b in zip(mine, theirs, strict=True):
            size = max(len(a), len(b))
            s = np.zeros(size)
            s[: len(a)] += a
            s[: len(b)] += b
            summed.append(s)
        return PiecewisePolynomial(xs, summed)

    def __sub__(self, other: "PiecewisePolynomial") -> "PiecewisePolynomial":
        return self + (other * -1.0)

    def __neg__(self) -> "PiecewisePolynomial":
        return self * -1.0

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def clip_domain(self, lower: float, upper: float) -> "PiecewisePolynomial":
        """Restrict to ``[lower, upper]`` (zero outside the intersection)."""
        lo = max(lower, self.lower)
        hi = min(upper, self.upper)
        if hi <= lo:
            return PiecewisePolynomial.zero(lower, upper)
        xs = self._merged_breakpoints(self, PiecewisePolynomial.zero(lo, hi), lo, hi)
        return PiecewisePolynomial(xs, self._refined_coefficients(xs))

    def extend_right_constant(self, upper: float) -> "PiecewisePolynomial":
        """Extend with the support's right endpoint value held constant.

        Turns an antiderivative restricted to the support into a function
        usable as a CDF factor on a wider interval.
        """
        if upper <= self.upper:
            return self
        value = float(self(self.upper))
        xs = np.concatenate([self.breakpoints, [upper]])
        coeffs = [c.copy() for c in self.coefficients] + [np.array([value])]
        return PiecewisePolynomial(xs, coeffs)

    def extend_domain(self, lower: float, upper: float) -> "PiecewisePolynomial":
        """Embed into ``[lower, upper]`` padding with explicit zero pieces."""
        xs = list(self.breakpoints)
        coeffs = [c.copy() for c in self.coefficients]
        if lower < self.lower - MERGE_TOLERANCE:
            xs = [lower, *xs]
            coeffs = [np.zeros(1), *coeffs]
        if upper > self.upper + MERGE_TOLERANCE:
            xs = [*xs, upper]
            coeffs = [*coeffs, np.zeros(1)]
        return PiecewisePolynomial(np.asarray(xs), coeffs)

    def simplify(self, tolerance: float = 0.0) -> "PiecewisePolynomial":
        """Merge adjacent pieces with identical (shifted) coefficients."""
        return _simplify_rebuild(self, tolerance)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"PiecewisePolynomial(pieces={self.piece_count}, degree={self.degree}, "
            f"support=[{self.lower:.6g}, {self.upper:.6g}])"
        )

    def sample_values(self, count: int = 257) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(x, f(x))`` on an even grid across the support."""
        x = np.linspace(self.lower, self.upper, count)
        return x, np.asarray(self(x))


def _simplify_rebuild(func: PiecewisePolynomial, tolerance: float) -> PiecewisePolynomial:
    """Merge adjacent pieces whose polynomials agree after rebasing."""
    starts: List[float] = []
    coeffs: List[np.ndarray] = []
    ends: List[float] = []
    for i, c in enumerate(func.coefficients):
        left = float(func.breakpoints[i])
        right = float(func.breakpoints[i + 1])
        if coeffs:
            width = left - starts[-1]
            rebased = shift_coefficients(coeffs[-1], width)
            size = max(len(rebased), len(c))
            a = np.zeros(size)
            b = np.zeros(size)
            a[: len(rebased)] = rebased
            b[: len(c)] = c
            if np.all(np.abs(a - b) <= tolerance):
                ends[-1] = right
                continue
        starts.append(left)
        coeffs.append(np.asarray(c, dtype=float))
        ends.append(right)
    breakpoints = np.asarray([starts[0]] + ends)
    return PiecewisePolynomial(breakpoints, coeffs)


def product(functions: Sequence[PiecewisePolynomial]) -> PiecewisePolynomial:
    """Product of several piecewise polynomials (balanced reduction).

    Multiplying in a balanced tree keeps intermediate degrees as low as
    possible, which matters when forming ``Π_j F_j`` over many tuples.
    """
    if not functions:
        raise ValueError("product() needs at least one function")
    items = list(functions)
    while len(items) > 1:
        paired = []
        for i in range(0, len(items) - 1, 2):
            paired.append(items[i] * items[i + 1])
        if len(items) % 2:
            paired.append(items[-1])
        items = paired
    return items[0]


__all__ = [
    "PiecewisePolynomial",
    "product",
    "shift_coefficients",
    "MERGE_TOLERANCE",
]
