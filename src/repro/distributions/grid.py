"""Shared-grid numeric view of a set of score distributions.

The *grid* TPO engine evaluates the ordering-probability recursion of
Li & Deshpande (PVLDB'10) numerically instead of symbolically.  All
distributions are projected onto one common cell grid; densities live at
cell midpoints, cumulative quantities at cell edges.  Midpoint-rule
integration is exact for piecewise-constant pdfs whose breakpoints are grid
edges (we insert every distribution's support endpoints), and second-order
accurate otherwise — errors are far below the probability tolerance used to
prune negligible TPO branches.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.distributions.base import ScoreDistribution


class Grid:
    """A common integration grid for a family of distributions.

    Parameters
    ----------
    edges:
        Strictly increasing cell edges covering the union of supports.
    """

    def __init__(self, edges: np.ndarray) -> None:
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("grid needs at least two edges")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("grid edges must be strictly increasing")
        self.edges = edges
        self.mids = 0.5 * (edges[:-1] + edges[1:])
        self.widths = np.diff(edges)

    @classmethod
    def for_distributions(
        cls,
        dists: Sequence[ScoreDistribution],
        resolution: int = 1024,
    ) -> "Grid":
        """Build a grid covering all supports.

        Every distribution's support endpoints become grid edges (so
        piecewise-constant pdfs are integrated exactly); the rest of the
        span is filled so that no cell exceeds ``span / resolution``.
        """
        if not dists:
            raise ValueError("need at least one distribution")
        critical = set()
        for d in dists:
            critical.add(float(d.lower))
            critical.add(float(d.upper))
        points = np.array(sorted(critical))
        lo, hi = points[0], points[-1]
        if hi <= lo:
            hi = lo + 1e-9
        max_width = (hi - lo) / float(resolution)
        edges: List[float] = []
        for left, right in zip(points[:-1], points[1:], strict=True):
            span = right - left
            if span <= 0:
                continue
            pieces = max(1, int(np.ceil(span / max_width)))
            edges.extend(np.linspace(left, right, pieces + 1)[:-1])
        edges.append(hi)
        return cls(np.asarray(edges))

    @property
    def cell_count(self) -> int:
        """Number of integration cells."""
        return self.mids.size

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------

    def density(self, dist: ScoreDistribution) -> np.ndarray:
        """Pdf evaluated at cell midpoints."""
        return np.asarray(dist.pdf(self.mids), dtype=float)

    def cdf(self, dist: ScoreDistribution) -> np.ndarray:
        """CDF evaluated at cell midpoints."""
        return np.asarray(dist.cdf(self.mids), dtype=float)

    # ------------------------------------------------------------------
    # Integration primitives
    # ------------------------------------------------------------------

    def integral(self, cell_values: np.ndarray) -> float:
        """``∫ f`` with ``f`` given by midpoint values."""
        return float(np.dot(cell_values, self.widths))

    def upper_tail(self, cell_values: np.ndarray) -> np.ndarray:
        """``T_i = ∫_{mid_i}^{∞} f`` for every cell midpoint ``mid_i``.

        The tail from a midpoint contains half of the cell's own mass plus
        all later cells.
        """
        masses = cell_values * self.widths
        # reversed cumulative sum, excluding the cell itself
        after = np.concatenate([np.cumsum(masses[::-1])[::-1][1:], [0.0]])
        return after + 0.5 * masses

    def lower_tail(self, cell_values: np.ndarray) -> np.ndarray:
        """``L_i = ∫_{−∞}^{mid_i} f`` for every cell midpoint."""
        masses = cell_values * self.widths
        before = np.concatenate([[0.0], np.cumsum(masses)[:-1]])
        return before + 0.5 * masses

    def __repr__(self) -> str:
        return (
            f"Grid(cells={self.cell_count}, "
            f"span=[{self.edges[0]:.6g}, {self.edges[-1]:.6g}])"
        )


__all__ = ["Grid"]
