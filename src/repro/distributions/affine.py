"""Affine transforms of score distributions.

Scoring functions routinely rescale attribute values (``score = a·x + b``);
:class:`AffineDistribution` implements the transformed law exactly for any
base distribution, so the db layer's linear scoring functions stay within
the analytic family.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributions.base import ArrayLike, ScoreDistribution
from repro.distributions.piecewise import PiecewisePolynomial


class AffineDistribution(ScoreDistribution):
    """The law of ``a·X + b`` for ``X ~ base`` and ``a ≠ 0``."""

    def __init__(self, base: ScoreDistribution, a: float, b: float = 0.0) -> None:
        if a == 0:
            raise ValueError("scale must be non-zero (use PointMass for constants)")
        self.base = base
        self.a = float(a)
        self.b = float(b)

    @property
    def lower(self) -> float:
        if self.a > 0:
            return self.a * self.base.lower + self.b
        return self.a * self.base.upper + self.b

    @property
    def upper(self) -> float:
        if self.a > 0:
            return self.a * self.base.upper + self.b
        return self.a * self.base.lower + self.b

    @property
    def is_deterministic(self) -> bool:
        return self.base.is_deterministic

    def _inverse(self, y: ArrayLike) -> np.ndarray:
        return (np.asarray(y, dtype=float) - self.b) / self.a

    def pdf(self, x: ArrayLike) -> ArrayLike:
        return np.asarray(self.base.pdf(self._inverse(x))) / abs(self.a)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        inner = np.asarray(self.base.cdf(self._inverse(x)))
        if self.a > 0:
            return inner
        return 1.0 - inner  # continuous base: Pr(X >= t) = 1 - F(t)

    def quantile(self, p: ArrayLike) -> ArrayLike:
        p = np.asarray(p, dtype=float)
        if self.a > 0:
            return self.a * np.asarray(self.base.quantile(p)) + self.b
        return self.a * np.asarray(self.base.quantile(1.0 - p)) + self.b

    def mean(self) -> float:
        return self.a * self.base.mean() + self.b

    def variance(self) -> float:
        return self.a**2 * self.base.variance()

    def sample(self, rng=None, size: Optional[int] = None) -> ArrayLike:
        return self.a * np.asarray(self.base.sample(rng, size)) + self.b

    def piecewise_pdf(self, resolution: Optional[int] = None) -> PiecewisePolynomial:
        inner = self.base.piecewise_pdf(resolution)
        # Map each piece through y = a·x + b; coefficients transform by the
        # substitution u_y = (u_x)/|a| scaling per power.
        xs = inner.breakpoints * self.a + self.b
        coeffs = inner.coefficients
        if self.a < 0:
            xs = xs[::-1]
            coeffs = coeffs[::-1]
        new_coeffs = []
        for piece_index, c in enumerate(coeffs):
            powers = np.arange(len(c))
            if self.a > 0:
                # local u_y = a · u_x  ⇒  u_x^j = u_y^j / a^j
                transformed = c / (self.a**powers) / abs(self.a)
            else:
                # Negative scale flips the piece: express the density in
                # the flipped local coordinate via polynomial shift.
                width_y = xs[piece_index + 1] - xs[piece_index]
                # u_x = (width_y - u_y) / |a|
                transformed = _flip_coefficients(c, width_y, abs(self.a))
            new_coeffs.append(transformed)
        return PiecewisePolynomial(xs, new_coeffs)

    def __repr__(self) -> str:
        return f"AffineDistribution({self.a:g}·{self.base!r} + {self.b:g})"


def _flip_coefficients(c: np.ndarray, width_y: float, scale: float) -> np.ndarray:
    """Coefficients of ``p((width_y − u)/scale) / scale`` in powers of ``u``."""
    degree = len(c) - 1
    result = np.zeros(degree + 1)
    # p(v) = Σ c_j v^j with v = (width_y − u)/scale; expand binomially.
    from math import comb

    for j, cj in enumerate(c):
        if cj == 0.0:
            continue
        for m in range(j + 1):
            result[m] += (
                cj
                * comb(j, m)
                * (width_y ** (j - m))
                * ((-1.0) ** m)
                / (scale**j)
            )
    return result / scale


__all__ = ["AffineDistribution"]
