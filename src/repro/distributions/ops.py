"""Pairwise operations over collections of score distributions.

These helpers answer the two questions the question-selection machinery asks
about a set of tuples: *which pairs have an uncertain relative order* (the
candidate set ``Q_K`` of the paper) and *how likely is each order* (used by
the crowd oracle and by Bayesian answer updates).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distributions.base import ScoreDistribution


def prob_greater_matrix(dists: Sequence[ScoreDistribution]) -> np.ndarray:
    """Matrix ``P`` with ``P[i, j] = Pr(X_i > X_j)`` (diagonal = 0.5).

    Only the upper triangle is computed; the lower follows from
    ``P[j, i] = 1 − P[i, j]`` (continuous scores tie with probability 0).
    """
    n = len(dists)
    matrix = np.full((n, n), 0.5)
    for i in range(n):
        for j in range(i + 1, n):
            p = dists[i].prob_greater(dists[j])
            matrix[i, j] = p
            matrix[j, i] = 1.0 - p
    return matrix


def overlap_matrix(
    dists: Sequence[ScoreDistribution], tolerance: float = 0.0
) -> np.ndarray:
    """Boolean matrix marking pairs whose supports overlap.

    ``overlap[i, j]`` is True exactly when the relative order of tuples
    ``i`` and ``j`` is uncertain, i.e. when asking the crowd about the pair
    is potentially useful.
    """
    n = len(dists)
    lowers = np.array([d.lower for d in dists])
    uppers = np.array([d.upper for d in dists])
    overlap = (lowers[:, None] < uppers[None, :] - tolerance) & (
        lowers[None, :] < uppers[:, None] - tolerance
    )
    np.fill_diagonal(overlap, False)
    return overlap


def certain_order(
    dists: Sequence[ScoreDistribution], tolerance: float = 0.0
) -> np.ndarray:
    """Matrix ``C`` with ``C[i, j]`` True when ``X_i > X_j`` surely holds."""
    n = len(dists)
    lowers = np.array([d.lower for d in dists])
    uppers = np.array([d.upper for d in dists])
    certain = lowers[:, None] >= uppers[None, :] - tolerance
    np.fill_diagonal(certain, False)
    return certain


def joint_sample(
    dists: Sequence[ScoreDistribution],
    rng: np.random.Generator,
    size: int = 1,
) -> np.ndarray:
    """Draw ``size`` independent joint score vectors, shape ``(size, n)``."""
    columns = [np.atleast_1d(d.sample(rng, size)) for d in dists]
    return np.column_stack(columns)


def expected_scores(dists: Sequence[ScoreDistribution]) -> np.ndarray:
    """Vector of expected scores (the deterministic ranking baseline)."""
    return np.array([d.mean() for d in dists])


__all__ = [
    "prob_greater_matrix",
    "overlap_matrix",
    "certain_order",
    "joint_sample",
    "expected_scores",
]
