"""Deterministic (certain) scores as degenerate distributions.

Tuples whose score is known exactly still participate in top-K processing;
modelling them as point masses lets one table mix certain and uncertain
tuples without special cases in the TPO builders.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributions.base import ArrayLike, ScoreDistribution
from repro.distributions.piecewise import PiecewisePolynomial


class PointMass(ScoreDistribution):
    """A score known with certainty: ``Pr(X = value) = 1``."""

    #: Half-width of the box used when a polynomial view is required.
    EPSILON = 1e-9

    def __init__(self, value: float) -> None:
        if not np.isfinite(value):
            raise ValueError("point-mass value must be finite")
        self._value = float(value)

    @property
    def value(self) -> float:
        """The deterministic score."""
        return self._value

    @property
    def lower(self) -> float:
        return self._value

    @property
    def upper(self) -> float:
        return self._value

    @property
    def is_deterministic(self) -> bool:
        return True

    def pdf(self, x: ArrayLike) -> ArrayLike:
        """Densities are not defined for atoms; returns 0 everywhere.

        Use :meth:`cdf` / :meth:`prob_greater` for probability queries.
        """
        x = np.asarray(x, dtype=float)
        return np.zeros_like(x)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        return np.where(x >= self._value, 1.0, 0.0)

    def quantile(self, p: ArrayLike) -> ArrayLike:
        p = np.asarray(p, dtype=float)
        return np.full_like(p, self._value)

    def mean(self) -> float:
        return self._value

    def variance(self) -> float:
        return 0.0

    def sample(self, rng=None, size: Optional[int] = None) -> ArrayLike:
        if size is None:
            return self._value
        return np.full(size, self._value)

    def piecewise_pdf(self, resolution: Optional[int] = None) -> PiecewisePolynomial:
        """A narrow box of mass 1 around the value.

        The exact engine only ever integrates this against continuous
        factors, for which the box converges to the atom as ``EPSILON → 0``;
        with the default width the approximation error is far below the
        engine's probability tolerance.
        """
        half = self.EPSILON
        return PiecewisePolynomial.constant(
            1.0 / (2.0 * half), self._value - half, self._value + half
        )

    def overlaps(self, other: ScoreDistribution, tolerance: float = 0.0) -> bool:
        if isinstance(other, PointMass):
            return False  # two certain scores are always ordered (ties broken)
        return other.lower < self._value < other.upper

    def prob_greater(self, other: ScoreDistribution) -> float:
        if isinstance(other, PointMass):
            if self._value > other._value:
                return 1.0
            if self._value < other._value:
                return 0.0
            return 0.5  # tie broken uniformly
        # Pr(value > Y) = F_Y(value^-); continuous Y has no atom at value.
        return float(np.clip(other.cdf(self._value), 0.0, 1.0))

    def __repr__(self) -> str:
        return f"PointMass({self._value:.6g})"


__all__ = ["PointMass"]
