"""Histogram (piecewise-constant) score distributions.

Histograms are the workhorse representation: any empirical or analytic score
pdf can be discretized into one (the TKDE paper does exactly this), and they
stay inside the piecewise-polynomial family, so the exact TPO engine handles
them natively.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distributions.base import ArrayLike, ScoreDistribution
from repro.distributions.piecewise import PiecewisePolynomial


class Histogram(ScoreDistribution):
    """Piecewise-constant pdf over ``edges`` with bin ``masses``.

    Parameters
    ----------
    edges:
        Strictly increasing bin edges, length ``m + 1``.
    masses:
        Non-negative bin probabilities, length ``m``; normalized on input.
    """

    def __init__(self, edges: Sequence[float], masses: Sequence[float]) -> None:
        edges_arr = np.asarray(edges, dtype=float)
        masses_arr = np.asarray(masses, dtype=float)
        if edges_arr.ndim != 1 or edges_arr.size < 2:
            raise ValueError("edges must be 1-D with at least two entries")
        if np.any(np.diff(edges_arr) <= 0):
            raise ValueError("edges must be strictly increasing")
        if masses_arr.size != edges_arr.size - 1:
            raise ValueError("need one mass per bin")
        if np.any(masses_arr < 0):
            raise ValueError("bin masses must be non-negative")
        total = masses_arr.sum()
        if total <= 0:
            raise ValueError("total mass must be positive")
        self._edges = edges_arr
        self._masses = masses_arr / total
        self._densities = self._masses / np.diff(edges_arr)
        self._cum = np.concatenate([[0.0], np.cumsum(self._masses)])
        self._cum[-1] = 1.0

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], bins: int = 32
    ) -> "Histogram":
        """Fit a histogram to empirical score samples."""
        samples_arr = np.asarray(samples, dtype=float)
        if samples_arr.size == 0:
            raise ValueError("need at least one sample")
        lo, hi = float(samples_arr.min()), float(samples_arr.max())
        if hi <= lo:
            hi = lo + 1e-6
        counts, edges = np.histogram(samples_arr, bins=bins, range=(lo, hi))
        counts = counts.astype(float)
        if counts.sum() == 0:
            counts[:] = 1.0
        return cls(edges, counts)

    @classmethod
    def discretize(
        cls, dist: ScoreDistribution, bins: int = 64
    ) -> "Histogram":
        """Discretize an arbitrary distribution by matching bin masses."""
        edges = np.linspace(dist.lower, dist.upper, bins + 1)
        cdf_vals = np.asarray(dist.cdf(edges))
        masses = np.clip(np.diff(cdf_vals), 0.0, None)
        if masses.sum() <= 0:
            raise ValueError("distribution has no mass on its support")
        return cls(edges, masses)

    @property
    def edges(self) -> np.ndarray:
        """Bin edges (read-only view)."""
        return self._edges

    @property
    def masses(self) -> np.ndarray:
        """Normalized bin masses."""
        return self._masses

    @property
    def lower(self) -> float:
        return float(self._edges[0])

    @property
    def upper(self) -> float:
        return float(self._edges[-1])

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        result = np.zeros_like(x)
        inside = (x >= self._edges[0]) & (x <= self._edges[-1])
        idx = np.searchsorted(self._edges, x[inside], side="right") - 1
        idx = np.clip(idx, 0, len(self._densities) - 1)
        result[inside] = self._densities[idx]
        return result

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        result = np.empty_like(x)
        below = x < self._edges[0]
        above = x >= self._edges[-1]
        mid = ~below & ~above
        result[below] = 0.0
        result[above] = 1.0
        if np.any(mid):
            idx = np.searchsorted(self._edges, x[mid], side="right") - 1
            idx = np.clip(idx, 0, len(self._densities) - 1)
            result[mid] = self._cum[idx] + self._densities[idx] * (
                x[mid] - self._edges[idx]
            )
        return np.clip(result, 0.0, 1.0)

    def quantile(self, p: ArrayLike) -> ArrayLike:
        p = np.asarray(p, dtype=float)
        p = np.clip(p, 0.0, 1.0)
        idx = np.searchsorted(self._cum, p, side="right") - 1
        idx = np.clip(idx, 0, len(self._masses) - 1)
        remainder = p - self._cum[idx]
        with np.errstate(divide="ignore", invalid="ignore"):
            offset = np.where(
                self._densities[idx] > 0,
                remainder / self._densities[idx],
                0.0,
            )
        return np.clip(
            self._edges[idx] + offset, self._edges[0], self._edges[-1]
        )

    def mean(self) -> float:
        centers = 0.5 * (self._edges[:-1] + self._edges[1:])
        return float(np.dot(centers, self._masses))

    def variance(self) -> float:
        centers = 0.5 * (self._edges[:-1] + self._edges[1:])
        widths = np.diff(self._edges)
        mu = self.mean()
        # Var = Σ mass_i · (within-bin variance + center offset²)
        within = widths**2 / 12.0
        return float(np.dot(self._masses, within + (centers - mu) ** 2))

    def piecewise_pdf(self, resolution: Optional[int] = None) -> PiecewisePolynomial:
        return PiecewisePolynomial.from_histogram(self._edges, self._densities)

    def __repr__(self) -> str:
        return (
            f"Histogram(bins={len(self._masses)}, "
            f"support=[{self.lower:.6g}, {self.upper:.6g}])"
        )


__all__ = ["Histogram"]
