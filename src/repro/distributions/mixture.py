"""Finite mixtures of score distributions.

Mixtures model multi-modal score evidence — e.g. reviews split between
"great" and "terrible", or a sensor that is either calibrated or drifted.
All operations reduce to convex combinations of the components', so the
mixture stays exact whenever its components are.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.distributions.base import ArrayLike, ScoreDistribution
from repro.distributions.piecewise import PiecewisePolynomial
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability_vector


class Mixture(ScoreDistribution):
    """``f = Σ w_c · f_c`` over component distributions.

    Parameters
    ----------
    components:
        The component distributions (at least one).
    weights:
        Mixing weights; normalized and validated on input.
    """

    def __init__(
        self,
        components: Sequence[ScoreDistribution],
        weights: Sequence[float],
    ) -> None:
        if not components:
            raise ValueError("a mixture needs at least one component")
        self.components = list(components)
        self.weights = check_probability_vector("weights", weights)
        if len(self.components) != self.weights.size:
            raise ValueError("need one weight per component")

    @property
    def lower(self) -> float:
        return min(c.lower for c in self.components)

    @property
    def upper(self) -> float:
        return max(c.upper for c in self.components)

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        total = np.zeros_like(x)
        for weight, component in zip(self.weights, self.components, strict=True):
            total += weight * np.asarray(component.pdf(x))
        return total

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        total = np.zeros_like(x)
        for weight, component in zip(self.weights, self.components, strict=True):
            total += weight * np.asarray(component.cdf(x))
        return np.clip(total, 0.0, 1.0)

    def quantile(self, p: ArrayLike) -> ArrayLike:
        """Inverse CDF by bisection (the mixture CDF has no closed inverse)."""
        p = np.clip(np.asarray(p, dtype=float), 0.0, 1.0)
        low = np.full_like(p, self.lower)
        high = np.full_like(p, self.upper)
        for _ in range(60):  # 2^-60 of the support: below float noise
            mid = 0.5 * (low + high)
            below = np.asarray(self.cdf(mid)) < p
            low = np.where(below, mid, low)
            high = np.where(below, high, mid)
        return 0.5 * (low + high)

    def mean(self) -> float:
        return float(
            np.dot(self.weights, [c.mean() for c in self.components])
        )

    def variance(self) -> float:
        means = np.array([c.mean() for c in self.components])
        variances = np.array([c.variance() for c in self.components])
        mu = float(np.dot(self.weights, means))
        second = np.dot(self.weights, variances + means**2)
        return float(max(second - mu**2, 0.0))

    def sample(self, rng=None, size: Optional[int] = None):
        generator = ensure_rng(rng)
        if size is None:
            index = int(generator.choice(len(self.components), p=self.weights))
            return self.components[index].sample(generator)
        choices = generator.choice(
            len(self.components), size=size, p=self.weights
        )
        out = np.empty(size, dtype=float)
        for index in range(len(self.components)):
            mask = choices == index
            count = int(mask.sum())
            if count:
                out[mask] = np.atleast_1d(
                    self.components[index].sample(generator, count)
                )
        return out

    def piecewise_pdf(self, resolution: Optional[int] = None) -> PiecewisePolynomial:
        total = None
        for weight, component in zip(self.weights, self.components, strict=True):
            term = component.piecewise_pdf(resolution) * float(weight)
            total = term if total is None else total + term
        return total

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{w:.3g}·{c!r}"
            for w, c in zip(self.weights, self.components, strict=True)
        )
        return f"Mixture({parts})"


__all__ = ["Mixture"]
