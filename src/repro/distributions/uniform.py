"""Uniform score distribution — the paper's primary score model.

The evaluation of the paper draws each tuple's score as a uniform random
variable over an interval; the interval width controls how much the pdfs of
different tuples overlap and therefore how bushy the tree of possible
orderings becomes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributions.base import ArrayLike, ScoreDistribution
from repro.distributions.piecewise import PiecewisePolynomial


class Uniform(ScoreDistribution):
    """Score uniformly distributed on ``[lower, upper]``."""

    def __init__(self, lower: float, upper: float) -> None:
        if not np.isfinite(lower) or not np.isfinite(upper):
            raise ValueError("uniform bounds must be finite")
        if upper <= lower:
            raise ValueError(
                f"upper must exceed lower, got [{lower!r}, {upper!r}]"
            )
        self._lower = float(lower)
        self._upper = float(upper)
        self._density = 1.0 / (self._upper - self._lower)

    @property
    def lower(self) -> float:
        return self._lower

    @property
    def upper(self) -> float:
        return self._upper

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        inside = (x >= self._lower) & (x <= self._upper)
        return np.where(inside, self._density, 0.0)

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        return np.clip((x - self._lower) * self._density, 0.0, 1.0)

    def quantile(self, p: ArrayLike) -> ArrayLike:
        p = np.asarray(p, dtype=float)
        return self._lower + p * (self._upper - self._lower)

    def mean(self) -> float:
        return 0.5 * (self._lower + self._upper)

    def variance(self) -> float:
        return (self._upper - self._lower) ** 2 / 12.0

    def piecewise_pdf(self, resolution: Optional[int] = None) -> PiecewisePolynomial:
        return PiecewisePolynomial.constant(self._density, self._lower, self._upper)

    def prob_greater(self, other: ScoreDistribution) -> float:
        if isinstance(other, Uniform):
            return _uniform_prob_greater(self, other)
        return super().prob_greater(other)

    def __repr__(self) -> str:
        return f"Uniform({self._lower:.6g}, {self._upper:.6g})"


def _uniform_prob_greater(x: Uniform, y: Uniform) -> float:
    """Closed-form ``Pr(X > Y)`` for two independent uniforms.

    Obtained by integrating ``F_Y`` against ``f_X``; used both as a fast path
    and as an independent oracle in the test suite (it cross-checks the
    piecewise-polynomial machinery).
    """
    a, b = x.lower, x.upper
    c, d = y.lower, y.upper
    if a >= d:
        return 1.0
    if b <= c:
        return 0.0
    lo = max(a, c)
    hi = min(b, d)
    # ∫_a^b f_X(t) F_Y(t) dt with F_Y piecewise linear:
    # below c it contributes 0, above d it contributes 1, and on the
    # overlap it contributes the integral of (t − c)/(d − c).
    density_x = 1.0 / (b - a)
    overlap = ((hi - c) ** 2 - (lo - c) ** 2) / (2.0 * (d - c))
    above = max(0.0, b - max(a, d))
    return float(np.clip(density_x * (overlap + above), 0.0, 1.0))


__all__ = ["Uniform"]
