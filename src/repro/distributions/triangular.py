"""Triangular score distribution (degree-1 piecewise polynomial).

A cheap unimodal alternative to the Gaussian that stays *exactly* inside the
piecewise-polynomial family — useful both as a workload option and as a test
vehicle for the degree-1 paths of the exact engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributions.base import ArrayLike, ScoreDistribution
from repro.distributions.piecewise import PiecewisePolynomial


class Triangular(ScoreDistribution):
    """Triangular pdf on ``[lower, upper]`` with the given ``mode``."""

    def __init__(self, lower: float, mode: float, upper: float) -> None:
        if not (lower <= mode <= upper) or upper <= lower:
            raise ValueError(
                f"need lower <= mode <= upper with lower < upper, got "
                f"({lower!r}, {mode!r}, {upper!r})"
            )
        self._lower = float(lower)
        self._mode = float(mode)
        self._upper = float(upper)
        self._peak = 2.0 / (self._upper - self._lower)

    @property
    def lower(self) -> float:
        return self._lower

    @property
    def upper(self) -> float:
        return self._upper

    @property
    def mode(self) -> float:
        """Location of the pdf peak."""
        return self._mode

    def pdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        a, c, b = self._lower, self._mode, self._upper
        result = np.zeros_like(x)
        if c > a:
            rising = (x >= a) & (x < c)
            result[rising] = self._peak * (x[rising] - a) / (c - a)
        if b > c:
            falling = (x >= c) & (x <= b)
            result[falling] = self._peak * (b - x[falling]) / (b - c)
        else:
            result[x == b] = self._peak
        return result

    def cdf(self, x: ArrayLike) -> ArrayLike:
        x = np.asarray(x, dtype=float)
        a, c, b = self._lower, self._mode, self._upper
        result = np.zeros_like(x)
        if c > a:
            rising = (x >= a) & (x < c)
            result[rising] = (x[rising] - a) ** 2 / ((b - a) * (c - a))
        at_or_after_mode = x >= c
        if b > c:
            result[at_or_after_mode] = 1.0 - (
                np.clip(b - x[at_or_after_mode], 0.0, None) ** 2
                / ((b - a) * (b - c))
            )
        else:
            result[at_or_after_mode] = 1.0
        result[x >= b] = 1.0
        return np.clip(result, 0.0, 1.0)

    def quantile(self, p: ArrayLike) -> ArrayLike:
        p = np.asarray(p, dtype=float)
        p = np.clip(p, 0.0, 1.0)
        a, c, b = self._lower, self._mode, self._upper
        split = (c - a) / (b - a) if b > a else 0.0
        low = a + np.sqrt(np.clip(p, 0, None) * (b - a) * max(c - a, 0.0))
        high = b - np.sqrt(np.clip(1.0 - p, 0, None) * (b - a) * max(b - c, 0.0))
        return np.where(p <= split, low, high)

    def mean(self) -> float:
        return (self._lower + self._mode + self._upper) / 3.0

    def variance(self) -> float:
        a, c, b = self._lower, self._mode, self._upper
        return (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0

    def piecewise_pdf(self, resolution: Optional[int] = None) -> PiecewisePolynomial:
        a, c, b = self._lower, self._mode, self._upper
        # A mode within float noise of an endpoint is a pure ramp; building
        # the two-piece form there would produce an overflow-width slope.
        epsilon = 1e-12 * (b - a)
        if c - a <= epsilon:
            c = a
        elif b - c <= epsilon:
            c = b
        if c == a:
            # Pure falling ramp: f(x) = peak · (b − x)/(b − a)
            slope = -self._peak / (b - a)
            return PiecewisePolynomial([a, b], [[self._peak, slope]])
        if c == b:
            slope = self._peak / (b - a)
            return PiecewisePolynomial([a, b], [[0.0, slope]])
        rise = self._peak / (c - a)
        fall = self._peak / (b - c)
        return PiecewisePolynomial(
            [a, c, b],
            [[0.0, rise], [self._peak, -fall]],
        )

    def __repr__(self) -> str:
        return f"Triangular({self._lower:.6g}, {self._mode:.6g}, {self._upper:.6g})"


__all__ = ["Triangular"]
