"""Shared deprecation warning for the legacy entry-point shims."""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, replacement: str) -> None:
    """Emit the standard shim warning (attributed to the caller)."""
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


__all__ = ["warn_deprecated"]
