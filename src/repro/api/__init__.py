"""``repro.api`` — the stable, typed public surface of the reproduction.

One front door for everything pluggable and everything declarative:

* **Registries** (:class:`~repro.api.registry.Registry`): every pluggable
  axis — policies, uncertainty measures, workload generators, scenarios,
  crowd worker models, score-distribution families, TPO engines — is a
  shared registry instance with lazy built-in registrations, collision
  detection, and typo suggestions.  ``repro list`` and the service's
  ``/v1/meta`` endpoint enumerate them.
* **Specs** (:mod:`~repro.api.specs`): frozen, validated dataclasses with
  canonical-JSON round-trip (``to_dict``/``from_dict``/``canonical_json``/
  ``content_key``) that plug straight into the BLAKE2b content-addressing
  used by the TPO cache and the experiment grid.
* **Execution** (:func:`run_session` / :func:`prepare_session`): turn a
  :class:`SessionSpec` into a deterministic, reproducible session run.

Quick start::

    from repro.api import InstanceSpec, PolicySpec, SessionSpec, run_session

    spec = SessionSpec(
        instance=InstanceSpec(n=12, k=5, seed=7, params={"width": 0.3}),
        policy=PolicySpec("T1-on"),
    )
    result = run_session(spec)
    print(result.summary())

The deprecated module-level factories (``repro.core.make_policy``,
``repro.uncertainty.get_measure``, ``repro.workloads.make_workload``,
``repro.tpo.make_builder``) are thin shims over this package and emit
:class:`DeprecationWarning`.
"""

from repro.api.canonical import canonical_json, content_key
from repro.api.catalog import (
    CROWD_MODELS,
    DISTRIBUTIONS,
    ENGINES,
    EVALS,
    MEASURES,
    POLICIES,
    SCENARIOS,
    STORES,
    WORKLOADS,
    all_registries,
)
from repro.api.registry import (
    DuplicateNameError,
    Registry,
    RegistryError,
    UnknownNameError,
)
from repro.api.run import (
    PreparedSession,
    ReplayResult,
    prepare_session,
    replay_session,
    run_session,
)
from repro.api.specs import (
    SHARD_STRATEGIES,
    BudgetSpec,
    CrowdSpec,
    EngineSpec,
    InstanceSpec,
    MeasureSpec,
    PolicySpec,
    ServeSpec,
    SessionSpec,
    StoreSpec,
    as_instance_spec,
)

def __getattr__(name: str):
    # PEP 562: the whole-program check registry is part of the public
    # surface (``from repro.api import CHECKS``) but lives with the
    # analyzer — resolve it lazily so importing ``repro.api`` never
    # pulls in the AST machinery.
    if name == "CHECKS":
        from repro.devtools.analysis import CHECKS

        return CHECKS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    # canonical identity
    "canonical_json",
    "content_key",
    # registry subsystem
    "Registry",
    "RegistryError",
    "UnknownNameError",
    "DuplicateNameError",
    # the catalog
    "POLICIES",
    "MEASURES",
    "WORKLOADS",
    "SCENARIOS",
    "CROWD_MODELS",
    "DISTRIBUTIONS",
    "ENGINES",
    "STORES",
    "EVALS",
    "CHECKS",
    "all_registries",
    # specs
    "InstanceSpec",
    "PolicySpec",
    "MeasureSpec",
    "CrowdSpec",
    "BudgetSpec",
    "EngineSpec",
    "SessionSpec",
    "StoreSpec",
    "ServeSpec",
    "SHARD_STRATEGIES",
    "as_instance_spec",
    # execution
    "PreparedSession",
    "ReplayResult",
    "prepare_session",
    "replay_session",
    "run_session",
]
