"""Frozen, validated spec dataclasses — the typed front door.

A *spec* is the canonical, JSON-portable description of something the
system can build: an uncertain instance (:class:`InstanceSpec`), a
question-selection policy (:class:`PolicySpec`), an uncertainty measure
(:class:`MeasureSpec`), a simulated crowd (:class:`CrowdSpec`), a question
budget (:class:`BudgetSpec`), and their composition into one runnable
crowd-powered top-K session (:class:`SessionSpec`).

Every spec is

* **frozen** — validated once at construction, immutable afterwards;
* **round-trippable** — ``to_dict`` / ``from_dict`` are exact inverses and
  ``canonical_json`` is byte-stable, so ``content_key()`` plugs directly
  into the BLAKE2b content-addressing used by the TPO cache
  (:mod:`repro.service.cache`) and the experiment grid
  (:mod:`repro.experiments.grid`);
* **registry-checked** — names are validated against the
  :mod:`repro.api.catalog` registries at construction, with close-match
  suggestions on typos.

:class:`InstanceSpec` keeps the exact canonical dict shape the service
historically used (``workload``/``n``/``k``/``seed``/``params``), so
TPO-cache keys, event-log replay, and grid-cell hashes are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

if TYPE_CHECKING:  # deferred: specs must import nothing heavy at runtime
    from repro.crowd.simulator import SimulatedCrowd
    from repro.distributions.base import ScoreDistribution

from repro.api._deprecation import warn_deprecated
from repro.api.canonical import canonical_json, content_key
from repro.api.catalog import (
    CROWD_MODELS,
    ENGINES,
    MEASURES,
    POLICIES,
    STORES,
    WORKLOADS,
)
from repro.utils.validation import check_fraction


def _canonical_params(params: Any, owner: str) -> Dict[str, Any]:
    """Copy ``params`` into a str-keyed, key-sorted plain dict."""
    if params is None:
        return {}
    if not isinstance(params, Mapping):
        raise ValueError(
            f"{owner} params must be a dict of keyword arguments, "
            f"got {type(params).__name__}"
        )
    return {str(key): params[key] for key in sorted(params, key=str)}


def _require_keys(payload: Mapping, allowed: set, owner: str) -> None:
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(f"unknown {owner} fields: {sorted(unknown)}")


@dataclass(frozen=True)
class InstanceSpec:
    """One uncertain top-K instance: workload, size, depth, RNG stream.

    The canonical dict form has exactly the keys ``workload``/``n``/``k``/
    ``seed``/``params`` with normalized types, so equal instances hash
    equal regardless of how the caller phrased them.  ``k`` is clamped to
    ``n``.
    """

    n: int
    k: int
    workload: str = "uniform"
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            WORKLOADS.get(self.workload)  # raises UnknownNameError
        n = int(self.n)
        if n < 2:
            raise ValueError(f"spec needs n >= 2 tuples, got {n}")
        k = int(self.k)
        if k < 1:
            raise ValueError(f"spec needs k >= 1, got {k}")
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "k", min(k, n))
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(
            self, "params", _canonical_params(self.params, "spec")
        )

    # -- round trip ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-portable form (the historical service shape)."""
        return {
            "workload": self.workload,
            "n": self.n,
            "k": self.k,
            "seed": self.seed,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "InstanceSpec":
        """Validate a wire-shaped dict into a spec (exact inverse of
        :meth:`to_dict`)."""
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"spec must be a dict, got {type(payload).__name__}"
            )
        _require_keys(
            payload, {"workload", "n", "k", "seed", "params"}, "spec"
        )
        return cls(
            n=payload.get("n", 0),
            k=payload.get("k", 0),
            workload=payload.get("workload", "uniform"),
            seed=payload.get("seed", 0),
            params=payload.get("params", {}),
        )

    def canonical_json(self) -> str:
        """Byte-stable canonical JSON of :meth:`to_dict`."""
        return canonical_json(self.to_dict())

    def content_key(self) -> str:
        """BLAKE2b content address of this instance."""
        return content_key(self.to_dict())

    # -- construction --------------------------------------------------

    def materialize(self) -> List[ScoreDistribution]:
        """The score distributions this spec describes.

        The RNG stream derives from the spec seed via the process-stable
        :func:`~repro.utils.rng.derive_seed` (same label the service has
        always used), so the same spec materializes the same instance in
        every process — which is what lets a resumed session manager
        rebuild sessions from the event log alone.
        """
        from repro.utils.rng import derive_seed, ensure_rng

        rng = ensure_rng(derive_seed(self.seed, "service-instance"))
        return WORKLOADS.create(self.workload, self.n, rng=rng, **self.params)


@dataclass(frozen=True)
class PolicySpec:
    """A question-selection policy by paper name, plus constructor args."""

    name: str = "T1-on"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in POLICIES:
            POLICIES.get(self.name)
        object.__setattr__(
            self, "params", _canonical_params(self.params, "policy")
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Any) -> "PolicySpec":
        if isinstance(payload, str):  # shorthand: just the name
            return cls(name=payload)
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"policy spec must be a dict or name, "
                f"got {type(payload).__name__}"
            )
        _require_keys(payload, {"name", "params"}, "policy spec")
        return cls(
            name=payload.get("name", "T1-on"),
            params=payload.get("params", {}),
        )

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def build(self) -> Any:
        """Instantiate the policy."""
        return POLICIES.create(self.name, **self.params)


@dataclass(frozen=True)
class MeasureSpec:
    """An ordering-uncertainty measure by paper name, plus args."""

    name: str = "H"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in MEASURES:
            MEASURES.get(self.name)
        object.__setattr__(
            self, "params", _canonical_params(self.params, "measure")
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Any) -> "MeasureSpec":
        if isinstance(payload, str):
            return cls(name=payload)
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"measure spec must be a dict or name, "
                f"got {type(payload).__name__}"
            )
        _require_keys(payload, {"name", "params"}, "measure spec")
        return cls(
            name=payload.get("name", "H"), params=payload.get("params", {})
        )

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def build(self) -> Any:
        """Instantiate the measure."""
        return MEASURES.create(self.name, **self.params)


@dataclass(frozen=True)
class CrowdSpec:
    """A simulated crowd configuration (accuracy, replication, model)."""

    accuracy: float = 1.0
    replication: int = 1
    assumed_accuracy: Optional[float] = None
    cost_per_assignment: float = 0.05
    model: str = "auto"

    def __post_init__(self) -> None:
        check_fraction("accuracy", self.accuracy)
        object.__setattr__(self, "accuracy", float(self.accuracy))
        replication = int(self.replication)
        if replication < 1:
            raise ValueError(
                f"crowd replication must be >= 1, got {replication}"
            )
        object.__setattr__(self, "replication", replication)
        if self.assumed_accuracy is not None:
            check_fraction("assumed_accuracy", self.assumed_accuracy)
            object.__setattr__(
                self, "assumed_accuracy", float(self.assumed_accuracy)
            )
        cost = float(self.cost_per_assignment)
        if cost < 0:
            raise ValueError(f"cost_per_assignment must be >= 0, got {cost}")
        object.__setattr__(self, "cost_per_assignment", cost)
        if self.model != "auto" and self.model not in CROWD_MODELS:
            CROWD_MODELS.get(self.model)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "accuracy": self.accuracy,
            "replication": self.replication,
            "assumed_accuracy": self.assumed_accuracy,
            "cost_per_assignment": self.cost_per_assignment,
            "model": self.model,
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "CrowdSpec":
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"crowd spec must be a dict, got {type(payload).__name__}"
            )
        _require_keys(
            payload,
            {
                "accuracy",
                "replication",
                "assumed_accuracy",
                "cost_per_assignment",
                "model",
            },
            "crowd spec",
        )
        return cls(**dict(payload))

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def build(self, truth: Any, rng: Any = None) -> SimulatedCrowd:
        """A :class:`~repro.crowd.simulator.SimulatedCrowd` over ``truth``."""
        from repro.crowd.simulator import SimulatedCrowd

        return SimulatedCrowd(
            truth,
            worker_accuracy=self.accuracy,
            replication=self.replication,
            assumed_accuracy=self.assumed_accuracy,
            cost_per_assignment=self.cost_per_assignment,
            worker_model=None if self.model == "auto" else self.model,
            rng=rng,
        )


@dataclass(frozen=True)
class BudgetSpec:
    """How many crowd questions a session may spend."""

    questions: int = 10

    def __post_init__(self) -> None:
        questions = int(self.questions)
        if questions < 0:
            raise ValueError(f"budget must be >= 0, got {questions}")
        object.__setattr__(self, "questions", questions)

    def to_dict(self) -> Dict[str, Any]:
        return {"questions": self.questions}

    @classmethod
    def from_dict(cls, payload: Any) -> "BudgetSpec":
        if isinstance(payload, int) and not isinstance(payload, bool):
            return cls(questions=payload)  # shorthand: just the number
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"budget spec must be a dict or int, "
                f"got {type(payload).__name__}"
            )
        _require_keys(payload, {"questions"}, "budget spec")
        return cls(questions=payload.get("questions", 10))

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())


@dataclass(frozen=True)
class EngineSpec:
    """A TPO construction engine by registry name, plus constructor args.

    The single typed description of *how a tree is built* — exact
    engines and anytime beams alike (``params`` carries ``beam_epsilon``
    / ``beam_width`` for the latter, exactly as the builder constructors
    spell them).  :meth:`signature_for` is the one canonical builder
    fingerprint used for TPO cache keys: exact-mode engines produce the
    exact dict shape the service has always hashed (``type`` /
    ``min_probability`` / ``max_orderings`` / ``resolution``), and a
    ``beam`` block is appended *only* when a beam is active — so every
    historical cache key and event-log replay stays byte-identical.
    """

    name: str = "grid"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in ENGINES:
            ENGINES.get(self.name)  # raises UnknownNameError
        object.__setattr__(
            self, "params", _canonical_params(self.params, "engine")
        )

    # -- round trip ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, payload: Any) -> "EngineSpec":
        if isinstance(payload, str):  # shorthand: just the name
            return cls(name=payload)
        if isinstance(payload, EngineSpec):
            return payload
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"engine spec must be a dict or name, "
                f"got {type(payload).__name__}"
            )
        _require_keys(payload, {"name", "params"}, "engine spec")
        return cls(
            name=payload.get("name", "grid"),
            params=payload.get("params", {}),
        )

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def content_key(self) -> str:
        """BLAKE2b content address of this engine configuration."""
        return content_key(self.to_dict())

    # -- construction --------------------------------------------------

    def build(self) -> Any:
        """Instantiate the engine via the ``ENGINES`` registry."""
        return ENGINES.create(self.name, **self.params)

    def signature(self) -> Dict[str, Any]:
        """Canonical fingerprint of the engine this spec builds."""
        return self.signature_for(self.build())

    @staticmethod
    def signature_for(builder: Any) -> Dict[str, Any]:
        """Canonical cache fingerprint of a builder instance.

        Exact-mode builders yield the historical four-key dict, so cache
        content keys computed before beams existed still match; beam
        builders append a ``beam`` block, keying their approximate trees
        separately from exact ones.
        """
        signature: Dict[str, Any] = {
            "type": type(builder).__name__,
            "min_probability": builder.min_probability,
            "max_orderings": builder.max_orderings,
            "resolution": getattr(builder, "resolution", None),
        }
        if getattr(builder, "beam_active", False):
            signature["beam"] = {
                "epsilon": builder.beam_epsilon,
                "width": builder.beam_width,
            }
        return signature


@dataclass(frozen=True)
class SessionSpec:
    """One complete crowd-powered top-K session, declaratively.

    Composes the five component specs with the TPO engine configuration.
    ``repro.api.run_session`` turns a :class:`SessionSpec` into a
    finished :class:`~repro.core.session.SessionResult`; the interactive
    service consumes the :attr:`instance` component.

    The engine is configured with a typed :class:`EngineSpec` (pass one
    — or its dict form — as ``engine``); the loose ``engine`` string +
    ``engine_params`` dict pair remains as the storage/wire shape, and
    passing a non-empty ``engine_params`` directly to the constructor is
    deprecated.  :meth:`from_dict` replays historical payloads without
    warning.
    """

    instance: InstanceSpec
    policy: PolicySpec = field(default_factory=PolicySpec)
    measure: MeasureSpec = field(default_factory=MeasureSpec)
    crowd: CrowdSpec = field(default_factory=CrowdSpec)
    budget: BudgetSpec = field(default_factory=BudgetSpec)
    engine: Any = "grid"
    engine_params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.instance, InstanceSpec):
            raise ValueError(
                "SessionSpec.instance must be an InstanceSpec, "
                f"got {type(self.instance).__name__}"
            )
        # Coerce component shorthands ("T1-on", {"name": "H"}, 10) into
        # their spec types so every composed spec is validated here, not
        # deep inside run_session.
        if not isinstance(self.policy, PolicySpec):
            object.__setattr__(
                self, "policy", PolicySpec.from_dict(self.policy)
            )
        if not isinstance(self.measure, MeasureSpec):
            object.__setattr__(
                self, "measure", MeasureSpec.from_dict(self.measure)
            )
        if not isinstance(self.crowd, CrowdSpec):
            object.__setattr__(
                self, "crowd", CrowdSpec.from_dict(self.crowd)
            )
        if not isinstance(self.budget, BudgetSpec):
            object.__setattr__(
                self, "budget", BudgetSpec.from_dict(self.budget)
            )
        if isinstance(self.engine, (EngineSpec, Mapping)):
            if self.engine_params:
                raise ValueError(
                    "pass engine parameters inside the EngineSpec, not "
                    "through the deprecated engine_params field"
                )
            spec = EngineSpec.from_dict(self.engine)
            object.__setattr__(self, "engine", spec.name)
            object.__setattr__(self, "engine_params", dict(spec.params))
        else:
            if self.engine not in ENGINES:
                ENGINES.get(self.engine)
            params = _canonical_params(self.engine_params, "engine")
            if params:
                warn_deprecated(
                    "SessionSpec(engine_params=...)",
                    "repro.api.EngineSpec",
                )
            object.__setattr__(self, "engine_params", params)

    # -- round trip ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "instance": self.instance.to_dict(),
            "policy": self.policy.to_dict(),
            "measure": self.measure.to_dict(),
            "crowd": self.crowd.to_dict(),
            "budget": self.budget.to_dict(),
            "engine": self.engine,
            "engine_params": dict(self.engine_params),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "SessionSpec":
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"session spec must be a dict, got {type(payload).__name__}"
            )
        _require_keys(
            payload,
            {
                "instance",
                "policy",
                "measure",
                "crowd",
                "budget",
                "engine",
                "engine_params",
            },
            "session spec",
        )
        if "instance" not in payload:
            raise ValueError("session spec needs an 'instance' field")
        # Replaying stored payloads must not warn: fold the historical
        # engine + engine_params pair into a typed EngineSpec up front.
        engine = payload.get("engine", "grid")
        engine_params = payload.get("engine_params", {})
        if not isinstance(engine, (EngineSpec, Mapping)) and engine_params:
            engine = EngineSpec(name=engine, params=engine_params)
            engine_params = {}
        return cls(
            instance=InstanceSpec.from_dict(payload["instance"]),
            policy=PolicySpec.from_dict(payload.get("policy", {})),
            measure=MeasureSpec.from_dict(payload.get("measure", {})),
            crowd=CrowdSpec.from_dict(payload.get("crowd", {})),
            budget=BudgetSpec.from_dict(payload.get("budget", {})),
            engine=engine,
            engine_params=engine_params,
        )

    def canonical_json(self) -> str:
        """Byte-stable canonical JSON of :meth:`to_dict`."""
        return canonical_json(self.to_dict())

    def content_key(self) -> str:
        """BLAKE2b content address of this session configuration."""
        return content_key(self.to_dict())

    # -- construction --------------------------------------------------

    @property
    def engine_spec(self) -> EngineSpec:
        """The engine configuration as a typed :class:`EngineSpec`."""
        return EngineSpec(name=self.engine, params=self.engine_params)

    def build_builder(self) -> Any:
        """Instantiate the configured TPO construction engine."""
        return self.engine_spec.build()


#: Shard strategies the serve runtime understands (session key → worker).
SHARD_STRATEGIES = ("blake2b",)


@dataclass(frozen=True)
class StoreSpec:
    """The TPO store a serve worker runs: hot LRU, optional cold tier.

    ``backend`` is either ``"none"`` — the historical single-process
    configuration, a bare :class:`~repro.service.cache.TPOCache` of
    ``hot_capacity`` entries — or a name from the ``STORES`` registry
    (``memory``/``disk-npz``/``shared-memory``), in which case
    :meth:`build` yields a :class:`~repro.service.store.TwoTierStore`
    whose per-worker hot cache sits over the shared cold tier.  ``path``
    is the cold-tier directory (required for ``disk-npz``, ignored by
    the in-process backends); ``params`` passes backend keyword
    arguments through verbatim (e.g. ``prefix`` for ``shared-memory``).
    """

    backend: str = "none"
    hot_capacity: int = 64
    path: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.backend != "none" and self.backend not in STORES:
            STORES.get(self.backend)  # raises UnknownNameError
        hot = int(self.hot_capacity)
        if hot < 0:
            raise ValueError(f"hot_capacity must be >= 0, got {hot}")
        object.__setattr__(self, "hot_capacity", hot)
        if self.path is not None:
            object.__setattr__(self, "path", str(self.path))
        if self.backend == "disk-npz" and self.path is None:
            raise ValueError("disk-npz store needs a path")
        object.__setattr__(
            self, "params", _canonical_params(self.params, "store")
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "hot_capacity": self.hot_capacity,
            "path": self.path,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "StoreSpec":
        if isinstance(payload, str):  # shorthand: just the backend name
            return cls(backend=payload)
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"store spec must be a dict or backend name, "
                f"got {type(payload).__name__}"
            )
        _require_keys(
            payload,
            {"backend", "hot_capacity", "path", "params"},
            "store spec",
        )
        return cls(
            backend=payload.get("backend", "none"),
            hot_capacity=payload.get("hot_capacity", 64),
            path=payload.get("path"),
            params=payload.get("params", {}),
        )

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def content_key(self) -> str:
        """BLAKE2b content address of this store configuration."""
        return content_key(self.to_dict())

    def build(self) -> Any:
        """The configured store: a bare ``TPOCache`` for ``"none"``,
        otherwise a ``TwoTierStore`` over the registered cold tier."""
        from repro.service.cache import TPOCache

        hot = TPOCache(capacity=self.hot_capacity)
        if self.backend == "none":
            return hot
        from repro.service.store import TwoTierStore

        kwargs = dict(self.params)
        if self.backend == "disk-npz":
            kwargs["path"] = self.path
        cold = STORES.create(self.backend, **kwargs)
        return TwoTierStore(hot=hot, cold=cold)


@dataclass(frozen=True)
class ServeSpec:
    """One ``repro serve`` deployment, declaratively.

    ``workers == 1`` is the historical single-process service (one
    asyncio loop, behavior unchanged); ``workers > 1`` runs the sharded
    runtime of :mod:`repro.service.sharding` — a router on
    ``host:port`` over ``workers`` session-manager processes, sessions
    assigned by ``shard_by`` of the session key, TPOs shared through
    :attr:`store`.  The CLI's ``repro serve`` flags are a thin parser
    over this spec.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 1
    shard_by: str = "blake2b"
    store: StoreSpec = field(default_factory=StoreSpec)
    log: Optional[str] = None
    resolution: int = 1024

    def __post_init__(self) -> None:
        if not self.host:
            raise ValueError("serve spec needs a host")
        port = int(self.port)
        if not 0 <= port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {port}")
        object.__setattr__(self, "port", port)
        workers = int(self.workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        object.__setattr__(self, "workers", workers)
        if self.shard_by not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard strategy {self.shard_by!r}; "
                f"expected one of {list(SHARD_STRATEGIES)}"
            )
        if not isinstance(self.store, StoreSpec):
            object.__setattr__(
                self, "store", StoreSpec.from_dict(self.store)
            )
        if self.log is not None:
            object.__setattr__(self, "log", str(self.log))
        resolution = int(self.resolution)
        if resolution < 2:
            raise ValueError(
                f"resolution must be >= 2, got {resolution}"
            )
        object.__setattr__(self, "resolution", resolution)
        if self.workers > 1 and self.store.backend in ("none", "memory"):
            # A fleet without a cross-process tier silently rebuilds
            # every TPO per worker; require an explicit shared backend.
            raise ValueError(
                f"workers={self.workers} needs a cross-process store "
                f"backend (disk-npz or shared-memory), "
                f"got {self.store.backend!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "shard_by": self.shard_by,
            "store": self.store.to_dict(),
            "log": self.log,
            "resolution": self.resolution,
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "ServeSpec":
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"serve spec must be a dict, got {type(payload).__name__}"
            )
        _require_keys(
            payload,
            {
                "host",
                "port",
                "workers",
                "shard_by",
                "store",
                "log",
                "resolution",
            },
            "serve spec",
        )
        return cls(
            host=payload.get("host", "127.0.0.1"),
            port=payload.get("port", 8080),
            workers=payload.get("workers", 1),
            shard_by=payload.get("shard_by", "blake2b"),
            store=StoreSpec.from_dict(payload.get("store", {})),
            log=payload.get("log"),
            resolution=payload.get("resolution", 1024),
        )

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def content_key(self) -> str:
        """BLAKE2b content address of this deployment configuration."""
        return content_key(self.to_dict())


def as_instance_spec(value: Any) -> InstanceSpec:
    """Coerce an :class:`InstanceSpec` or wire-shaped dict into a spec."""
    if isinstance(value, InstanceSpec):
        return value
    return InstanceSpec.from_dict(value)


__all__: List[str] = [
    "InstanceSpec",
    "PolicySpec",
    "MeasureSpec",
    "CrowdSpec",
    "BudgetSpec",
    "EngineSpec",
    "SessionSpec",
    "StoreSpec",
    "ServeSpec",
    "SHARD_STRATEGIES",
    "as_instance_spec",
]
