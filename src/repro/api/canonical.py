"""Canonical JSON and content addressing — the repo-wide identity scheme.

Every content-addressed object in the system — experiment grid cells
(:mod:`repro.experiments.grid`), cached TPO instances
(:mod:`repro.service.cache`), and the :mod:`repro.api` spec dataclasses —
derives its identity from the same two primitives:

* :func:`canonical_json` — sorted keys, no whitespace, strict JSON: two
  equal values always serialize to byte-identical strings, whatever order
  their keys were built in;
* :func:`content_key` — BLAKE2b over the canonical JSON.  Never Python's
  salted ``hash()``, so keys are stable across processes, machines, and
  interpreter restarts.

This module is dependency-free (stdlib only) so every layer can import it
without cycles.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to the canonical form used for content identity.

    Sorted keys, no whitespace: two dicts with equal content always produce
    byte-identical JSON, whatever order their keys were inserted in.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_key(payload: Any, digest_size: int = 16) -> str:
    """Stable hex content address of a JSON-serializable payload.

    ``digest_size`` is in bytes (16 → 32 hex digits, the service default;
    grid cells use 8 → 16 hex digits).
    """
    digest = hashlib.blake2b(
        canonical_json(payload).encode("utf-8"), digest_size=digest_size
    )
    return digest.hexdigest()


__all__ = ["canonical_json", "content_key"]
