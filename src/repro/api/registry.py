"""One generic, typed plugin registry for every pluggable axis.

The reproduction historically grew four parallel name→factory lookups
(uncertainty measures, question policies, workload generators, TPO
engines), each with its own error message and no way to extend the others.
:class:`Registry` unifies them: one subsystem with

* **lazy registration** — factories may be registered as ``"module:attr"``
  dotted paths, resolved on first use, so the catalog of built-in plugins
  imports nothing heavy and never cycles;
* **collision detection** — re-registering a name raises
  :class:`DuplicateNameError` unless ``overwrite=True`` is passed;
* **actionable unknown-name errors** — :class:`UnknownNameError` carries
  close-match suggestions (``difflib.get_close_matches``) so a typo like
  ``"Hww"`` answers "did you mean 'Hw'?" instead of only dumping the list.

Registries are iterable mappings of names: ``sorted(registry)``,
``name in registry`` and ``registry[name]`` behave like the ad-hoc dicts
they replace, which is what lets the old module-level tables
(``repro.core.POLICIES``, ``repro.workloads.GENERATORS``, …) stay alive as
aliases of the shared instances.
"""

from __future__ import annotations

import difflib
import importlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

#: A factory is a callable, or a lazily-resolved ``"module:attr"`` path.
FactorySpec = Union[Callable[..., Any], str]


def close_matches(name: str, available: List[str], n: int = 3) -> List[str]:
    """Case-insensitive close matches of ``name`` among ``available``.

    Case-folding before matching is what lets ``"t1"`` suggest
    ``"T1-on"`` and ``"hw"`` suggest ``"Hw"`` — the paper names mix case
    and users reliably type them lowercased.
    """
    folded: Dict[str, str] = {}
    for candidate in available:
        folded.setdefault(candidate.lower(), candidate)
    matches = difflib.get_close_matches(
        str(name).lower(), list(folded), n=n, cutoff=0.4
    )
    return [folded[match] for match in matches]


class RegistryError(ValueError):
    """Base class for registry failures (a :class:`ValueError` so legacy
    ``except ValueError`` callers keep working)."""


class UnknownNameError(RegistryError, KeyError):
    """An unregistered name was looked up.

    Subclasses both :class:`ValueError` (what the deprecated factories
    raised) and :class:`KeyError` (what dict-style lookups raise), so both
    historical handling styles catch it.  ``suggestions`` holds the
    close matches embedded in the message.
    """

    def __init__(self, kind: str, name: str, available: List[str]) -> None:
        self.kind = kind
        self.name = name
        self.available = available
        self.suggestions = close_matches(str(name), available)
        hint = (
            f"did you mean {self.suggestions[0]!r}? "
            if self.suggestions
            else ""
        )
        super().__init__(
            f"unknown {kind} {name!r}; {hint}available: {available}"
        )

    def __str__(self) -> str:  # KeyError would repr() the message tuple
        return self.args[0]


class DuplicateNameError(RegistryError):
    """A name was registered twice without ``overwrite=True``."""

    def __init__(self, kind: str, name: str) -> None:
        self.kind = kind
        self.name = name
        super().__init__(
            f"{kind} {name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )


class Registry:
    """A named, ordered mapping of plugin names to factories.

    Parameters
    ----------
    kind:
        Human-readable singular noun used in error messages and the
        ``repro list`` / ``/v1/meta`` enumerations (e.g. ``"policy"``).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: Dict[str, FactorySpec] = {}

    # -- registration --------------------------------------------------

    def register(
        self,
        name: str,
        factory: Optional[FactorySpec] = None,
        *,
        overwrite: bool = False,
    ) -> FactorySpec:
        """Register ``factory`` (callable or ``"module:attr"``) under ``name``.

        Usable directly (``registry.register("H", EntropyMeasure)``) or as
        a decorator (``@registry.register("H")``).  Registering an existing
        name raises :class:`DuplicateNameError` unless ``overwrite=True``.
        """
        if factory is None:  # decorator form
            def decorator(func: FactorySpec) -> FactorySpec:
                self.register(name, func, overwrite=overwrite)
                return func

            return decorator
        if not isinstance(name, str) or not name:
            raise RegistryError(
                f"{self.kind} names must be non-empty strings, got {name!r}"
            )
        if name in self._factories and not overwrite:
            raise DuplicateNameError(self.kind, name)
        if not callable(factory) and not (
            isinstance(factory, str) and ":" in factory
        ):
            raise RegistryError(
                f"{self.kind} factory must be callable or a 'module:attr' "
                f"path, got {factory!r}"
            )
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove a registration (unknown names raise)."""
        if name not in self._factories:
            raise UnknownNameError(self.kind, name, self.available())
        del self._factories[name]

    # -- lookup --------------------------------------------------------

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name``, resolving lazy paths."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise UnknownNameError(
                self.kind, name, self.available()
            ) from None
        if isinstance(factory, str):
            module_name, _, attr = factory.partition(":")
            resolved = getattr(importlib.import_module(module_name), attr)
            self._factories[name] = resolved
            return resolved
        return factory

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the plugin ``name`` with the given arguments."""
        return self.get(name)(*args, **kwargs)

    def available(self) -> List[str]:
        """Sorted names of all registered plugins."""
        return sorted(self._factories)

    def suggest(self, name: str, n: int = 3) -> List[str]:
        """Close matches for a (possibly misspelled) name."""
        return close_matches(str(name), self.available(), n=n)

    # -- mapping protocol (compatibility with the replaced dicts) ------

    def __getitem__(self, name: str) -> Callable[..., Any]:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:
        return f"Registry(kind={self.kind!r}, names={self.available()})"


__all__ = [
    "Registry",
    "RegistryError",
    "UnknownNameError",
    "DuplicateNameError",
]
