"""Turn a :class:`~repro.api.specs.SessionSpec` into a running session.

All RNG streams derive from the instance seed through the process-stable
:func:`~repro.utils.rng.derive_seed`, with one label per role (instance /
truth / crowd / policy), so a spec fully determines its outcome: the same
:class:`SessionSpec` produces the same questions, the same answers, and
the same final ordering space in every process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.api.specs import SessionSpec
from repro.utils.rng import derive_seed

#: One recorded crowd answer: ``(i, j, holds, accuracy)``, canonical
#: ``i < j`` — the same shape session snapshots and the service event
#: log store.
AnswerTuple = Tuple[int, int, bool, float]


@dataclass
class PreparedSession:
    """Everything :func:`prepare_session` materialized for one spec."""

    spec: SessionSpec
    distributions: List[Any]
    truth: Any
    crowd: Any
    session: Any

    def run(self) -> Any:
        """Run the configured policy against the configured budget."""
        return self.session.run(
            self.spec.policy.build(), self.spec.budget.questions
        )


def prepare_session(
    spec: SessionSpec, track_trajectory: bool = False
) -> PreparedSession:
    """Materialize instance, ground truth, crowd, and session for a spec."""
    from repro.core.session import UncertaintyReductionSession
    from repro.crowd.oracle import GroundTruth

    seed = spec.instance.seed
    distributions = spec.instance.materialize()
    truth = GroundTruth.sample(distributions, rng=derive_seed(seed, "truth"))
    crowd = spec.crowd.build(truth, rng=derive_seed(seed, "crowd"))
    session = UncertaintyReductionSession(
        distributions,
        spec.instance.k,
        crowd,
        builder=spec.build_builder(),
        measure=spec.measure.build(),
        rng=derive_seed(seed, "policy"),
        track_trajectory=track_trajectory,
    )
    return PreparedSession(spec, distributions, truth, crowd, session)


def run_session(spec: SessionSpec, track_trajectory: bool = False) -> Any:
    """Run one complete session described by ``spec``; returns the
    :class:`~repro.core.session.SessionResult`."""
    return prepare_session(spec, track_trajectory=track_trajectory).run()


@dataclass
class ReplayResult:
    """What :func:`replay_session` reconstructed from a spec + answers.

    ``uncertainties`` / ``intervals`` / ``orderings`` hold one entry per
    *state* — the initial space plus the state after each applied answer,
    so their length is ``len(answers) + 1``.  Intervals are the certified
    ``[lo, hi]`` of :meth:`UncertaintyMeasure.evaluate_interval`
    (degenerate ``[v, v]`` on exact engines).
    """

    spec: SessionSpec
    space: Any
    uncertainties: List[float]
    intervals: List[Tuple[float, float]]
    orderings: List[int]

    def top_k(self) -> List[int]:
        """The final most-probable top-K prefix (the paper's MPO)."""
        return [int(t) for t in self.space.most_probable_ordering()]


def replay_session(
    spec: SessionSpec,
    answers: Sequence[AnswerTuple],
    evaluator: Optional[Any] = None,
) -> ReplayResult:
    """Re-apply a recorded answer sequence over a freshly built space.

    This is the *sanctioned* deterministic replay path: the spec fully
    determines the initial space (same seed derivation as
    :func:`prepare_session`), and the final state is a pure function of
    (spec, answers) — the same event-sourcing contract session snapshots
    and the service event log rely on.  The evaluation harness
    (:mod:`repro.evals`) uses it both to verify golden recordings
    bit-for-bit and to realize exact measure values along a beam
    session's answer trajectory; lint rule RPL010 holds eval code to
    this entry point instead of hand-rolled session construction.

    ``evaluator`` overrides the :class:`ResidualEvaluator` (e.g. to share
    evaluation counters); by default one is built from ``spec.measure``.
    """
    from repro.questions.model import Question
    from repro.questions.residual import ResidualEvaluator

    distributions = spec.instance.materialize()
    tree = spec.build_builder().build(distributions, spec.instance.k)
    space = tree.to_space()
    if evaluator is None:
        evaluator = ResidualEvaluator(spec.measure.build())
    uncertainties = [evaluator.uncertainty(space)]
    intervals = [evaluator.uncertainty_interval(space)]
    orderings = [int(space.size)]
    for i, j, holds, accuracy in answers:
        space = evaluator.apply_answer(
            space, Question(int(i), int(j)), bool(holds), float(accuracy)
        )
        uncertainties.append(evaluator.uncertainty(space))
        intervals.append(evaluator.uncertainty_interval(space))
        orderings.append(int(space.size))
    return ReplayResult(
        spec=spec,
        space=space,
        uncertainties=uncertainties,
        intervals=intervals,
        orderings=orderings,
    )


__all__ = [
    "AnswerTuple",
    "PreparedSession",
    "ReplayResult",
    "prepare_session",
    "replay_session",
    "run_session",
]
