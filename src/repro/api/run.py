"""Turn a :class:`~repro.api.specs.SessionSpec` into a running session.

All RNG streams derive from the instance seed through the process-stable
:func:`~repro.utils.rng.derive_seed`, with one label per role (instance /
truth / crowd / policy), so a spec fully determines its outcome: the same
:class:`SessionSpec` produces the same questions, the same answers, and
the same final ordering space in every process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

from repro.api.specs import SessionSpec
from repro.utils.rng import derive_seed


@dataclass
class PreparedSession:
    """Everything :func:`prepare_session` materialized for one spec."""

    spec: SessionSpec
    distributions: List[Any]
    truth: Any
    crowd: Any
    session: Any

    def run(self) -> Any:
        """Run the configured policy against the configured budget."""
        return self.session.run(
            self.spec.policy.build(), self.spec.budget.questions
        )


def prepare_session(
    spec: SessionSpec, track_trajectory: bool = False
) -> PreparedSession:
    """Materialize instance, ground truth, crowd, and session for a spec."""
    from repro.core.session import UncertaintyReductionSession
    from repro.crowd.oracle import GroundTruth

    seed = spec.instance.seed
    distributions = spec.instance.materialize()
    truth = GroundTruth.sample(distributions, rng=derive_seed(seed, "truth"))
    crowd = spec.crowd.build(truth, rng=derive_seed(seed, "crowd"))
    session = UncertaintyReductionSession(
        distributions,
        spec.instance.k,
        crowd,
        builder=spec.build_builder(),
        measure=spec.measure.build(),
        rng=derive_seed(seed, "policy"),
        track_trajectory=track_trajectory,
    )
    return PreparedSession(spec, distributions, truth, crowd, session)


def run_session(spec: SessionSpec, track_trajectory: bool = False) -> Any:
    """Run one complete session described by ``spec``; returns the
    :class:`~repro.core.session.SessionResult`."""
    return prepare_session(spec, track_trajectory=track_trajectory).run()


__all__ = ["PreparedSession", "prepare_session", "run_session"]
