"""The built-in plugin catalog: one registry per pluggable axis.

Every name the system understands — question-selection policies,
uncertainty measures, workload generators, realistic scenarios, crowd
worker models, score-distribution families, TPO construction engines — is
registered here, lazily, as a ``"module:attr"`` dotted path.  Nothing
heavy is imported until a plugin is actually constructed, which is what
lets the deprecated front doors (``repro.core.POLICIES``,
``repro.workloads.GENERATORS``, …) alias these registries without import
cycles.

Downstream users extend the system by registering into these instances::

    from repro.api import MEASURES

    MEASURES.register("flat", MyFlatMeasure)

``repro list`` and the service's ``/v1/meta`` endpoint enumerate exactly
this catalog.
"""

from __future__ import annotations

from typing import Dict

from repro.api.registry import Registry

#: Question-selection policies (the paper's algorithm names).
POLICIES = Registry("policy")
POLICIES.register("random", "repro.core.policies:RandomPolicy")
POLICIES.register("naive", "repro.core.policies:NaivePolicy")
POLICIES.register("TB-off", "repro.core.policies:TopBPolicy")
POLICIES.register("C-off", "repro.core.policies:ConditionalPolicy")
POLICIES.register("A*-off", "repro.core.policies:AStarOfflinePolicy")
POLICIES.register("A*-on", "repro.core.policies:AStarOnlinePolicy")
POLICIES.register("T1-on", "repro.core.policies:Top1OnlinePolicy")
POLICIES.register("incr", "repro.core.incremental:IncrementalAlgorithm")
POLICIES.register("exhaustive", "repro.core.policies:ExhaustivePolicy")

#: Ordering-uncertainty measures (paper names, case-sensitive).
MEASURES = Registry("uncertainty measure")
MEASURES.register("H", "repro.uncertainty.entropy:EntropyMeasure")
MEASURES.register("Hw", "repro.uncertainty.entropy:WeightedEntropyMeasure")
MEASURES.register("ORA", "repro.uncertainty.representative:ORAUncertainty")
MEASURES.register("MPO", "repro.uncertainty.representative:MPOUncertainty")

#: Synthetic workload generators (score-distribution lists).
WORKLOADS = Registry("workload")
WORKLOADS.register("uniform", "repro.workloads.synthetic:uniform_intervals")
WORKLOADS.register("jittered", "repro.workloads.synthetic:jittered_widths")
WORKLOADS.register("gaussian", "repro.workloads.synthetic:gaussian_scores")
WORKLOADS.register(
    "triangular", "repro.workloads.synthetic:triangular_scores"
)
WORKLOADS.register("pareto", "repro.workloads.synthetic:pareto_scores")
WORKLOADS.register(
    "clustered", "repro.workloads.synthetic:clustered_intervals"
)
WORKLOADS.register("mixed", "repro.workloads.synthetic:mixed_certainty")

#: Realistic uncertain-table scenarios (full example applications).
SCENARIOS = Registry("scenario")
SCENARIOS.register(
    "sensor_network", "repro.workloads.scenarios:sensor_network"
)
SCENARIOS.register("photo_contest", "repro.workloads.scenarios:photo_contest")
SCENARIOS.register(
    "restaurant_guide", "repro.workloads.scenarios:restaurant_guide"
)

#: Crowd worker models (how a simulated worker answers).
CROWD_MODELS = Registry("crowd model")
CROWD_MODELS.register("perfect", "repro.crowd.worker:PerfectWorker")
CROWD_MODELS.register("noisy", "repro.crowd.worker:NoisyWorker")
CROWD_MODELS.register("adversarial", "repro.crowd.worker:AdversarialWorker")

#: Score-distribution families.
DISTRIBUTIONS = Registry("distribution")
DISTRIBUTIONS.register("uniform", "repro.distributions.uniform:Uniform")
DISTRIBUTIONS.register(
    "triangular", "repro.distributions.triangular:Triangular"
)
DISTRIBUTIONS.register(
    "gaussian", "repro.distributions.gaussian:TruncatedGaussian"
)
DISTRIBUTIONS.register(
    "pareto", "repro.distributions.pareto:TruncatedPareto"
)
DISTRIBUTIONS.register("histogram", "repro.distributions.histogram:Histogram")
DISTRIBUTIONS.register("point", "repro.distributions.point:PointMass")
DISTRIBUTIONS.register("mixture", "repro.distributions.mixture:Mixture")
DISTRIBUTIONS.register(
    "affine", "repro.distributions.affine:AffineDistribution"
)

#: TPO construction engines.
ENGINES = Registry("TPO engine")
ENGINES.register("grid", "repro.tpo.builders:GridBuilder")
ENGINES.register("exact", "repro.tpo.builders:ExactBuilder")
ENGINES.register("mc", "repro.tpo.builders:MonteCarloBuilder")

#: Cross-process cold-tier store backends (binary TPO payloads).
STORES = Registry("store backend")
STORES.register("memory", "repro.service.store:MemoryColdTier")
STORES.register("disk-npz", "repro.service.store:DiskNpzColdTier")
STORES.register(
    "shared-memory", "repro.service.store:SharedMemoryColdTier"
)

#: Evaluation suites (fidelity gates: calibration / regret / golden).
EVALS = Registry("eval suite")
EVALS.register("calibration", "repro.evals.calibration:CalibrationEval")
EVALS.register("regret", "repro.evals.regret:RegretEval")
EVALS.register("golden", "repro.evals.golden:GoldenEval")


def all_registries() -> Dict[str, Registry]:
    """Every catalog registry, keyed by its plural enumeration name.

    The single source for ``repro list`` and the ``/v1/meta`` endpoint.
    The lint-rule and whole-program-check registries live with their
    analyzers (:mod:`repro.devtools.lint`,
    :mod:`repro.devtools.analysis`) and are pulled in lazily here so
    plain catalog users never import the AST machinery — but the plugin
    surface enumerates *every* pluggable axis, dev tooling included.
    """
    from repro.devtools.analysis import CHECKS
    from repro.devtools.lint import LINT_RULES

    return {
        "policies": POLICIES,
        "measures": MEASURES,
        "workloads": WORKLOADS,
        "scenarios": SCENARIOS,
        "crowd_models": CROWD_MODELS,
        "distributions": DISTRIBUTIONS,
        "engines": ENGINES,
        "stores": STORES,
        "evals": EVALS,
        "lint_rules": LINT_RULES,
        "checks": CHECKS,
    }


__all__ = [
    "POLICIES",
    "MEASURES",
    "WORKLOADS",
    "SCENARIOS",
    "CROWD_MODELS",
    "DISTRIBUTIONS",
    "ENGINES",
    "STORES",
    "EVALS",
    "all_registries",
]
