"""Fixed-point dataflow over the whole-program call graph.

Two engines drive all the interprocedural RPC checks:

* :func:`taint_closure` — backward reachability with witness chains.
  Seed functions carry *evidence* (the primitive call that makes them
  blocking / nondeterministic); the worklist propagates the taint to
  every caller until nothing changes, remembering for each tainted
  function the callee and call site it got the taint through.
  :func:`witness_chain` then replays that trail into the human-readable
  ``a -> b -> c -> open(...)`` chains the findings print.

* :func:`propagate_exceptions` — forward union of raise-sets along
  call edges, the classic may-raise analysis.  A callee's escaping
  exceptions join the caller's set *minus* whatever the call site's
  enclosing ``try`` bodies catch (subclass-aware via
  :meth:`CallGraph.exception_ancestors`), again iterated to a fixed
  point because call cycles exist.

Both engines are deliberately monotone (sets only grow), so the fixed
point exists and the iteration terminates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.devtools.analysis.graph import CallGraph, CallSite


@dataclass(frozen=True)
class TaintEvidence:
    """Why a function is tainted.

    Seed functions have ``via=None`` and a ``primitive`` (the external
    call, e.g. ``time.sleep``); propagated functions have ``via`` = the
    tainted callee qname reached at ``line``.
    """

    primitive: Optional[str]
    via: Optional[str]
    line: int


def taint_closure(
    graph: CallGraph,
    seeds: Dict[str, TaintEvidence],
    barriers: FrozenSet[str] = frozenset(),
) -> Dict[str, TaintEvidence]:
    """Propagate taint from ``seeds`` to all (transitive) callers.

    ``barriers`` are functions the taint must not propagate *through*:
    they may be tainted themselves but their callers stay clean (used
    for sanctioned wrappers, e.g. the buffered event-log path).  The
    first evidence to reach a function wins, which keeps witness chains
    minimal-ish and deterministic (worklist is seeded in sorted order).
    """
    facts: Dict[str, TaintEvidence] = dict(seeds)
    worklist = deque(sorted(seeds))
    while worklist:
        callee = worklist.popleft()
        if callee in barriers:
            continue
        for caller, site in graph.callers_of(callee):
            if caller in facts:
                continue
            facts[caller] = TaintEvidence(
                primitive=None, via=callee, line=site.line
            )
            worklist.append(caller)
    return facts


def witness_chain(
    facts: Dict[str, TaintEvidence], start: str, limit: int = 12
) -> List[str]:
    """Replay evidence into a readable call chain ending at a primitive.

    Returns e.g. ``["repro.service.server:_handle_next",
    "repro.service.manager:SessionManager.flush_log", "open(...)"]``.
    """
    chain: List[str] = []
    current: Optional[str] = start
    seen: Set[str] = set()
    while current is not None and current not in seen and len(chain) < limit:
        seen.add(current)
        chain.append(current)
        evidence = facts.get(current)
        if evidence is None:
            break
        if evidence.primitive is not None:
            chain.append(f"{evidence.primitive}(...)")
            break
        current = evidence.via
    return chain


@dataclass(frozen=True)
class RaiseFact:
    """One exception type that may escape a function."""

    exc: str  # leaf class name
    origin: str  # qname of the function with the original raise
    line: int  # line of the original raise statement


def _escaping_through(
    graph: CallGraph, site: CallSite, facts: Set[RaiseFact]
) -> Set[RaiseFact]:
    return {
        fact
        for fact in facts
        if not graph.is_caught(fact.exc, site.caught)
    }


def propagate_exceptions(
    graph: CallGraph,
) -> Dict[str, Set[RaiseFact]]:
    """May-raise sets per function, to a fixed point.

    Each function starts with its own uncaught explicit raises; every
    iteration folds in callees' escaping sets filtered by what each call
    site catches.  Origins survive propagation, so a finding can point
    at the actual ``raise`` statement three frames down.
    """
    raises: Dict[str, Set[RaiseFact]] = {}
    for qname, info in graph.functions.items():
        own: Set[RaiseFact] = set()
        for site in info.raises:
            if graph.is_caught(site.exc, site.caught):
                continue
            own.add(RaiseFact(exc=site.exc, origin=qname, line=site.line))
        raises[qname] = own

    changed = True
    while changed:
        changed = False
        for qname, info in graph.functions.items():
            current = raises[qname]
            before = len(current)
            for site in info.calls:
                if site.target is None:
                    continue
                callee_facts = raises.get(site.target)
                if not callee_facts:
                    continue
                current |= _escaping_through(graph, site, callee_facts)
            if len(current) != before:
                changed = True
    return raises


def reachable_from(
    graph: CallGraph, roots: FrozenSet[str]
) -> Dict[str, Tuple[str, int]]:
    """Forward reachability: ``callee -> (caller, line)`` parent links.

    Used to answer "is this function reachable from any /v1 handler"
    and to reconstruct the path that reaches it.
    """
    parents: Dict[str, Tuple[str, int]] = {}
    worklist = deque(sorted(roots))
    visited: Set[str] = set(roots)
    while worklist:
        caller = worklist.popleft()
        for site in graph.callees_of(caller):
            if site.target is None or site.target in visited:
                continue
            visited.add(site.target)
            parents[site.target] = (caller, site.line)
            worklist.append(site.target)
    return parents


__all__ = [
    "RaiseFact",
    "TaintEvidence",
    "propagate_exceptions",
    "reachable_from",
    "taint_closure",
    "witness_chain",
]
