"""Whole-program import/call-graph construction over ``src/repro``.

One AST pass per module builds a package-wide :class:`CallGraph` whose
nodes are *functions* (including methods and a synthetic ``<module>``
node per module for import-time code) and whose edges are resolved call
sites.  Resolution is deliberately static but domain-aware; it follows

* plain intra-module calls (``helper()``),
* imported names (``from repro.x import f`` / ``import repro.x as y``
  followed by ``y.f()``), chasing re-exports through ``__init__``
  modules,
* ``self.method()`` / ``cls.method()`` dispatch, walking internal base
  classes,
* *annotation-typed receivers*: when a parameter, local, or attribute is
  annotated with an internal class (``manager: SessionManager``,
  ``self._log: Optional[EventLog]``), calls through it resolve to that
  class's methods — this is what lets blocking-I/O facts travel from an
  ``async def`` handler through ``ctx.manager.submit_answer`` into the
  event-log code three layers down,
* the registries' lazy ``"module:attr"`` factory strings (and any other
  ``repro.…:attr`` literal, e.g. grid-cell runner references): each one
  becomes a :class:`LazyRef` plus a call edge from its enclosing
  function, so ``repro.api.catalog`` really does "call" every builtin
  plugin it registers.

Unresolved calls are kept as *external* dotted names (normalized through
import aliases, so ``sleep`` imported from ``time`` reports as
``time.sleep``) — the raw material for the blocking/nondeterminism seed
sets of :mod:`repro.devtools.analysis.checks`.

Every call and raise site also records which exception types enclosing
``try`` bodies catch, which is what makes the exception-contract check
(RPC104) usable: a ``ValueError`` raised under
``except (TypeError, ValueError)`` does not escape.

Known static limitations (documented, deliberate): property accesses are
not call sites, dispatch is by declared type (subclass overrides are not
unioned in), and functions passed as values (e.g. into
``run_in_executor``) create no edge — which is exactly the sanctioned
way to move blocking work off the event loop.
"""

from __future__ import annotations

import ast
import builtins
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

#: Matches the registries' lazy factory strings (``repro.x.y:attr``).
LAZY_REF_PATTERN = re.compile(r"^(?P<module>[A-Za-z_][\w.]*):(?P<attr>[A-Za-z_]\w*)$")

#: Marker inside a caught-set meaning "catches everything".
CATCH_ALL = "*"


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    #: Resolved internal target (function qname), or ``None``.
    target: Optional[str]
    #: Normalized dotted name for unresolved calls (``time.sleep``).
    external: Optional[str]
    #: Bare attribute name for unresolved attribute calls (``recv``).
    attr: Optional[str]
    line: int
    #: Exception type names caught by enclosing ``try`` bodies.
    caught: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class RaiseSite:
    """One explicit ``raise SomeError(...)`` statement."""

    exc: str  # leaf class name (``TPOSizeError``)
    qname: Optional[str]  # internal class qname when resolvable
    line: int
    caught: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class LazyRef:
    """One ``"module:attr"`` string constant (registry factory, runner)."""

    text: str
    module: str
    attr: str
    path: str
    line: int
    function: str  # enclosing function qname
    registry: Optional[str] = None  # registry variable for .register() calls
    plugin: Optional[str] = None  # plugin name for .register() calls


@dataclass
class FunctionInfo:
    """One call-graph node."""

    qname: str
    module: str
    name: str
    cls: Optional[str]
    path: str
    line: int
    col: int
    is_async: bool
    #: Dotted return annotation (typing locals bound to call results).
    returns: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)
    raises: List[RaiseSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    qname: str
    module: str
    name: str
    bases: List[str] = field(default_factory=list)  # resolved qnames/dotted
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    name: str
    path: str
    tree: ast.Module
    source_lines: List[str]
    imports: Dict[str, str] = field(default_factory=dict)
    top_names: Set[str] = field(default_factory=set)


def module_node(name: str) -> str:
    """Qname of the synthetic import-time node of module ``name``."""
    return f"{name}:<module>"


class CallGraph:
    """The resolved whole-program graph (see module docstring)."""

    def __init__(self, root: Path, package: str) -> None:
        self.root = root
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.lazy_refs: List[LazyRef] = []
        self._reverse: Optional[Dict[str, List[Tuple[str, CallSite]]]] = None

    # -- topology ------------------------------------------------------

    def callees_of(self, qname: str) -> Iterator[CallSite]:
        info = self.functions.get(qname)
        if info is not None:
            yield from info.calls

    def callers_of(self, qname: str) -> List[Tuple[str, CallSite]]:
        """``(caller, site)`` pairs whose resolved target is ``qname``."""
        if self._reverse is None:
            reverse: Dict[str, List[Tuple[str, CallSite]]] = {}
            for caller, info in self.functions.items():
                for site in info.calls:
                    if site.target is not None:
                        reverse.setdefault(site.target, []).append(
                            (caller, site)
                        )
            self._reverse = reverse
        return self._reverse.get(qname, [])

    def edges(self) -> List[Tuple[str, str]]:
        pairs = {
            (caller, site.target)
            for caller, info in self.functions.items()
            for site in info.calls
            if site.target is not None
        }
        return sorted(pairs)

    def line_text(self, qname: str) -> str:
        info = self.functions.get(qname)
        if info is None:
            return ""
        module = self.modules.get(info.module)
        if module is None:
            return ""
        if 1 <= info.line <= len(module.source_lines):
            return module.source_lines[info.line - 1].strip()
        return ""

    # -- class/exception hierarchy -------------------------------------

    def lookup_method(self, class_qname: str, method: str) -> Optional[str]:
        """Resolve ``method`` on a class, walking internal bases (BFS)."""
        seen: Set[str] = set()
        queue = [class_qname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            queue.extend(info.bases)
        return None

    def exception_ancestors(self, leaf: str) -> Set[str]:
        """Leaf names of every ancestor of exception class ``leaf``.

        Internal classes contribute their resolved bases; builtin
        exceptions contribute their real MRO.  Unknown names fall back
        to ``{leaf, "Exception"}``.
        """
        ancestors: Set[str] = set()
        queue = [leaf]
        while queue:
            name = queue.pop(0)
            if name in ancestors:
                continue
            ancestors.add(name)
            matched = False
            for info in self.classes.values():
                if info.name == name:
                    matched = True
                    for base in info.bases:
                        queue.append(base.rsplit(":", 1)[-1].rsplit(".", 1)[-1])
            if not matched:
                builtin = getattr(builtins, name, None)
                if isinstance(builtin, type) and issubclass(
                    builtin, BaseException
                ):
                    queue.extend(
                        c.__name__ for c in builtin.__mro__[1:]
                    )
                    matched = True
            if not matched:
                ancestors.add("Exception")
        return ancestors

    def is_caught(self, exc: str, caught: FrozenSet[str]) -> bool:
        if not caught:
            return False
        if CATCH_ALL in caught:
            return True
        return bool(self.exception_ancestors(exc) & set(caught))

    # -- serialization (--graph-dump) ----------------------------------

    def to_dict(self) -> Dict[str, object]:
        externals: Dict[str, int] = {}
        for info in self.functions.values():
            for site in info.calls:
                if site.target is None and site.external:
                    externals[site.external] = (
                        externals.get(site.external, 0) + 1
                    )
        return {
            "format_version": 1,
            "package": self.package,
            "counts": {
                "modules": len(self.modules),
                "functions": len(self.functions),
                "classes": len(self.classes),
                "edges": len(self.edges()),
                "lazy_refs": len(self.lazy_refs),
            },
            "modules": sorted(self.modules),
            "functions": [
                {
                    "qname": info.qname,
                    "path": info.path,
                    "line": info.line,
                    "async": info.is_async,
                    "calls": len(info.calls),
                    "raises": sorted({r.exc for r in info.raises}),
                }
                for _, info in sorted(self.functions.items())
            ],
            "edges": [list(edge) for edge in self.edges()],
            "lazy_refs": [
                {
                    "text": ref.text,
                    "path": ref.path,
                    "line": ref.line,
                    "function": ref.function,
                    "registry": ref.registry,
                    "plugin": ref.plugin,
                }
                for ref in self.lazy_refs
            ],
            "external_calls": dict(sorted(externals.items())),
        }


# ----------------------------------------------------------------------
# Pass 1: module discovery
# ----------------------------------------------------------------------


def _module_name(rel: Path) -> str:
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _collect_imports(
    module: str, tree: ast.Module, imports: Dict[str, str]
) -> None:
    package_parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    imports.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # ``from ..x import y`` — resolve against this module's
                # package (``__init__`` modules count as their package).
                base = package_parts[: len(package_parts) - node.level + 1]
                base = package_parts[: -node.level] if node.level else base
                prefix = ".".join(
                    package_parts[: len(package_parts) - node.level]
                    if len(package_parts) >= node.level
                    else []
                )
                source = (
                    f"{prefix}.{node.module}" if node.module else prefix
                )
            else:
                source = node.module or ""
            if not source:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = (
                    f"{source}.{alias.name}"
                )


def _annotation_dotted(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort dotted class name from an annotation expression."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return _dotted(node)
    if isinstance(node, ast.Subscript):
        base = _annotation_dotted(node.value)
        if base in {"Optional", "typing.Optional"}:
            return _annotation_dotted(node.slice)
        if base in {"Union", "typing.Union"} and isinstance(
            node.slice, ast.Tuple
        ):
            for element in node.slice.elts:
                if isinstance(element, ast.Constant) and element.value is None:
                    continue
                resolved = _annotation_dotted(element)
                if resolved is not None:
                    return resolved
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Pass 2: body resolution
# ----------------------------------------------------------------------


class _BodyWalker:
    """Collects call/raise/lazy-ref sites for one function body.

    Nested ``def``s become their own nodes (with an assumed-call edge
    from the parent — the "define and hand to the framework" pattern);
    lambdas and comprehensions are inlined into the enclosing function.
    """

    def __init__(
        self,
        builder: "GraphBuilder",
        function: FunctionInfo,
        module: ModuleInfo,
        env: Dict[str, str],
        cls: Optional[ClassInfo],
    ) -> None:
        self.builder = builder
        self.function = function
        self.module = module
        self.env = env
        self.cls = cls
        self.caught_stack: List[FrozenSet[str]] = []

    @property
    def caught(self) -> FrozenSet[str]:
        merged: Set[str] = set()
        for level in self.caught_stack:
            merged |= level
        return frozenset(merged)

    def walk(self, nodes: List[ast.stmt]) -> None:
        for node in nodes:
            self._visit(node)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = self.builder.add_function(
                node,
                self.module,
                cls=None,
                parent=self.function.qname,
            )
            # Decorators evaluate in the enclosing scope.
            for decorator in node.decorator_list:
                self._visit(decorator)
            self.function.calls.append(
                CallSite(
                    target=nested.qname,
                    external=None,
                    attr=None,
                    line=node.lineno,
                    caught=self.caught,
                )
            )
            return
        if isinstance(node, ast.ClassDef):
            return  # function-local classes: out of scope
        if isinstance(node, ast.Try):
            handled: Set[str] = set()
            for handler in node.handlers:
                handled |= self._handler_types(handler.type)
            self.caught_stack.append(frozenset(handled))
            for stmt in node.body:
                self._visit(stmt)
            self.caught_stack.pop()
            for handler in node.handlers:
                for stmt in handler.body:
                    self._visit(stmt)
            for stmt in list(node.orelse) + list(node.finalbody):
                self._visit(stmt)
            return
        if isinstance(node, ast.Raise):
            self._record_raise(node)
            # fall through: the constructor call inside is still a call
        if isinstance(node, ast.Call):
            self._record_call(node)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            self.builder.record_lazy_ref(
                node.value,
                self.module,
                self.function.qname,
                node.lineno,
                function_info=self.function,
                caught=self.caught,
            )
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            resolved = self.builder.resolve_type(
                _annotation_dotted(node.annotation), self.module
            )
            if resolved:
                self.env[node.target.id] = resolved
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Call
        ):
            constructed = self._constructed_class(node.value)
            if constructed:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.env[target.id] = constructed
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _handler_types(self, node: Optional[ast.AST]) -> Set[str]:
        if node is None:
            return {CATCH_ALL}
        if isinstance(node, ast.Tuple):
            merged: Set[str] = set()
            for element in node.elts:
                merged |= self._handler_types(element)
            return merged
        dotted = _dotted(node)
        if dotted is None:
            return {CATCH_ALL}
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf in {"Exception", "BaseException"}:
            return {CATCH_ALL}
        return {leaf}

    def _constructed_class(self, call: ast.Call) -> Optional[str]:
        """Static type of a call result: constructors and annotated
        returns (``q = self._get(sid)`` types ``q`` via ``_get``'s
        ``-> ManagedSession`` annotation)."""
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        internal, _ = self.builder.resolve_dotted(
            dotted, self.module, env=self.env, cls=self.cls
        )
        if internal is None:
            return None
        graph = self.builder.graph
        if internal in graph.classes:
            return internal
        callee = graph.functions.get(internal)
        if callee is not None and callee.returns is not None:
            owner = graph.modules.get(callee.module)
            if owner is not None:
                return self.builder.resolve_type(callee.returns, owner)
        return None

    def _record_raise(self, node: ast.Raise) -> None:
        exc = node.exc
        if exc is None:
            return  # bare re-raise: the original site already recorded it
        if isinstance(exc, ast.Call):
            exc = exc.func
        dotted = _dotted(exc)
        if dotted is None:
            return
        internal, _ = self.builder.resolve_dotted(dotted, self.module)
        qname = (
            internal if internal in self.builder.graph.classes else None
        )
        leaf = (
            qname.rsplit(":", 1)[-1].rsplit(".", 1)[-1]
            if qname
            else dotted.rsplit(".", 1)[-1]
        )
        self.function.raises.append(
            RaiseSite(
                exc=leaf, qname=qname, line=node.lineno, caught=self.caught
            )
        )

    def _record_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        target: Optional[str] = None
        external: Optional[str] = None
        attr: Optional[str] = None
        if dotted is not None:
            target, external = self.builder.resolve_dotted(
                dotted, self.module, env=self.env, cls=self.cls
            )
            if target is not None and target in self.builder.graph.classes:
                # Constructing a class "calls" its (possibly inherited)
                # __init__.
                init = self.builder.graph.lookup_method(target, "__init__")
                target = init if init is not None else None
                external = None
        if target is None and external is None and isinstance(
            node.func, ast.Attribute
        ):
            attr = node.func.attr
        self.function.calls.append(
            CallSite(
                target=target,
                external=external,
                attr=attr,
                line=node.lineno,
                caught=self.caught,
            )
        )


class GraphBuilder:
    """Two-pass builder producing a :class:`CallGraph`."""

    def __init__(self, root: Path, package_dir: Path) -> None:
        #: ``root`` is the repo root; ``package_dir`` the package source
        #: tree (``<root>/src/repro``) whose files become the graph.
        self.root = root
        self.package_dir = package_dir
        package = package_dir.name
        self.graph = CallGraph(root, package)
        self._pending: List[Tuple[FunctionInfo, ast.AST, Optional[str]]] = []

    # -- pass 1 --------------------------------------------------------

    def discover(self) -> None:
        src_root = self.package_dir.parent
        for file_path in sorted(self.package_dir.rglob("*.py")):
            rel_to_src = file_path.relative_to(src_root)
            name = _module_name(rel_to_src)
            try:
                rel = file_path.relative_to(self.root).as_posix()
            except ValueError:
                rel = file_path.as_posix()
            source = file_path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue  # RPL000 (repro lint) owns unparsable files
            module = ModuleInfo(
                name=name,
                path=rel,
                tree=tree,
                source_lines=source.splitlines(),
            )
            _collect_imports(name, tree, module.imports)
            self.graph.modules[name] = module

        for module in self.graph.modules.values():
            self._index_module(module)

    def _index_module(self, module: ModuleInfo) -> None:
        mod_fn = FunctionInfo(
            qname=module_node(module.name),
            module=module.name,
            name="<module>",
            cls=None,
            path=module.path,
            line=1,
            col=0,
            is_async=False,
        )
        self.graph.functions[mod_fn.qname] = mod_fn
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.top_names.add(node.name)
                self.add_function(node, module, cls=None)
            elif isinstance(node, ast.ClassDef):
                module.top_names.add(node.name)
                self._index_class(node, module)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        module.top_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                module.top_names.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name != "*":
                        module.top_names.add(
                            alias.asname or alias.name.split(".", 1)[0]
                        )
        self._pending.append((mod_fn, module.tree, None))

    def _index_class(self, node: ast.ClassDef, module: ModuleInfo) -> None:
        qname = f"{module.name}:{node.name}"
        info = ClassInfo(qname=qname, module=module.name, name=node.name)
        for base in node.bases:
            dotted = _dotted(base)
            if dotted is None:
                continue
            internal, external = self.resolve_dotted(dotted, module)
            info.bases.append(internal or external or dotted)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self.add_function(stmt, module, cls=info)
                info.methods[stmt.name] = method.qname
                if stmt.name == "__init__":
                    self._collect_init_attrs(stmt, info, module)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                dotted = _annotation_dotted(stmt.annotation)
                if dotted:
                    info.attr_types[stmt.target.id] = dotted
        self.graph.classes[qname] = info

    def _collect_init_attrs(
        self,
        init: ast.AST,
        info: ClassInfo,
        module: ModuleInfo,
    ) -> None:
        params: Dict[str, str] = {}
        args = init.args  # type: ignore[attr-defined]
        for arg in list(args.posonlyargs) + list(args.args) + list(
            args.kwonlyargs
        ):
            dotted = _annotation_dotted(arg.annotation)
            if dotted:
                params[arg.arg] = dotted
        for node in ast.walk(init):
            target = None
            value_name: Optional[str] = None
            annotation: Optional[str] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if isinstance(value, ast.IfExp):
                    # ``self.x = x if x is not None else Default()`` —
                    # the annotated parameter branch carries the type.
                    for branch in (value.body, value.orelse):
                        if (
                            isinstance(branch, ast.Name)
                            and branch.id in params
                        ):
                            value = branch
                            break
                if isinstance(value, ast.Name):
                    value_name = value.id
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                annotation = _annotation_dotted(node.annotation)
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if annotation:
                    info.attr_types.setdefault(target.attr, annotation)
                elif value_name and value_name in params:
                    info.attr_types.setdefault(
                        target.attr, params[value_name]
                    )

    def add_function(
        self,
        node: ast.AST,
        module: ModuleInfo,
        cls: Optional[ClassInfo],
        parent: Optional[str] = None,
    ) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        if cls is not None:
            qname = f"{module.name}:{cls.name}.{name}"
        elif parent is not None:
            qname = f"{parent}.<locals>.{name}"
        else:
            qname = f"{module.name}:{name}"
        info = FunctionInfo(
            qname=qname,
            module=module.name,
            name=name,
            cls=cls.qname if cls is not None else None,
            path=module.path,
            line=node.lineno,  # type: ignore[attr-defined]
            col=getattr(node, "col_offset", 0),
            is_async=isinstance(node, ast.AsyncFunctionDef),
            returns=_annotation_dotted(
                getattr(node, "returns", None)
            ),
        )
        self.graph.functions[qname] = info
        self._pending.append((info, node, cls.qname if cls else None))
        return info

    # -- resolution ----------------------------------------------------

    def resolve_type(
        self, dotted: Optional[str], module: ModuleInfo
    ) -> Optional[str]:
        """Dotted annotation → internal class qname (or ``None``)."""
        if not dotted:
            return None
        internal, _ = self.resolve_dotted(dotted, module)
        if internal in self.graph.classes:
            return internal
        # Same-module class referenced before/after its definition.
        candidate = f"{module.name}:{dotted}"
        if candidate in self.graph.classes:
            return candidate
        return None

    def _resolve_in_module(
        self, module_name: str, parts: List[str], depth: int = 0
    ) -> Tuple[Optional[str], Optional[str]]:
        """Resolve an attr chain inside an internal module."""
        if depth > 6 or not parts:
            return None, None
        module = self.graph.modules.get(module_name)
        if module is None:
            return None, None
        head, rest = parts[0], parts[1:]
        fn = f"{module_name}:{head}"
        if fn in self.graph.functions and not rest:
            return fn, None
        cls = f"{module_name}:{head}"
        if cls in self.graph.classes:
            if not rest:
                return cls, None
            if len(rest) == 1:
                method = self.graph.lookup_method(cls, rest[0])
                if method is not None:
                    return method, None
            return None, None
        if head in module.imports:
            # Re-export chase (``repro.api.__init__`` style).
            return self._resolve_chain(
                module.imports[head].split(".") + rest, depth + 1
            )
        return None, None

    def _resolve_chain(
        self, parts: List[str], depth: int = 0
    ) -> Tuple[Optional[str], Optional[str]]:
        """Resolve a fully-expanded dotted chain (module-first)."""
        if depth > 6:
            return None, None
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.graph.modules:
                remainder = parts[cut:]
                if not remainder:
                    return None, None  # bare module reference
                return self._resolve_in_module(prefix, remainder, depth)
        return None, ".".join(parts)

    def resolve_dotted(
        self,
        dotted: str,
        module: ModuleInfo,
        env: Optional[Dict[str, str]] = None,
        cls: Optional[ClassInfo] = None,
    ) -> Tuple[Optional[str], Optional[str]]:
        """Resolve a call/base expression to ``(internal, external)``.

        Exactly one of the results is non-``None`` (or both are ``None``
        for unresolvable attribute chains on untyped receivers).
        """
        parts = dotted.split(".")
        head = parts[0]

        # Typed receivers first: ``self`` / ``cls`` / annotated locals.
        receiver: Optional[str] = None
        if head in {"self", "cls"} and cls is not None:
            receiver = cls.qname
        elif env is not None and head in env:
            receiver = env[head]
        if receiver is not None and len(parts) > 1:
            return self._resolve_via_receiver(receiver, parts[1:], module)

        if head in module.imports:
            expanded = module.imports[head].split(".") + parts[1:]
            return self._resolve_chain(expanded)
        if head in module.top_names:
            return self._resolve_in_module(module.name, parts)
        if len(parts) == 1:
            return None, head  # builtin / global (``open``, ``print``)
        return self._resolve_chain(parts)

    def _resolve_via_receiver(
        self, class_qname: str, parts: List[str], module: ModuleInfo
    ) -> Tuple[Optional[str], Optional[str]]:
        current = class_qname
        for attr in parts[:-1]:
            info = self.graph.classes.get(current)
            if info is None:
                return None, None
            dotted = info.attr_types.get(attr)
            if dotted is None:
                return None, None
            owner = self.graph.modules.get(info.module)
            resolved = self.resolve_type(
                dotted, owner if owner is not None else module
            )
            if resolved is None:
                return None, None
            current = resolved
        method = self.graph.lookup_method(current, parts[-1])
        if method is not None:
            return method, None
        return None, None

    # -- lazy refs -----------------------------------------------------

    def record_lazy_ref(
        self,
        text: str,
        module: ModuleInfo,
        function: str,
        line: int,
        function_info: Optional[FunctionInfo] = None,
        caught: FrozenSet[str] = frozenset(),
        registry: Optional[str] = None,
        plugin: Optional[str] = None,
    ) -> None:
        match = LAZY_REF_PATTERN.match(text)
        if match is None:
            return
        target_module = match.group("module")
        if not target_module.startswith(self.graph.package + "."):
            return
        self.graph.lazy_refs.append(
            LazyRef(
                text=text,
                module=target_module,
                attr=match.group("attr"),
                path=module.path,
                line=line,
                function=function,
                registry=registry,
                plugin=plugin,
            )
        )
        if function_info is not None:
            internal, _ = self._resolve_in_module(
                target_module, [match.group("attr")]
            )
            if internal is not None and internal in self.graph.classes:
                internal = self.graph.lookup_method(internal, "__init__")
            if internal is not None:
                function_info.calls.append(
                    CallSite(
                        target=internal,
                        external=None,
                        attr=None,
                        line=line,
                        caught=caught,
                    )
                )

    def _annotate_registrations(self) -> None:
        """Attach registry/plugin names to ``.register(name, "m:attr")``."""
        by_site = {
            (ref.path, ref.line, ref.text): index
            for index, ref in enumerate(self.graph.lazy_refs)
        }
        for module in self.graph.modules.values():
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "register"
                    and isinstance(node.func.value, ast.Name)
                ):
                    continue
                registry = node.func.value.id
                plugin: Optional[str] = None
                factory: Optional[ast.Constant] = None
                strings = [
                    arg
                    for arg in list(node.args)
                    + [kw.value for kw in node.keywords]
                    if isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                ]
                for arg in strings:
                    if LAZY_REF_PATTERN.match(arg.value):
                        factory = arg
                    elif plugin is None:
                        plugin = arg.value
                if factory is None:
                    continue
                key = (module.path, factory.lineno, factory.value)
                index = by_site.get(key)
                if index is not None:
                    ref = self.graph.lazy_refs[index]
                    self.graph.lazy_refs[index] = LazyRef(
                        text=ref.text,
                        module=ref.module,
                        attr=ref.attr,
                        path=ref.path,
                        line=ref.line,
                        function=ref.function,
                        registry=registry,
                        plugin=plugin,
                    )

    # -- pass 2 --------------------------------------------------------

    def resolve_bodies(self) -> None:
        for info, node, cls_qname in self._pending:
            module = self.graph.modules[info.module]
            cls = self.graph.classes.get(cls_qname) if cls_qname else None
            env: Dict[str, str] = {}
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                ):
                    resolved = self.resolve_type(
                        _annotation_dotted(arg.annotation), module
                    )
                    if resolved:
                        env[arg.arg] = resolved
                body = list(node.body)
            else:  # the synthetic <module> node
                body = [
                    stmt
                    for stmt in node.body  # type: ignore[attr-defined]
                    if not isinstance(
                        stmt,
                        (
                            ast.FunctionDef,
                            ast.AsyncFunctionDef,
                            ast.ClassDef,
                        ),
                    )
                ]
            walker = _BodyWalker(self, info, module, env, cls)
            walker.walk(body)
        self._annotate_registrations()
        self._expand_virtual_calls()

    def _expand_virtual_calls(self) -> None:
        """Union subclass overrides into method call edges (CHA).

        A call resolved to ``Base.m`` may dispatch to any internal
        subclass override at runtime (``self.builder.build`` on a
        ``TPOBuilder`` runs a ``GridBuilder.extend``), so each such
        site gains one extra edge per override — the over-approximation
        that makes the may-block / may-raise closures sound across
        abstract template methods.
        """
        subclasses: Dict[str, List[str]] = {}
        for qname, info in self.graph.classes.items():
            for base in info.bases:
                if base in self.graph.classes:
                    subclasses.setdefault(base, []).append(qname)

        def overrides(class_qname: str, method: str) -> List[str]:
            found: List[str] = []
            for sub in subclasses.get(class_qname, ()):  # noqa: B007
                sub_info = self.graph.classes[sub]
                if method in sub_info.methods:
                    found.append(sub_info.methods[method])
                found.extend(overrides(sub, method))
            return found

        for info in self.graph.functions.values():
            extra: List[CallSite] = []
            for site in info.calls:
                if site.target is None or ":" not in site.target:
                    continue
                _, local = site.target.split(":", 1)
                if "." not in local or "<locals>" in local:
                    continue
                cls_name, method = local.rsplit(".", 1)
                owner = f"{site.target.rsplit(':', 1)[0]}:{cls_name}"
                for target in overrides(owner, method):
                    if target != site.target:
                        extra.append(
                            CallSite(
                                target=target,
                                external=None,
                                attr=None,
                                line=site.line,
                                caught=site.caught,
                            )
                        )
            info.calls.extend(extra)

    def build(self) -> CallGraph:
        self.discover()
        self.resolve_bodies()
        return self.graph


def build_graph(root: Path, package_dir: Optional[Path] = None) -> CallGraph:
    """Build the whole-program graph for ``<root>/src/repro`` (default)."""
    root = Path(root).resolve()
    if package_dir is None:
        package_dir = root / "src" / "repro"
    return GraphBuilder(root, Path(package_dir)).build()


__all__ = [
    "CATCH_ALL",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "GraphBuilder",
    "LazyRef",
    "LAZY_REF_PATTERN",
    "ModuleInfo",
    "RaiseSite",
    "build_graph",
    "module_node",
]
