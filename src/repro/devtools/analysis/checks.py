"""The interprocedural checks behind ``repro check`` (RPC101–RPC104).

Where ``repro lint`` (RPL rules) judges one file at a time, these checks
judge *call paths*: each one runs over the whole-program
:class:`~repro.devtools.analysis.graph.CallGraph` and one of the
fixed-point engines in :mod:`repro.devtools.analysis.dataflow`, so a
violation can involve three functions in three modules none of which is
individually wrong.

Checks are plugins in :data:`CHECKS` — the same
:class:`repro.api.registry.Registry` mechanism as every other pluggable
axis — keyed by their RPC code.  Findings are ordinary
:class:`~repro.devtools.findings.Violation` objects, so the baseline,
renderers, and exit-code convention are shared with ``repro lint``
verbatim.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set

from repro.api.registry import Registry
from repro.devtools.analysis import dataflow
from repro.devtools.analysis.graph import CallGraph, FunctionInfo
from repro.devtools.findings import Violation

#: Registered check plugins (name = check code, factory = check class).
CHECKS = Registry("check")


class Check:
    """Base class for whole-program check plugins.

    Mirrors the info surface of :class:`repro.devtools.lint.core.Rule`
    (``code`` / ``name`` / ``rationale`` / ``severity``) so the shared
    renderers and ``--list-checks`` work unchanged; the unit of work is
    :meth:`run`, called once with the resolved graph.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    severity: str = "error"

    def run(self, graph: CallGraph) -> Iterator[Violation]:
        return iter(())

    def violation_at(
        self,
        graph: CallGraph,
        function: FunctionInfo,
        message: str,
    ) -> Violation:
        return Violation(
            rule=self.code,
            path=function.path,
            line=function.line,
            col=function.col + 1,
            message=message,
            line_text=graph.line_text(function.qname),
            severity=self.severity,
        )


def _chain(facts: Dict[str, dataflow.TaintEvidence], start: str) -> str:
    return " -> ".join(dataflow.witness_chain(facts, start))


def _seed_taints(
    graph: CallGraph,
    matches_external: "SeedPredicate",
    sanctioned_modules: FrozenSet[str] = frozenset(),
) -> Dict[str, dataflow.TaintEvidence]:
    seeds: Dict[str, dataflow.TaintEvidence] = {}
    for qname, info in sorted(graph.functions.items()):
        if info.module in sanctioned_modules:
            continue
        for site in info.calls:
            if site.target is not None:
                continue
            primitive = matches_external(site.external, site.attr)
            if primitive is not None and qname not in seeds:
                seeds[qname] = dataflow.TaintEvidence(
                    primitive=primitive, via=None, line=site.line
                )
    return seeds


class SeedPredicate:
    """Classifies an unresolved call as a taint primitive (or not)."""

    def __init__(
        self,
        names: FrozenSet[str] = frozenset(),
        dotted: FrozenSet[str] = frozenset(),
        prefixes: Sequence[str] = (),
        attrs: FrozenSet[str] = frozenset(),
    ) -> None:
        self.names = names
        self.dotted = dotted
        self.prefixes = tuple(prefixes)
        self.attrs = attrs

    def __call__(
        self, external: Optional[str], attr: Optional[str]
    ) -> Optional[str]:
        if external is not None:
            if external in self.names or external in self.dotted:
                return external
            for prefix in self.prefixes:
                if external.startswith(prefix):
                    return external
        if attr is not None and attr in self.attrs:
            return f".{attr}"
        return None


#: Primitives that block the calling thread (RPC101 seeds).
BLOCKING = SeedPredicate(
    names=frozenset({"open", "input"}),
    dotted=frozenset(
        {
            "time.sleep",
            "os.system",
            "os.popen",
            "os.waitpid",
            "socket.create_connection",
            "select.select",
            "urllib.request.urlopen",
            "numpy.load",
            "numpy.save",
            "numpy.savez",
            "numpy.savez_compressed",
        }
    ),
    prefixes=("subprocess.", "shutil."),
    attrs=frozenset(
        {
            "recv",
            "recv_into",
            "accept",
            "sendall",
            "read_text",
            "write_text",
            "read_bytes",
            "write_bytes",
        }
    ),
)

#: Nondeterminism primitives (RPC102 seeds).
NONDETERMINISM = SeedPredicate(
    dotted=frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
            "os.urandom",
            "os.getenv",
            "os.getpid",
            "os.environ.get",
            "uuid.uuid1",
            "uuid.uuid4",
            "secrets.token_hex",
            "secrets.token_bytes",
            "numpy.random.default_rng",
            "numpy.random.seed",
        }
    ),
    prefixes=("random.", "numpy.random.rand", "numpy.random.choice"),
)


@CHECKS.register("RPC101")
class AsyncBlockingPropagation(Check):
    """Blocking primitives must not be reachable from service coroutines.

    The per-file rule RPL004 already keeps ``open()``/``time.sleep`` out
    of ``async def`` *bodies*; this check closes the loophole of hiding
    the blocking call one or more synchronous helpers down.  Functions
    handed to ``run_in_executor`` are passed by reference, never called,
    so the sanctioned executor hop is naturally invisible to the graph.
    """

    code = "RPC101"
    name = "async-blocking-propagation"
    rationale = (
        "a sync helper chain ending in blocking I/O stalls the single "
        "event loop for every connected session"
    )

    #: Statically blocking functions whose runtime path is sanctioned:
    #: handlers swap in BufferedEventLog (``defer_log_writes``) and the
    #: real append runs on the log executor, so taint must not cross.
    sanctioned_barriers = frozenset(
        {"repro.service.manager:EventLog.append"}
    )

    def run(self, graph: CallGraph) -> Iterator[Violation]:
        seeds = _seed_taints(graph, BLOCKING)
        facts = dataflow.taint_closure(
            graph, seeds, barriers=self.sanctioned_barriers
        )
        for qname, info in sorted(graph.functions.items()):
            if not info.is_async:
                continue
            if not info.path.startswith("src/repro/service/"):
                continue
            if qname not in facts or qname in seeds:
                # Direct calls in async bodies are RPL004's finding;
                # this check owns the interprocedural case.
                continue
            yield self.violation_at(
                graph,
                info,
                f"async def {info.name} may block the event loop: "
                f"{_chain(facts, qname)}",
            )


@CHECKS.register("RPC102")
class ContentKeyPurity(Check):
    """Content-key producers must be deterministic.

    ``content_key`` / ``canonical_json`` / spec ``to_dict`` outputs are
    cache keys and golden-dataset authenticators; any call path from
    them into wall clocks, unseeded RNGs, process state, or environment
    reads silently breaks replay.  ``repro.utils.rng`` is the sanctioned
    seed-derivation module and is exempt — determinism there is
    established by construction (``ensure_rng`` / ``derive_seed``).
    """

    code = "RPC102"
    name = "content-key-purity"
    rationale = (
        "a nondeterministic content key breaks cache identity and "
        "golden-dataset authentication on replay"
    )

    sanctioned_modules = frozenset({"repro.utils.rng"})

    def _is_producer(self, graph: CallGraph, info: FunctionInfo) -> bool:
        if info.name in {"content_key", "canonical_json"}:
            return True
        if info.name == "to_dict" and info.cls is not None:
            cls = graph.classes.get(info.cls)
            return cls is not None and "Spec" in cls.name
        return False

    def run(self, graph: CallGraph) -> Iterator[Violation]:
        seeds = _seed_taints(
            graph, NONDETERMINISM, sanctioned_modules=self.sanctioned_modules
        )
        facts = dataflow.taint_closure(graph, seeds)
        for qname, info in sorted(graph.functions.items()):
            if not self._is_producer(graph, info):
                continue
            if qname not in facts:
                continue
            yield self.violation_at(
                graph,
                info,
                f"content-key producer {info.name} can reach "
                f"nondeterminism: {_chain(facts, qname)}",
            )


def _export_resolves(
    graph: CallGraph, module: str, attr: str, depth: int = 0
) -> bool:
    """Whether ``module:attr`` resolves to an import-time binding."""
    if depth > 6:
        return False
    mod = graph.modules.get(module)
    if mod is None:
        return False
    if attr in mod.top_names:
        return True
    target = mod.imports.get(attr)
    if target is not None:
        if target in graph.modules:
            return True
        owner, _, leaf = target.rpartition(".")
        return _export_resolves(graph, owner, leaf, depth + 1)
    return False


@CHECKS.register("RPC103")
class RegistryClosure(Check):
    """Every lazy ``"module:attr"`` reference must statically resolve.

    The registries defer imports until first use, so a typo in
    ``repro.api.catalog`` (or a refactor that moves a builder) only
    explodes when a user asks for that exact plugin — possibly from
    ``/v1/meta`` in production.  This closes the registry over the
    actual module map: the module must exist under ``src/repro`` and
    the attribute must be bound at import time.  Literal
    ``REGISTRY.create("name")`` / ``REGISTRY.get("name")`` lookups are
    held to the statically registered name set as well.
    """

    code = "RPC103"
    name = "registry-closure"
    rationale = (
        "a dangling lazy factory turns a registry lookup into an "
        "ImportError at the first production use"
    )

    def run(self, graph: CallGraph) -> Iterator[Violation]:
        for ref in graph.lazy_refs:
            message = None
            if ref.module not in graph.modules:
                message = (
                    f"lazy reference {ref.text!r} points at module "
                    f"{ref.module!r} which does not exist"
                )
            elif not _export_resolves(graph, ref.module, ref.attr):
                message = (
                    f"lazy reference {ref.text!r}: module {ref.module!r} "
                    f"has no attribute {ref.attr!r}"
                )
            if message is None:
                continue
            if ref.plugin is not None and ref.registry is not None:
                message += (
                    f" (registered as {ref.plugin!r} in {ref.registry})"
                )
            line_text = ""
            for mod in graph.modules.values():
                if mod.path == ref.path and 1 <= ref.line <= len(
                    mod.source_lines
                ):
                    line_text = mod.source_lines[ref.line - 1].strip()
                    break
            yield Violation(
                rule=self.code,
                path=ref.path,
                line=ref.line,
                col=1,
                message=message,
                line_text=line_text,
                severity=self.severity,
            )
        yield from self._check_literal_lookups(graph)

    def _check_literal_lookups(
        self, graph: CallGraph
    ) -> Iterator[Violation]:
        registered: Dict[str, Set[str]] = {}
        for ref in graph.lazy_refs:
            if ref.registry is not None and ref.plugin is not None:
                registered.setdefault(ref.registry, set()).add(ref.plugin)
        if not registered:
            return
        for name, module in sorted(graph.modules.items()):
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in {"create", "get"}
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in registered
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    continue
                registry = node.func.value.id
                plugin = node.args[0].value
                if plugin in registered[registry]:
                    continue
                line_text = ""
                if 1 <= node.lineno <= len(module.source_lines):
                    line_text = module.source_lines[node.lineno - 1].strip()
                yield Violation(
                    rule=self.code,
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"{registry}.{node.func.attr}({plugin!r}) names an "
                        f"unregistered plugin; registered: "
                        f"{sorted(registered[registry])}"
                    ),
                    line_text=line_text,
                    severity=self.severity,
                )


@CHECKS.register("RPC104")
class ExceptionContract(Check):
    """Code reachable from ``/v1`` handlers only raises mapped types.

    The protocol error envelope maps ``HttpError`` (explicit status),
    ``ProtocolError`` → 400, ``UnknownSessionError`` → 404 and
    ``ClosedSessionError`` → 409; anything else escaping a handler is a
    generic 500 with no machine-readable error code — a client-visible
    contract break.  The may-raise sets are propagated along call edges
    with subclass-aware caught-at-callsite filtering, so a
    ``ValueError`` raised three frames down but wrapped at the call site
    in ``except (TypeError, ValueError)`` is correctly silent.
    """

    code = "RPC104"
    name = "exception-contract"
    rationale = (
        "an unmapped exception escaping a /v1 handler becomes an opaque "
        "500 instead of a protocol error envelope"
    )

    #: Exception types the protocol envelope maps to status codes.
    allowed = frozenset(
        {
            "HttpError",
            "ProtocolError",
            "UnknownSessionError",
            "ClosedSessionError",
            "CancelledError",
        }
    )

    def _is_handler(self, info: FunctionInfo) -> bool:
        return (
            info.is_async
            and info.path.startswith("src/repro/service/")
            and info.name.startswith("_handle_")
        )

    def run(self, graph: CallGraph) -> Iterator[Violation]:
        may_raise = dataflow.propagate_exceptions(graph)
        for qname, info in sorted(graph.functions.items()):
            if not self._is_handler(info):
                continue
            facts = may_raise.get(qname, set())
            reported: Set[str] = set()
            for fact in sorted(facts, key=lambda f: (f.exc, f.origin)):
                if fact.exc in self.allowed:
                    continue
                if graph.exception_ancestors(fact.exc) & self.allowed:
                    continue
                if fact.exc in reported:
                    continue
                reported.add(fact.exc)
                origin = (
                    "raised locally"
                    if fact.origin == qname
                    else f"raised in {fact.origin}"
                )
                yield self.violation_at(
                    graph,
                    info,
                    f"handler {info.name} may leak {fact.exc} "
                    f"({origin} at line {fact.line}) — not mapped by the "
                    f"protocol error envelope",
                )


def run_checks(
    graph: CallGraph, checks: Sequence[Check]
) -> List[Violation]:
    """Run ``checks`` over ``graph``; violations sorted like the linter."""
    violations: List[Violation] = []
    for check in checks:
        violations.extend(check.run(graph))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


__all__ = [
    "BLOCKING",
    "CHECKS",
    "Check",
    "NONDETERMINISM",
    "SeedPredicate",
    "AsyncBlockingPropagation",
    "ContentKeyPurity",
    "ExceptionContract",
    "RegistryClosure",
    "run_checks",
]
