"""Whole-program static analysis for the reproduction (``repro check``).

The call-graph builder lives in :mod:`repro.devtools.analysis.graph`
(modules, functions, resolved call edges, lazy registry references), the
fixed-point engines in :mod:`repro.devtools.analysis.dataflow` (taint
closure with witness chains, may-raise propagation), and the built-in
interprocedural checks RPC101–RPC104 in
:mod:`repro.devtools.analysis.checks` — plugins in the :data:`CHECKS`
registry, reporting through the same findings/baseline/format machinery
as ``repro lint``.

Importing this package registers the built-in checks.
"""

from repro.devtools.analysis.checks import CHECKS, Check, run_checks
from repro.devtools.analysis.cli import main
from repro.devtools.analysis.graph import CallGraph, build_graph

__all__ = [
    "CHECKS",
    "CallGraph",
    "Check",
    "build_graph",
    "main",
    "run_checks",
]
