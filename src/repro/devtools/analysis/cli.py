"""Argument handling shared by ``repro check`` and ``python -m
repro.devtools.analysis``.

Exit codes follow the repo-wide gate convention
(:mod:`repro.devtools.gate`): 0 = clean (possibly via baselined
exceptions), 1 = new violations and/or stale baseline entries, 2 = usage
error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.devtools.analysis.checks import CHECKS, run_checks
from repro.devtools.analysis.graph import build_graph
from repro.devtools.gate import (
    EXIT_USAGE,
    add_gate_arguments,
    finish_gate,
    list_plugins,
    select_plugins,
)

#: Default baseline location, relative to the repo root.
DEFAULT_BASELINE = "check_baseline.jsonl"


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the check options to ``parser`` (shared with ``repro check``)."""
    add_gate_arguments(
        parser, default_baseline=DEFAULT_BASELINE, plugin_noun="check"
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="print the check table and exit",
    )
    parser.add_argument(
        "--graph-dump",
        default=None,
        metavar="PATH",
        help=(
            "also write the resolved call graph (modules, edges, lazy "
            "refs, external calls) as a JSON artifact"
        ),
    )


def run_check(args: argparse.Namespace) -> int:
    """Execute a parsed check invocation; returns the exit code."""
    if args.list_checks:
        return list_plugins(CHECKS)
    checks = select_plugins(CHECKS, args.select, plugin_noun="check")
    if checks is None:
        return EXIT_USAGE

    root = Path(args.root).resolve()
    package_dir = root / "src" / "repro"
    if not package_dir.is_dir():
        print(
            f"no package tree at {package_dir}; --root must point at a "
            "repo root containing src/repro",
            file=sys.stderr,
        )
        return EXIT_USAGE

    graph = build_graph(root)
    if args.graph_dump:
        dump_path = Path(args.graph_dump)
        dump_path.parent.mkdir(parents=True, exist_ok=True)
        dump_path.write_text(
            json.dumps(graph.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"call graph written to {dump_path}", file=sys.stderr)

    violations = run_checks(graph, checks)
    return finish_gate(
        args, violations, checks, default_baseline=DEFAULT_BASELINE
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Whole-program call-graph & dataflow analysis: verifies the "
            "repo's interprocedural invariants (checks RPC101-RPC104)"
        ),
    )
    add_check_arguments(parser)
    return run_check(parser.parse_args(argv))


__all__ = ["DEFAULT_BASELINE", "add_check_arguments", "main", "run_check"]
