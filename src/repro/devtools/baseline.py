"""The ratcheting JSONL baseline for deliberate static-analysis exceptions.

Shared by every gate that reports :class:`~repro.devtools.findings.Violation`
objects — ``repro lint`` ratchets ``lint_baseline.jsonl`` and
``repro check`` ratchets ``check_baseline.jsonl`` through exactly this
module.  A baseline entry is one strict-JSON line naming a violation
fingerprint plus a **mandatory human reason**::

    {"rule": "RPL002", "path": "src/repro/x.py",
     "line_text": "digest = hashlib.sha1(raw)", "reason": "interop: …"}

Semantics are a one-way ratchet:

* a violation whose fingerprint matches an entry is *suppressed* (the
  exception was deliberate, the reason says why);
* a violation with no entry **fails** the run (new debt is refused);
* an entry matching no violation is **stale** and fails the run too —
  the underlying code was fixed, so the exception must be deleted, and
  the baseline can only shrink.

Fingerprints use the stripped source line rather than the line number,
so unrelated edits above an exception don't invalidate it.  The file
format is the repo's usual torn-tail-tolerant JSONL (sorted, rewritten
atomically by ``--update-baseline``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from repro.devtools.findings import Violation

#: Reason recorded by ``--update-baseline`` until a human edits it.
PLACEHOLDER_REASON = "TODO: justify this exception"


@dataclass(frozen=True)
class BaselineEntry:
    """One deliberate, reason-annotated static-analysis exception."""

    rule: str
    path: str
    line_text: str
    reason: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.line_text)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line_text": self.line_text,
            "reason": self.reason,
        }


@dataclass
class BaselineResult:
    """Outcome of matching violations against a baseline."""

    new: List[Violation]
    suppressed: List[Violation]
    stale: List[BaselineEntry]


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse a baseline file (missing file = empty baseline)."""
    entries: List[BaselineEntry] = []
    if not path.exists():
        return entries
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail: same tolerance as every JSONL store here
        if not isinstance(record, dict):
            continue
        entries.append(
            BaselineEntry(
                rule=str(record.get("rule", "")),
                path=str(record.get("path", "")),
                line_text=str(record.get("line_text", "")),
                reason=str(record.get("reason", "")) or PLACEHOLDER_REASON,
            )
        )
    return entries


def save_baseline(path: Path, entries: Sequence[BaselineEntry]) -> None:
    """Atomically rewrite the baseline, sorted for stable diffs."""
    ordered = sorted(
        entries, key=lambda e: (e.path, e.rule, e.line_text)
    )
    payload = "".join(
        json.dumps(entry.to_dict(), sort_keys=True) + "\n"
        for entry in ordered
    )
    temporary = path.with_suffix(path.suffix + ".tmp")
    temporary.write_text(payload, encoding="utf-8")
    temporary.replace(path)


def entries_from_violations(
    violations: Sequence[Violation],
    previous: Sequence[BaselineEntry] = (),
) -> List[BaselineEntry]:
    """Baseline entries covering ``violations``, keeping existing reasons."""
    reasons = {entry.fingerprint: entry.reason for entry in previous}
    entries: Dict[Tuple[str, str, str], BaselineEntry] = {}
    for violation in violations:
        fingerprint = violation.fingerprint
        entries[fingerprint] = BaselineEntry(
            rule=violation.rule,
            path=violation.path,
            line_text=violation.line_text,
            reason=reasons.get(fingerprint, PLACEHOLDER_REASON),
        )
    return list(entries.values())


def apply_baseline(
    violations: Sequence[Violation], entries: Sequence[BaselineEntry]
) -> BaselineResult:
    """Split violations into new/suppressed and find stale entries.

    One entry suppresses every occurrence sharing its fingerprint (a
    repeated identical line in one file is one deliberate exception, not
    several).
    """
    known = {entry.fingerprint for entry in entries}
    new: List[Violation] = []
    suppressed: List[Violation] = []
    seen: set = set()
    for violation in violations:
        if violation.fingerprint in known:
            suppressed.append(violation)
            seen.add(violation.fingerprint)
        else:
            new.append(violation)
    stale = [entry for entry in entries if entry.fingerprint not in seen]
    return BaselineResult(new=new, suppressed=suppressed, stale=stale)


__all__ = [
    "BaselineEntry",
    "BaselineResult",
    "PLACEHOLDER_REASON",
    "apply_baseline",
    "entries_from_violations",
    "load_baseline",
    "save_baseline",
]
