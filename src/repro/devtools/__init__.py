"""Developer tooling that machine-checks the repo's own invariants.

Two gates live here, both wired into CI next to the benchmark gates:

* :mod:`repro.devtools.lint` — the domain-aware static analysis suite
  (``repro lint``): AST rules RPL001–RPL008 encoding the correctness
  conventions the code base relies on (derived seeding, canonical content
  keys, frozen specs, non-blocking service handlers, dtype contracts,
  torn-tail-safe JSONL appends, …) with a ratcheted JSONL baseline.
* :mod:`repro.devtools.typecheck` — the mypy strict-typed-core gate over
  ``repro.api`` / ``repro.tpo`` / ``repro.service`` / ``repro.utils``
  with a ratcheted error-count baseline.

Neither module is imported by the runtime system; they are tooling only.
"""
