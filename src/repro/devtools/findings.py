"""The shared finding model of the repo's static-analysis gates.

Both analysis front ends — the per-file lint rules of
:mod:`repro.devtools.lint` (RPL001–RPL010) and the whole-program
call-graph checks of :mod:`repro.devtools.analysis` (RPC101–RPC104) —
report :class:`Violation` objects.  One shape means one baseline format,
one set of renderers (:mod:`repro.devtools.formats`), and one ratchet
semantics (:mod:`repro.devtools.baseline`) for every gate.

Violations carry a *fingerprint* — ``(rule, path, stripped source
line)`` — deliberately excluding the line number, so a committed baseline
entry keeps suppressing its violation when unrelated edits shift the
file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Violation:
    """One rule/check finding at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    line_text: str = ""
    severity: str = "error"

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across unrelated line-number drift."""
        return (self.rule, self.path, self.line_text)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
            "severity": self.severity,
        }


__all__ = ["SEVERITIES", "Violation"]
