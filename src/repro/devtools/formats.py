"""Report renderers shared by ``repro lint`` and ``repro check``.

* ``text`` — ``path:line:col: CODE message`` per finding, then a summary
  line; the local developer loop.
* ``json`` — one machine-readable document (schema below, versioned and
  covered by a schema self-test) for tooling.
* ``github`` — ``::error``/``::warning`` workflow commands, so the CI
  lint job annotates the offending lines directly on pull requests.

``rules`` may be lint :class:`~repro.devtools.lint.core.Rule` plugins or
analysis :class:`~repro.devtools.analysis.checks.Check` plugins — anything
satisfying :class:`RuleInfo` (``code``/``name``/``rationale``/``severity``).

JSON schema (``"format_version": 1``)::

    {"format_version": 1,
     "rules": [{"code", "name", "rationale", "severity"}…],
     "violations": [{"rule", "path", "line", "col", "message",
                     "line_text", "severity"}…],
     "suppressed": [same shape…],
     "stale_baseline": [{"rule", "path", "line_text", "reason"}…],
     "counts": {"violations", "suppressed", "stale_baseline"},
     "ok": bool}
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Protocol, Sequence

from repro.devtools.baseline import BaselineEntry
from repro.devtools.findings import Violation

FORMATS = ("text", "json", "github")
JSON_FORMAT_VERSION = 1


class RuleInfo(Protocol):
    """What the renderers need to know about a rule/check plugin."""

    code: str
    name: str
    rationale: str
    severity: str


def render_text(
    new: Sequence[Violation],
    suppressed: Sequence[Violation],
    stale: Sequence[BaselineEntry],
) -> str:
    lines: List[str] = []
    for violation in new:
        lines.append(
            f"{violation.path}:{violation.line}:{violation.col}: "
            f"{violation.rule} {violation.message}"
        )
    for entry in stale:
        lines.append(
            f"{entry.path}: stale baseline entry for {entry.rule} "
            f"({entry.line_text!r}): the violation is gone — delete the "
            f"entry (reason was: {entry.reason})"
        )
    ok = not new and not stale
    summary = (
        f"{len(new)} violation(s), {len(suppressed)} baselined, "
        f"{len(stale)} stale baseline entr(ies)"
    )
    lines.append(("ok: " if ok else "FAILED: ") + summary)
    return "\n".join(lines)


def render_json(
    new: Sequence[Violation],
    suppressed: Sequence[Violation],
    stale: Sequence[BaselineEntry],
    rules: Sequence[RuleInfo],
) -> str:
    document: Dict[str, Any] = {
        "format_version": JSON_FORMAT_VERSION,
        "rules": [
            {
                "code": rule.code,
                "name": rule.name,
                "rationale": rule.rationale,
                "severity": rule.severity,
            }
            for rule in rules
        ],
        "violations": [violation.to_dict() for violation in new],
        "suppressed": [violation.to_dict() for violation in suppressed],
        "stale_baseline": [entry.to_dict() for entry in stale],
        "counts": {
            "violations": len(new),
            "suppressed": len(suppressed),
            "stale_baseline": len(stale),
        },
        "ok": not new and not stale,
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _escape_property(value: str) -> str:
    """GitHub workflow-command property escaping."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _escape_data(value: str) -> str:
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(
    new: Sequence[Violation],
    suppressed: Sequence[Violation],
    stale: Sequence[BaselineEntry],
) -> str:
    lines: List[str] = []
    for violation in new:
        command = "error" if violation.severity == "error" else "warning"
        lines.append(
            f"::{command} file={_escape_property(violation.path)}"
            f",line={violation.line},col={violation.col}"
            f",title={_escape_property(violation.rule)}"
            f"::{_escape_data(violation.message)}"
        )
    for entry in stale:
        lines.append(
            f"::error file={_escape_property(entry.path)}"
            f",title={_escape_property(entry.rule + ' baseline')}"
            f"::{_escape_data('stale baseline entry (' + entry.line_text + '); delete it')}"
        )
    lines.append(
        f"{len(new)} violation(s), {len(suppressed)} baselined, "
        f"{len(stale)} stale"
    )
    return "\n".join(lines)


def render(
    fmt: str,
    new: Sequence[Violation],
    suppressed: Sequence[Violation],
    stale: Sequence[BaselineEntry],
    rules: Sequence[RuleInfo],
) -> str:
    if fmt == "json":
        return render_json(new, suppressed, stale, rules)
    if fmt == "github":
        return render_github(new, suppressed, stale)
    return render_text(new, suppressed, stale)


__all__ = [
    "FORMATS",
    "JSON_FORMAT_VERSION",
    "RuleInfo",
    "render",
    "render_github",
    "render_json",
    "render_text",
]
