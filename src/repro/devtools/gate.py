"""Shared CLI plumbing for the static-analysis gates.

``repro lint`` (per-file AST rules) and ``repro check`` (whole-program
call-graph checks) present the same contract: a plugin registry of
rules/checks, a ``--select`` filter, a ``--format`` choice, a ratcheting
reason-annotated baseline, and the common exit-code convention —

* ``0`` — clean (possibly via baselined exceptions),
* ``1`` — new violations and/or stale baseline entries (gate failure),
* ``2`` — usage errors (unknown codes, bad flag combinations).

This module owns that shared surface so the two front ends cannot
drift: each contributes only its plugin registry, its default baseline
file name, and the function that actually produces violations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.devtools import baseline as baseline_mod
from repro.devtools.findings import Violation
from repro.devtools.formats import FORMATS, RuleInfo, render
from repro.api.registry import Registry

#: The shared exit-code convention (pinned by CLI tests).
EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_gate_arguments(
    parser: argparse.ArgumentParser,
    *,
    default_baseline: str,
    plugin_noun: str = "rule",
) -> None:
    """Attach the options every static-analysis gate shares."""
    parser.add_argument(
        "--root",
        default=".",
        help=(
            "repo root used to relativize paths; fixture trees analyze "
            "under their own root"
        ),
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=FORMATS,
        help="report format (github emits PR annotations)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "ratcheting JSONL baseline of deliberate, reason-annotated "
            f"exceptions (default: <root>/{default_baseline} when present)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to cover the current violations "
            "(existing reasons are kept; new entries get a TODO reason "
            "you must edit)"
        ),
    )
    parser.add_argument(
        "--no-stale-check",
        action="store_true",
        help="do not fail on baseline entries whose violation is gone",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help=f"comma-separated {plugin_noun} codes to run (default: all)",
    )


def select_plugins(
    registry: Registry, select: Optional[str], plugin_noun: str = "rule"
) -> Optional[List[RuleInfo]]:
    """Instantiate the selected plugins, or ``None`` on unknown codes.

    The unknown-code message goes to stderr; callers translate ``None``
    into the usage exit code (2).
    """
    available = registry.available()
    if not select:
        return [registry.create(code) for code in available]
    wanted = [code.strip() for code in select.split(",") if code.strip()]
    unknown = [code for code in wanted if code not in available]
    if unknown:
        print(
            f"unknown {plugin_noun} code(s) {unknown}; "
            f"available: {available}",
            file=sys.stderr,
        )
        return None
    return [registry.create(code) for code in wanted]


def list_plugins(registry: Registry) -> int:
    """Print the ``--list-rules`` / ``--list-checks`` table; returns 0."""
    for code in registry.available():
        plugin = registry.create(code)
        print(f"{plugin.code}  {plugin.name}: {plugin.rationale}")
    return EXIT_OK


def finish_gate(
    args: argparse.Namespace,
    violations: Sequence[Violation],
    plugins: Sequence[RuleInfo],
    *,
    default_baseline: str,
) -> int:
    """The shared back half of a gate run: baseline, render, exit code.

    ``violations`` must already be sorted; the baseline file resolves to
    ``--baseline`` or ``<root>/<default_baseline>``.
    """
    root = Path(args.root).resolve()
    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else root / default_baseline
    )
    entries = baseline_mod.load_baseline(baseline_path)

    if args.update_baseline:
        updated = baseline_mod.entries_from_violations(violations, entries)
        baseline_mod.save_baseline(baseline_path, updated)
        placeholders = sum(
            1
            for entry in updated
            if entry.reason == baseline_mod.PLACEHOLDER_REASON
        )
        print(
            f"baseline rewritten: {len(updated)} entr(ies) at "
            f"{baseline_path}"
            + (
                f"; edit the {placeholders} TODO reason(s) before committing"
                if placeholders
                else ""
            )
        )
        return EXIT_OK

    result = baseline_mod.apply_baseline(violations, entries)
    stale = [] if args.no_stale_check else result.stale
    print(render(args.fmt, result.new, result.suppressed, stale, plugins))
    return EXIT_FINDINGS if (result.new or stale) else EXIT_OK


__all__ = [
    "EXIT_FINDINGS",
    "EXIT_OK",
    "EXIT_USAGE",
    "add_gate_arguments",
    "finish_gate",
    "list_plugins",
    "select_plugins",
]
