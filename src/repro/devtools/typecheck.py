"""Ratcheted mypy gate for the typed core (``python -m repro.devtools.typecheck``).

The typed core — :mod:`repro.api`, :mod:`repro.tpo`, :mod:`repro.service`,
:mod:`repro.utils` — is held to ``disallow_untyped_defs`` via the
repo-root ``mypy.ini``; everything else is type-checked opportunistically.
Because the error count cannot jump in a PR but may shrink, the gate is a
*ratchet*: ``typecheck-baseline.json`` records ``max_errors``, the run
fails when mypy reports more, and prints a reminder to lower the ceiling
when it reports fewer.

mypy is a dev-only dependency (``requirements-dev.txt``).  When it is not
importable — minimal local environments — the gate prints a notice and
exits 0 rather than failing setups that never asked for it; CI installs
mypy, so the ceiling is always enforced where it matters.

``--strict-report PATH`` instead runs mypy ``--strict`` over all of
``src/repro`` and writes the full output to ``PATH`` (exit 0 always):
the nightly workflow publishes that as an artifact, so the distance to
full strictness stays visible without gating merges on it.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import re
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

DEFAULT_BASELINE = "typecheck-baseline.json"
#: The packages held to the typed-core bar (mypy.ini mirrors this list).
TYPED_CORE = (
    "src/repro/api",
    "src/repro/tpo",
    "src/repro/service",
    "src/repro/utils",
    "src/repro/devtools",
    "src/repro/evals",
)

_SUMMARY = re.compile(r"Found (\d+) errors? in \d+ files?")


def mypy_available() -> bool:
    """Whether mypy can be invoked as ``python -m mypy``."""
    try:
        return importlib.util.find_spec("mypy") is not None
    except (ImportError, ValueError):
        return False


def parse_error_count(output: str) -> int:
    """The error count from mypy's summary line (0 when clean).

    Counts ``error:`` lines as a fallback so a crash that still printed
    diagnostics is not mistaken for a clean run.
    """
    match = _SUMMARY.search(output)
    if match:
        return int(match.group(1))
    return sum(
        1 for line in output.splitlines() if " error: " in f" {line} "
    )


def load_max_errors(path: Path) -> int:
    """The ratchet ceiling from ``typecheck-baseline.json``."""
    payload = json.loads(path.read_text())
    ceiling = payload["max_errors"]
    if not isinstance(ceiling, int) or ceiling < 0:
        raise ValueError(f"max_errors must be a non-negative int: {ceiling!r}")
    return ceiling


def run_mypy(
    targets: Sequence[str], root: Path, strict: bool = False
) -> Tuple[int, str]:
    """Run mypy over ``targets``; returns ``(exit_code, merged output)``."""
    command: List[str] = [sys.executable, "-m", "mypy"]
    if strict:
        command += ["--strict", "--no-error-summary"]
    else:
        command += ["--config-file", str(root / "mypy.ini")]
    command += list(targets)
    completed = subprocess.run(
        command,
        cwd=root,
        capture_output=True,
        text=True,
        check=False,
    )
    return completed.returncode, completed.stdout + completed.stderr


def gate(root: Path, baseline_path: Path) -> int:
    """Enforce the ratchet; returns the process exit code."""
    ceiling = load_max_errors(baseline_path)
    code, output = run_mypy(TYPED_CORE, root)
    errors = parse_error_count(output)
    if code not in (0, 1):  # 2 = mypy crashed / bad config — never "clean"
        sys.stdout.write(output)
        print(f"typecheck: mypy exited {code} (not a type-error exit)")
        return 2
    if errors > ceiling:
        sys.stdout.write(output)
        print(
            f"typecheck: FAILED — {errors} error(s) > ratchet ceiling "
            f"{ceiling} (see {baseline_path.name})"
        )
        return 1
    print(f"typecheck: ok — {errors} error(s) <= ceiling {ceiling}")
    if errors < ceiling:
        print(
            f"typecheck: ratchet can tighten — lower max_errors to "
            f"{errors} in {baseline_path.name}"
        )
    return 0


def strict_report(root: Path, report_path: Path) -> int:
    """Write the full ``mypy --strict`` output for ``src/repro``; exit 0."""
    code, output = run_mypy(["src/repro"], root, strict=True)
    errors = parse_error_count(output)
    report_path.parent.mkdir(parents=True, exist_ok=True)
    report_path.write_text(
        f"# mypy --strict report (exit {code}, {errors} errors)\n{output}"
    )
    print(
        f"typecheck: strict report -> {report_path} "
        f"({errors} error(s); informational only)"
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.devtools.typecheck",
        description="ratcheted mypy gate over the typed core",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root (default: current directory)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"ratchet file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--strict-report",
        metavar="PATH",
        default=None,
        help="write a full --strict report to PATH instead of gating",
    )
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()
    if not mypy_available():
        print(
            "typecheck: mypy is not installed — skipping "
            "(pip install -r requirements-dev.txt to enable the gate)"
        )
        return 0
    if args.strict_report is not None:
        return strict_report(root, Path(args.strict_report))
    return gate(root, root / args.baseline)


if __name__ == "__main__":
    sys.exit(main())
