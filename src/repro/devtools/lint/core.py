"""The checker framework behind ``repro lint``.

One shared AST walk per file drives every registered rule: the
:class:`Checker` parses a file once, maintains the cross-cutting context
rules keep needing (enclosing-function stack, numpy import aliases,
function-local spec bindings), and hands every node to each
:class:`Rule` whose :meth:`Rule.applies_to` accepts the file's
repo-relative path.  Rules are plugin classes registered in
:data:`LINT_RULES` — a :class:`repro.api.registry.Registry`, the same
mechanism every other pluggable axis of the system uses — so downstream
invariants can ship their own rule without touching this package.

Violations carry a *fingerprint* — ``(rule, path, stripped source
line)`` — deliberately excluding the line number, so a committed baseline
entry keeps suppressing its violation when unrelated edits shift the file
(see :mod:`repro.devtools.lint.baseline`).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.api.registry import Registry
from repro.devtools.findings import SEVERITIES, Violation

#: Registered rule plugins (name = rule code, factory = rule class).
LINT_RULES = Registry("lint rule")


def is_first_party(path: str) -> bool:
    """True for the production package files (``src/repro/**/*.py``)."""
    return path.startswith("src/repro/") and path.endswith(".py")


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class FileContext:
    """Everything rules may need about the file being checked."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source_lines = source.splitlines()
        self.tree = tree
        #: Local names bound to the numpy module (``import numpy as np``).
        self.numpy_aliases = {"numpy"}
        #: Enclosing function stack (innermost last).
        self.function_stack: List[ast.AST] = []
        #: Per-function sets of names bound to frozen-spec constructor
        #: calls (maintained by the walker for RPL003).
        self.spec_bindings: List[set] = [set()]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.numpy_aliases.add(alias.asname or "numpy")

    # -- helpers rules lean on -----------------------------------------

    def resolve_numpy(self, dotted: Optional[str]) -> Optional[str]:
        """Normalize ``np.random.seed`` → ``numpy.random.seed``."""
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.numpy_aliases:
            return "numpy." + rest if rest else "numpy"
        return dotted

    @property
    def enclosing_function(self) -> Optional[ast.AST]:
        return self.function_stack[-1] if self.function_stack else None

    @property
    def in_async_body(self) -> bool:
        """True when the nearest enclosing function is ``async def``.

        Nested synchronous ``def``s inside a coroutine are excluded: they
        only block if called, and the sanctioned way to call them is via
        an executor hop.
        """
        return isinstance(self.enclosing_function, ast.AsyncFunctionDef)

    def line_text(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class for lint rule plugins.

    Subclasses set :attr:`code` / :attr:`name` / :attr:`rationale`,
    optionally narrow :meth:`applies_to`, and yield
    :class:`Violation` objects from :meth:`visit_node` — called once per
    AST node of every applicable file by the shared walker.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    severity: str = "error"

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` (repo-relative posix)."""
        return is_first_party(path)

    def start_file(self, ctx: FileContext) -> Iterator[Violation]:
        """Hook run once per file before the node walk."""
        return iter(())

    def visit_node(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        return iter(())

    def violation(
        self, node: ast.AST, ctx: FileContext, message: str
    ) -> Violation:
        return Violation(
            rule=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            line_text=ctx.line_text(node),
            severity=self.severity,
        )


#: Frozen spec constructors whose instances must never be mutated
#: (see RPL003 and :mod:`repro.api.specs`).
SPEC_CONSTRUCTORS = frozenset(
    {
        "InstanceSpec",
        "PolicySpec",
        "MeasureSpec",
        "CrowdSpec",
        "BudgetSpec",
        "SessionSpec",
        "as_instance_spec",
    }
)


class _Walker:
    """The shared AST walk: one pass, every rule, context maintained."""

    def __init__(self, ctx: FileContext, rules: Sequence[Rule]) -> None:
        self.ctx = ctx
        self.rules = rules
        self.violations: List[Violation] = []

    def run(self) -> List[Violation]:
        for rule in self.rules:
            self.violations.extend(rule.start_file(self.ctx))
        self._walk(self.ctx.tree)
        return self.violations

    def _walk(self, node: ast.AST) -> None:
        for rule in self.rules:
            self.violations.extend(rule.visit_node(node, self.ctx))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.ctx.function_stack.append(node)
            self.ctx.spec_bindings.append(set())
            for child in ast.iter_child_nodes(node):
                self._walk(child)
            self.ctx.spec_bindings.pop()
            self.ctx.function_stack.pop()
            return
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = dotted_name(node.value.func)
            terminal = callee.rsplit(".", 1)[-1] if callee else ""
            if terminal in SPEC_CONSTRUCTORS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.ctx.spec_bindings[-1].add(target.id)
        for child in ast.iter_child_nodes(node):
            self._walk(child)


class Checker:
    """Runs a set of rules over sources, files, or a directory tree."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            rules = [LINT_RULES.create(code) for code in LINT_RULES.available()]
        self.rules = list(rules)

    def check_source(self, source: str, path: str) -> List[Violation]:
        """Lint one in-memory source under a repo-relative posix ``path``.

        The path decides which rules apply (and how path-scoped rules
        treat the file) — fixture trees exercise path-sensitive rules by
        mirroring the real layout under a temporary root.
        """
        applicable = [rule for rule in self.rules if rule.applies_to(path)]
        if not applicable:
            return []
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [
                Violation(
                    rule="RPL000",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"file does not parse: {exc.msg}",
                    line_text="",
                )
            ]
        ctx = FileContext(path, source, tree)
        return _Walker(ctx, applicable).run()

    def check_file(self, file_path: Path, rel_path: str) -> List[Violation]:
        return self.check_source(
            file_path.read_text(encoding="utf-8"), rel_path
        )

    def check_paths(
        self, root: Path, paths: Iterable[Path]
    ) -> List[Violation]:
        """Lint ``paths`` (files or directories) relative to ``root``.

        Violations come back sorted by (path, line, rule) so output — and
        therefore baseline diffs — are deterministic.
        """
        violations: List[Violation] = []
        for path in paths:
            target = path if path.is_absolute() else root / path
            files = (
                sorted(target.rglob("*.py"))
                if target.is_dir()
                else [target]
            )
            for file_path in files:
                try:
                    rel = file_path.relative_to(root).as_posix()
                except ValueError:
                    rel = file_path.as_posix()
                violations.extend(self.check_file(file_path, rel))
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return violations


__all__ = [
    "LINT_RULES",
    "SEVERITIES",
    "Checker",
    "FileContext",
    "Rule",
    "Violation",
    "SPEC_CONSTRUCTORS",
    "dotted_name",
    "is_first_party",
]
