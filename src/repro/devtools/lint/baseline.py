"""Compatibility alias — the baseline machinery moved to
:mod:`repro.devtools.baseline` so the lint rules and the whole-program
``repro check`` analyzer ratchet through one implementation.

This module re-exports the shared names so historical imports
(``from repro.devtools.lint.baseline import …``) keep working.
"""

from repro.devtools.baseline import (
    PLACEHOLDER_REASON,
    BaselineEntry,
    BaselineResult,
    apply_baseline,
    entries_from_violations,
    load_baseline,
    save_baseline,
)

__all__ = [
    "BaselineEntry",
    "BaselineResult",
    "PLACEHOLDER_REASON",
    "apply_baseline",
    "entries_from_violations",
    "load_baseline",
    "save_baseline",
]
