"""Domain-aware static analysis for the reproduction (``repro lint``).

The framework lives in :mod:`repro.devtools.lint.core` (shared AST walk,
:class:`Checker`, :class:`Rule`, the :data:`LINT_RULES` registry), the
built-in rules RPL001–RPL008 in :mod:`repro.devtools.lint.rules`, the
ratcheting exception file in :mod:`repro.devtools.lint.baseline`, and the
text/json/github renderers in :mod:`repro.devtools.lint.formats`.

Importing this package registers the built-in rules.
"""

from repro.devtools.lint import rules as _rules  # noqa: F401  (registers rules)
from repro.devtools.lint.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.devtools.lint.cli import main
from repro.devtools.lint.core import LINT_RULES, Checker, Rule, Violation

__all__ = [
    "BaselineEntry",
    "Checker",
    "LINT_RULES",
    "Rule",
    "Violation",
    "apply_baseline",
    "load_baseline",
    "main",
    "save_baseline",
]
