"""The built-in domain rules, RPL001–RPL010.

Each rule encodes one correctness *convention* the code base relies on —
things a generic linter cannot know, and that used to live only in review
comments and docstrings.  The docstring of every rule class states the
invariant and why breaking it is a real bug here, not a style nit; the
README's "Static analysis" table is generated from these.

Rules are path-aware: ``applies_to`` receives the repo-relative posix
path, so e.g. the async-blocking rule only runs on ``src/repro/service/``
and the dtype rule only on the flat-table hot paths.  Fixture self-tests
exercise this by laying files out under a fake root with the mirrored
layout (see ``tests/devtools/``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import (
    LINT_RULES,
    FileContext,
    Rule,
    Violation,
    dotted_name,
    is_first_party,
)

#: numpy.random attributes that are fine anywhere: types, and the
#: explicitly-seeded constructor path.
_NUMPY_RANDOM_OK = frozenset(
    {"Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox"}
)


@LINT_RULES.register("RPL001")
class SeededRngRule(Rule):
    """RNG must be an explicitly passed, derived ``np.random.Generator``.

    Process-stable reproducibility (parallel == serial, resume ==
    uninterrupted) rests on every random stream being derived through
    ``repro.utils.rng.derive_seed``.  The stdlib ``random`` module,
    ``np.random.seed`` (hidden global state), the legacy ``np.random.*``
    sampling functions, and a default-seeded ``np.random.default_rng()``
    (fresh OS entropy per call) all silently break that contract.
    """

    code = "RPL001"
    name = "derived-generator-rng"
    rationale = (
        "global or default-seeded RNG breaks process-stable seeding via "
        "utils.rng.derive_seed"
    )

    def visit_node(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self.violation(
                        node,
                        ctx,
                        "stdlib `random` is banned in src/: pass a "
                        "np.random.Generator derived via derive_seed",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield self.violation(
                    node,
                    ctx,
                    "stdlib `random` is banned in src/: pass a "
                    "np.random.Generator derived via derive_seed",
                )
        elif isinstance(node, ast.Call):
            resolved = ctx.resolve_numpy(dotted_name(node.func))
            if not resolved or not resolved.startswith("numpy.random."):
                return
            attr = resolved[len("numpy.random."):]
            if attr == "seed":
                yield self.violation(
                    node,
                    ctx,
                    "np.random.seed mutates hidden global state; derive a "
                    "Generator via derive_seed instead",
                )
            elif attr == "default_rng":
                if not node.args and not node.keywords:
                    yield self.violation(
                        node,
                        ctx,
                        "default-seeded np.random.default_rng() draws fresh "
                        "OS entropy; seed it from derive_seed",
                    )
            elif "." not in attr and attr not in _NUMPY_RANDOM_OK:
                yield self.violation(
                    node,
                    ctx,
                    f"legacy np.random.{attr}() uses the global stream; "
                    "use an explicitly passed Generator",
                )


@LINT_RULES.register("RPL002")
class ContentKeyRule(Rule):
    """All digests flow through ``repro.api.canonical.content_key``.

    Cache keys, grid-cell ids, and TPO instance keys must be identical
    across processes, machines, and releases; builtin ``hash()`` is
    per-process salted, and an ad-hoc ``hashlib`` recipe forks the key
    space the moment its serialization drifts from the canonical one.
    The only sanctioned digest sites are ``api/canonical.py`` (the recipe)
    and ``utils/rng.py`` (``derive_seed``'s label hashing).
    """

    code = "RPL002"
    name = "canonical-content-keys"
    rationale = (
        "builtin hash() is salted per process; ad-hoc digests fork the "
        "content-key space owned by api.canonical"
    )

    ALLOWED = frozenset(
        {"src/repro/api/canonical.py", "src/repro/utils/rng.py"}
    )

    def visit_node(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "hash"
                and len(node.args) == 1
            ):
                yield self.violation(
                    node,
                    ctx,
                    "builtin hash() is process-salted and must never feed "
                    "keys; use api.canonical.content_key",
                )
        if ctx.path in self.ALLOWED:
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "hashlib":
                    yield self.violation(
                        node,
                        ctx,
                        "ad-hoc hashlib digests are banned outside "
                        "api/canonical.py; use content_key",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "hashlib" and node.level == 0:
                yield self.violation(
                    node,
                    ctx,
                    "ad-hoc hashlib digests are banned outside "
                    "api/canonical.py; use content_key",
                )


@LINT_RULES.register("RPL003")
class FrozenSpecRule(Rule):
    """Frozen spec instances are immutable outside their own module.

    ``repro.api`` specs hash to content keys at construction; mutating an
    instance afterwards desynchronizes the object from every cache entry,
    log line, and session key already derived from it.  Both the
    back-door (``object.__setattr__``) and plain attribute assignment on
    a name bound to a spec constructor are flagged.
    ``object.__setattr__(self, …)`` is exempt: a frozen class
    canonicalizing *itself* during ``__post_init__`` is the defining
    module's prerogative (e.g. :class:`repro.questions.model.Question`).
    """

    code = "RPL003"
    name = "frozen-spec-immutability"
    rationale = (
        "specs are hashed at construction; later mutation desyncs content "
        "keys, caches, and event-log replay"
    )

    DEFINING_MODULE = "src/repro/api/specs.py"

    def visit_node(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if ctx.path == self.DEFINING_MODULE:
            return
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            mutates_self = bool(
                node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
            )
            if (
                callee
                and callee.endswith("object.__setattr__")
                and not mutates_self
            ):
                yield self.violation(
                    node,
                    ctx,
                    "object.__setattr__ on frozen instances is reserved "
                    "for the defining module (api/specs.py)",
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and any(
                        target.value.id in bound
                        for bound in ctx.spec_bindings
                    )
                ):
                    yield self.violation(
                        node,
                        ctx,
                        f"attribute assignment on frozen spec "
                        f"{target.value.id!r}; build a new spec instead",
                    )


#: Call targets that block the event loop (RPL004).
_BLOCKING_CALLS = {
    "open": "open() blocks the event loop; hop through run_in_executor",
    "time.sleep": "time.sleep blocks the event loop; use asyncio.sleep",
    "os.system": "os.system blocks the event loop",
}
_BLOCKING_PREFIXES = ("subprocess.",)
_BLOCKING_METHODS = frozenset({"recv", "recv_into", "accept", "sendall"})


@LINT_RULES.register("RPL004")
class AsyncBlockingRule(Rule):
    """No blocking calls directly inside ``async def`` bodies in service/.

    The service is a single asyncio loop; one blocking ``open`` /
    ``time.sleep`` / ``subprocess`` / socket ``recv`` in a handler stalls
    *every* concurrent session, not just the caller.  Blocking work must
    hop through ``loop.run_in_executor`` (the event-log flush path) or an
    async primitive.  Nested synchronous ``def``s are exempt — executors
    call those.
    """

    code = "RPL004"
    name = "non-blocking-async-service"
    rationale = (
        "one blocking call in a handler stalls every concurrent session "
        "on the single event loop"
    )

    def applies_to(self, path: str) -> bool:
        return is_first_party(path) and path.startswith("src/repro/service/")

    def visit_node(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if not isinstance(node, ast.Call) or not ctx.in_async_body:
            return
        callee = dotted_name(node.func)
        if callee in _BLOCKING_CALLS:
            yield self.violation(
                node, ctx, f"blocking call in async body: {_BLOCKING_CALLS[callee]}"
            )
        elif callee and callee.startswith(_BLOCKING_PREFIXES):
            yield self.violation(
                node,
                ctx,
                f"blocking call in async body: {callee} blocks the event "
                "loop; hop through run_in_executor",
            )
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _BLOCKING_METHODS
        ):
            yield self.violation(
                node,
                ctx,
                f"blocking socket-style .{node.func.attr}() in async body; "
                "use the asyncio stream APIs",
            )


#: Allocation constructors whose dtype must be spelled out (RPL005).
_DTYPE_REQUIRED = frozenset(
    {"numpy.array", "numpy.zeros", "numpy.empty", "numpy.ones", "numpy.full"}
)
#: Hot-path files under the int32/intp/float64 level-table contract.
_DTYPE_FILES = frozenset(
    {
        "src/repro/tpo/tree.py",
        "src/repro/tpo/builders.py",
        "src/repro/tpo/space.py",
        "src/repro/questions/residual.py",
    }
)


@LINT_RULES.register("RPL005")
class ExplicitDtypeRule(Rule):
    """Array allocations in the flat-table hot paths pass an explicit dtype.

    The PR-5 level tables contract dtypes precisely (tuple_ids int32,
    parent_idx intp, probs float64); a bare ``np.zeros(n)`` silently
    picks float64 today and whatever the input promotes to tomorrow,
    which is exactly how a 2x-memory int64 id column or a float32
    precision regression sneaks past the 1e-9 parity gates.
    """

    code = "RPL005"
    name = "explicit-hot-path-dtypes"
    rationale = (
        "the level tables contract int32/intp/float64; inferred dtypes "
        "drift silently past the parity gates"
    )

    def applies_to(self, path: str) -> bool:
        return path in _DTYPE_FILES

    def visit_node(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if not isinstance(node, ast.Call):
            return
        resolved = ctx.resolve_numpy(dotted_name(node.func))
        if resolved not in _DTYPE_REQUIRED:
            return
        short = resolved.replace("numpy.", "np.")
        if any(kw.arg == "dtype" for kw in node.keywords):
            return
        # zeros/empty/ones/full accept dtype as the second (full: third)
        # positional argument.
        positional_slot = {"numpy.full": 3}.get(resolved, 2)
        if resolved != "numpy.array" and len(node.args) >= positional_slot:
            return
        yield self.violation(
            node,
            ctx,
            f"{short}(...) without an explicit dtype in a level-table hot "
            "path; spell out int32/intp/float64",
        )


#: Deprecated pre-``repro.api`` entry points and the modules defining them.
_DEPRECATED_SHIMS = frozenset(
    {
        "make_policy",
        "get_measure",
        "register_measure",
        "available_measures",
        "make_workload",
        "make_builder",
        "normalize_spec",
        "materialize_instance",
    }
)
#: Module-level registry aliases that must not be mutated like dicts.
_REGISTRY_NAMES = frozenset(
    {
        "POLICIES",
        "MEASURES",
        "WORKLOADS",
        "SCENARIOS",
        "CROWD_MODELS",
        "DISTRIBUTIONS",
        "ENGINES",
        "STORES",
        "EVALS",
        "GENERATORS",
        "LINT_RULES",
        "CHECKS",
    }
)


@LINT_RULES.register("RPL006")
class NoDeprecatedShimRule(Rule):
    """First-party code never imports the deprecated shims or pokes
    registries as dicts.

    The shims (``make_policy``, ``get_measure``, …) raise
    ``DeprecationWarning`` — which CI promotes to an error — and bypass
    the typed spec layer; subscript-assignment on a registry alias skips
    collision detection and lazy resolution.  Use ``repro.api`` specs and
    ``Registry.register``.
    """

    code = "RPL006"
    name = "no-deprecated-entry-points"
    rationale = (
        "shims bypass the typed repro.api layer (and warn, which CI "
        "escalates); dict-mutation skips registry collision detection"
    )

    #: Modules that define or re-export the shims for compatibility.
    ALLOWED = frozenset(
        {
            "src/repro/__init__.py",
            "src/repro/api/_deprecation.py",
            "src/repro/core/__init__.py",
            "src/repro/uncertainty/registry.py",
            "src/repro/uncertainty/__init__.py",
            "src/repro/workloads/synthetic.py",
            "src/repro/workloads/__init__.py",
            "src/repro/tpo/builders.py",
            "src/repro/tpo/__init__.py",
            "src/repro/service/manager.py",
            "src/repro/service/__init__.py",
        }
    )

    def visit_node(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if isinstance(node, ast.ImportFrom) and ctx.path not in self.ALLOWED:
            if node.level or (node.module or "").startswith("repro"):
                for alias in node.names:
                    if alias.name in _DEPRECATED_SHIMS:
                        yield self.violation(
                            node,
                            ctx,
                            f"import of deprecated shim {alias.name!r}; "
                            "construct through repro.api instead",
                        )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in _REGISTRY_NAMES
                ):
                    yield self.violation(
                        node,
                        ctx,
                        f"direct mutation of registry "
                        f"{target.value.id!r}; use .register() "
                        "(collision-checked, lazy-path aware)",
                    )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in _REGISTRY_NAMES
                ):
                    yield self.violation(
                        node,
                        ctx,
                        f"direct deletion from registry "
                        f"{target.value.id!r}; use .unregister()",
                    )


@LINT_RULES.register("RPL007")
class TornTailAppendRule(Rule):
    """Append-mode JSONL writes go through the torn-tail-safe helpers.

    ``ResultStore`` / ``EventLog`` call ``ensure_trailing_newline`` before
    every append so a record glued onto a killed run's torn final line can
    never lose both records.  A raw ``open(path, "a")`` anywhere else
    reintroduces exactly that corruption on the next crash.
    """

    code = "RPL007"
    name = "torn-tail-safe-appends"
    rationale = (
        "raw append-mode writes glue records onto a torn tail after a "
        "kill; EventLog/ResultStore heal it first"
    )

    ALLOWED = frozenset(
        {"src/repro/experiments/store.py", "src/repro/service/manager.py"}
    )

    def visit_node(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if ctx.path in self.ALLOWED or not isinstance(node, ast.Call):
            return
        callee = dotted_name(node.func)
        is_open = callee == "open" or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "open"
        )
        if not is_open:
            return
        mode = None
        offset = 1 if callee == "open" else 0
        if len(node.args) >= 1 + offset:
            mode = node.args[offset]
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
        if (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and "a" in mode.value
        ):
            yield self.violation(
                node,
                ctx,
                "raw append-mode open(); route through the torn-tail-safe "
                "EventLog/ResultStore helpers",
            )


@LINT_RULES.register("RPL008")
class MutableDefaultRule(Rule):
    """No mutable default arguments on public ``src/repro`` functions.

    A shared ``[]`` / ``{}`` default on an API entry point leaks state
    across calls — and across *sessions* in the long-lived service
    process.  Use ``None`` and materialize inside.
    """

    code = "RPL008"
    name = "no-mutable-public-defaults"
    rationale = (
        "shared mutable defaults leak state across calls in the "
        "long-lived service process"
    )

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._MUTABLE_CALLS
        )

    def visit_node(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if node.name.startswith("_") and node.name != "__init__":
            return
        defaults = list(node.args.defaults) + [
            default
            for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                yield self.violation(
                    default,
                    ctx,
                    f"mutable default argument on public function "
                    f"{node.name!r}; default to None and materialize "
                    "inside",
                )


#: The concrete TPO engine classes whose construction is spec-gated.
_ENGINE_CLASSES = frozenset(
    {"GridBuilder", "ExactBuilder", "MonteCarloBuilder"}
)


@LINT_RULES.register("RPL009")
class EngineSpecConstructionRule(Rule):
    """TPO engines are constructed through ``EngineSpec`` / ``ENGINES``.

    Cache keys, event-log replay, and the sharded runtime all fingerprint
    builders through ``EngineSpec.signature_for``; a ``GridBuilder(...)``
    call sprinkled elsewhere ships configuration (resolution, beam
    epsilon/width) that no spec records, so an equal-looking deployment
    silently stops sharing TPOs — or worse, replays against a
    differently-shaped tree.  Construct via
    ``EngineSpec(name, params).build()`` or ``ENGINES.create(name, ...)``.
    """

    code = "RPL009"
    name = "engines-built-from-specs"
    rationale = (
        "direct engine construction bypasses the EngineSpec fingerprint "
        "that cache keys and replay depend on"
    )

    #: The spec layer itself, the defining module, and the subclass-heavy
    #: test-support reference path.
    ALLOWED = frozenset(
        {
            "src/repro/api/specs.py",
            "src/repro/tpo/builders.py",
            "src/repro/tpo/_reference.py",
        }
    )

    def visit_node(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if ctx.path in self.ALLOWED or not isinstance(node, ast.Call):
            return
        callee = dotted_name(node.func)
        if not callee:
            return
        leaf = callee.rsplit(".", 1)[-1]
        if leaf in _ENGINE_CLASSES:
            yield self.violation(
                node,
                ctx,
                f"direct {leaf}(...) construction; build engines through "
                "repro.api.EngineSpec(...).build() or ENGINES.create() so "
                "the builder fingerprint stays canonical",
            )


#: Session machinery the evaluation harness must not construct directly.
_SESSION_CLASSES = frozenset(
    {"SessionManager", "UncertaintyReductionSession", "InteractiveSession"}
)


@LINT_RULES.register("RPL010")
class EvalSessionDisciplineRule(Rule):
    """Eval code runs sessions through ``repro.api.run`` and derives RNG
    via ``derive_seed``.

    The evaluation harness *is* the fidelity gate: golden replays are
    only bit-identical, and calibration numbers only comparable across
    machines, if every eval session flows through the one sanctioned
    seed-derivation and construction path
    (``prepare_session``/``run_session``/``replay_session``).  A
    hand-rolled ``UncertaintyReductionSession(...)`` or ad-hoc
    ``default_rng(42)`` inside a suite silently forks the determinism
    contract the suite exists to certify.  ``evals/service_replay.py``
    is the one sanctioned exception — exercising the
    ``SessionManager`` event-log path is its entire purpose.
    """

    code = "RPL010"
    name = "evals-through-api-run"
    rationale = (
        "eval sessions built outside repro.api.run (or RNG not derived "
        "via derive_seed) fork the determinism contract the suites "
        "certify"
    )

    ALLOWED = frozenset({"src/repro/evals/service_replay.py"})

    def applies_to(self, path: str) -> bool:
        return is_first_party(path) and path.startswith("src/repro/evals/")

    def visit_node(
        self, node: ast.AST, ctx: FileContext
    ) -> Iterator[Violation]:
        if ctx.path in self.ALLOWED:
            return
        if isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in _SESSION_CLASSES:
                    yield self.violation(
                        node,
                        ctx,
                        f"eval code imports {alias.name!r}; construct "
                        "sessions through repro.api.run "
                        "(prepare_session / run_session / replay_session)",
                    )
        elif isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if not callee:
                return
            parts = callee.split(".")
            direct = set(parts) & _SESSION_CLASSES
            if direct:
                yield self.violation(
                    node,
                    ctx,
                    f"direct {sorted(direct)[0]} use in eval code; go "
                    "through repro.api.run instead",
                )
                return
            resolved = ctx.resolve_numpy(callee)
            if resolved == "numpy.random.default_rng":
                seed = node.args[0] if node.args else None
                derived = (
                    isinstance(seed, ast.Call)
                    and (dotted_name(seed.func) or "").rsplit(".", 1)[-1]
                    == "derive_seed"
                )
                if not derived:
                    yield self.violation(
                        node,
                        ctx,
                        "eval RNG must be seeded through "
                        "utils.rng.derive_seed(seed, *labels)",
                    )


__all__ = [
    "SeededRngRule",
    "ContentKeyRule",
    "FrozenSpecRule",
    "AsyncBlockingRule",
    "ExplicitDtypeRule",
    "NoDeprecatedShimRule",
    "TornTailAppendRule",
    "MutableDefaultRule",
    "EngineSpecConstructionRule",
    "EvalSessionDisciplineRule",
]
