"""Compatibility alias — the renderers moved to
:mod:`repro.devtools.formats` so ``repro lint`` and ``repro check``
share one text/json/github implementation.

This module re-exports the shared names so historical imports
(``from repro.devtools.lint.formats import …``) keep working.
"""

from repro.devtools.formats import (
    FORMATS,
    JSON_FORMAT_VERSION,
    render,
    render_github,
    render_json,
    render_text,
)

__all__ = [
    "FORMATS",
    "JSON_FORMAT_VERSION",
    "render",
    "render_github",
    "render_json",
    "render_text",
]
