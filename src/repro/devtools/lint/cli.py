"""Argument handling shared by ``repro lint`` and ``python -m
repro.devtools.lint``.

Exit codes follow the repo-wide gate convention
(:mod:`repro.devtools.gate`): 0 = clean (possibly via baselined
exceptions), 1 = new violations and/or stale baseline entries, 2 = usage
error.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.devtools.gate import (
    EXIT_USAGE,
    add_gate_arguments,
    finish_gate,
    list_plugins,
    select_plugins,
)
from repro.devtools.lint.core import LINT_RULES, Checker

#: Default lint targets, relative to the repo root.
DEFAULT_PATHS = ("src",)
#: Default baseline location, relative to the repo root.
DEFAULT_BASELINE = "lint_baseline.jsonl"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {'/'.join(DEFAULT_PATHS)})",
    )
    add_gate_arguments(
        parser, default_baseline=DEFAULT_BASELINE, plugin_noun="rule"
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        return list_plugins(LINT_RULES)
    rules = select_plugins(LINT_RULES, args.select)
    if rules is None:
        return EXIT_USAGE

    root = Path(args.root).resolve()
    raw_paths = args.paths or [Path(p) for p in DEFAULT_PATHS]
    checker = Checker(rules)
    violations = checker.check_paths(root, [Path(p) for p in raw_paths])
    return finish_gate(
        args, violations, rules, default_baseline=DEFAULT_BASELINE
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Domain-aware static analysis: machine-checks the repo's "
            "correctness conventions (rules RPL001-RPL010)"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


__all__ = ["add_lint_arguments", "main", "run_lint", "DEFAULT_BASELINE"]
