"""Argument handling shared by ``repro lint`` and ``python -m
repro.devtools.lint``.

Exit codes: 0 = clean (possibly via baselined exceptions), 1 = new
violations and/or stale baseline entries, 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.devtools.lint import baseline as baseline_mod
from repro.devtools.lint.core import LINT_RULES, Checker
from repro.devtools.lint.formats import FORMATS, render

#: Default lint targets, relative to the repo root.
DEFAULT_PATHS = ("src",)
#: Default baseline location, relative to the repo root.
DEFAULT_BASELINE = "lint_baseline.jsonl"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help=f"files or directories to lint (default: {'/'.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help=(
            "repo root used to relativize paths; rules are path-scoped, "
            "so fixture trees lint under their own root"
        ),
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=FORMATS,
        help="report format (github emits PR annotations)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "ratcheting JSONL baseline of deliberate, reason-annotated "
            f"exceptions (default: <root>/{DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the baseline to cover the current violations "
            "(existing reasons are kept; new entries get a TODO reason "
            "you must edit)"
        ),
    )
    parser.add_argument(
        "--no-stale-check",
        action="store_true",
        help="do not fail on baseline entries whose violation is gone",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    available = LINT_RULES.available()
    if args.list_rules:
        for code in available:
            rule = LINT_RULES.create(code)
            print(f"{rule.code}  {rule.name}: {rule.rationale}")
        return 0
    if args.select:
        wanted = [code.strip() for code in args.select.split(",") if code.strip()]
        unknown = [code for code in wanted if code not in available]
        if unknown:
            print(
                f"unknown rule code(s) {unknown}; available: {available}",
                file=sys.stderr,
            )
            return 2
        rules = [LINT_RULES.create(code) for code in wanted]
    else:
        rules = [LINT_RULES.create(code) for code in available]

    root = Path(args.root).resolve()
    raw_paths = args.paths or [Path(p) for p in DEFAULT_PATHS]
    checker = Checker(rules)
    violations = checker.check_paths(root, [Path(p) for p in raw_paths])

    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else root / DEFAULT_BASELINE
    )
    entries = baseline_mod.load_baseline(baseline_path)

    if args.update_baseline:
        updated = baseline_mod.entries_from_violations(violations, entries)
        baseline_mod.save_baseline(baseline_path, updated)
        placeholders = sum(
            1
            for entry in updated
            if entry.reason == baseline_mod.PLACEHOLDER_REASON
        )
        print(
            f"baseline rewritten: {len(updated)} entr(ies) at "
            f"{baseline_path}"
            + (
                f"; edit the {placeholders} TODO reason(s) before committing"
                if placeholders
                else ""
            )
        )
        return 0

    result = baseline_mod.apply_baseline(violations, entries)
    stale = [] if args.no_stale_check else result.stale
    print(render(args.fmt, result.new, result.suppressed, stale, rules))
    return 1 if (result.new or stale) else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Domain-aware static analysis: machine-checks the repo's "
            "correctness conventions (rules RPL001-RPL008)"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


__all__ = ["add_lint_arguments", "main", "run_lint", "DEFAULT_BASELINE"]
