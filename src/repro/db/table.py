"""Uncertain relations: tuples with attributes and uncertain scores.

The paper's setting is "a relational database table T containing N tuples"
whose per-tuple score is a random variable.  :class:`UncertainTable` is
that table: ordinary (certain) attribute values plus, per tuple, either a
pre-computed :class:`~repro.distributions.base.ScoreDistribution` or
uncertain attributes from which a scoring function derives one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.distributions.base import ScoreDistribution
from repro.distributions.point import PointMass

AttributeValue = Union[ScoreDistribution, float, int, str, None]


@dataclass
class UncertainTuple:
    """One row: a key, plain attributes, possibly uncertain ones."""

    key: str
    attributes: Dict[str, AttributeValue] = field(default_factory=dict)

    def attribute_distribution(self, name: str) -> ScoreDistribution:
        """The attribute as a distribution (certain numbers become atoms)."""
        value = self.attributes.get(name)
        if isinstance(value, ScoreDistribution):
            return value
        if isinstance(value, (int, float)):
            return PointMass(float(value))
        raise TypeError(
            f"attribute {name!r} of tuple {self.key!r} is not numeric/uncertain"
        )

    def __repr__(self) -> str:
        return f"UncertainTuple({self.key!r}, {sorted(self.attributes)})"


class UncertainTable:
    """An in-memory relation over :class:`UncertainTuple` rows.

    Tuples are indexed positionally; the TPO machinery addresses them by
    that index, and the table maps back to keys/attributes for display.
    """

    def __init__(self, name: str = "T") -> None:
        self.name = name
        self.rows: List[UncertainTuple] = []
        self._key_index: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def insert(
        self, key: str, **attributes: AttributeValue
    ) -> UncertainTuple:
        """Append a row; keys must be unique within the table."""
        if key in self._key_index:
            raise ValueError(f"duplicate key {key!r}")
        row = UncertainTuple(key, dict(attributes))
        self._key_index[key] = len(self.rows)
        self.rows.append(row)
        return row

    def extend(self, rows: Sequence[UncertainTuple]) -> None:
        """Append pre-built rows (keys must stay unique)."""
        for row in rows:
            if row.key in self._key_index:
                raise ValueError(f"duplicate key {row.key!r}")
            self._key_index[row.key] = len(self.rows)
            self.rows.append(row)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[UncertainTuple]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> UncertainTuple:
        return self.rows[index]

    def index_of(self, key: str) -> int:
        """Positional index of a key (raises ``KeyError`` if absent)."""
        return self._key_index[key]

    def by_key(self, key: str) -> UncertainTuple:
        """Row lookup by key."""
        return self.rows[self._key_index[key]]

    def keys(self) -> List[str]:
        """Row keys in positional order."""
        return [row.key for row in self.rows]

    # ------------------------------------------------------------------

    def score_distributions(
        self, scoring=None, attribute: Optional[str] = None
    ) -> List[ScoreDistribution]:
        """Per-tuple score distributions.

        Either ``attribute`` names a column already holding the (possibly
        uncertain) score, or ``scoring`` is a
        :class:`~repro.db.scoring.ScoringFunction` deriving one from the
        attributes.
        """
        if (scoring is None) == (attribute is None):
            raise ValueError("provide exactly one of scoring/attribute")
        if attribute is not None:
            return [row.attribute_distribution(attribute) for row in self.rows]
        return [scoring(row) for row in self.rows]

    def __repr__(self) -> str:
        return f"UncertainTable({self.name!r}, rows={len(self.rows)})"


__all__ = ["UncertainTable", "UncertainTuple", "AttributeValue"]
