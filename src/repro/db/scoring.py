"""Scoring functions over (possibly uncertain) tuple attributes.

A top-K query ranks tuples by ``s(t)``, a function of attribute values.
When the attributes are uncertain, ``s(t)`` is a derived random variable:

* an :class:`AttributeScore` just picks one attribute (exact);
* a :class:`LinearScore` combines several — single uncertain attribute
  plus certain ones stays exact via an affine transform; multiple
  uncertain attributes are convolved by Monte Carlo into a histogram
  (the discretization the TKDE paper applies to arbitrary pdfs).
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

from repro.distributions.affine import AffineDistribution
from repro.distributions.base import ScoreDistribution
from repro.distributions.histogram import Histogram
from repro.distributions.point import PointMass
from repro.db.table import UncertainTuple
from repro.utils.rng import SeedLike, ensure_rng


class ScoringFunction(abc.ABC):
    """Maps a tuple to the distribution of its score."""

    @abc.abstractmethod
    def __call__(self, row: UncertainTuple) -> ScoreDistribution:
        """Score distribution of one tuple."""


class AttributeScore(ScoringFunction):
    """``s(t) = t.attribute`` — the identity scoring function."""

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    def __call__(self, row: UncertainTuple) -> ScoreDistribution:
        return row.attribute_distribution(self.attribute)

    def __repr__(self) -> str:
        return f"AttributeScore({self.attribute!r})"


class LinearScore(ScoringFunction):
    """``s(t) = Σ w_a · t.a + bias`` over named attributes.

    Exact when at most one weighted attribute is uncertain; otherwise the
    weighted sum is sampled ``mc_samples`` times and fit with a
    ``mc_bins``-bin histogram.
    """

    def __init__(
        self,
        weights: Dict[str, float],
        bias: float = 0.0,
        mc_samples: int = 20000,
        mc_bins: int = 64,
        rng: SeedLike = None,
    ) -> None:
        if not weights:
            raise ValueError("need at least one weighted attribute")
        self.weights = dict(weights)
        self.bias = float(bias)
        self.mc_samples = mc_samples
        self.mc_bins = mc_bins
        self._rng = ensure_rng(rng)

    def __call__(self, row: UncertainTuple) -> ScoreDistribution:
        uncertain = []
        certain_total = self.bias
        for attribute, weight in self.weights.items():
            if weight == 0.0:
                continue
            dist = row.attribute_distribution(attribute)
            if dist.is_deterministic:
                certain_total += weight * dist.lower
            else:
                uncertain.append((weight, dist))
        if not uncertain:
            return PointMass(certain_total)
        if len(uncertain) == 1:
            weight, dist = uncertain[0]
            return AffineDistribution(dist, weight, certain_total)
        # Multiple uncertain attributes: Monte Carlo convolution.
        total = np.full(self.mc_samples, certain_total)
        for weight, dist in uncertain:
            total = total + weight * np.asarray(
                dist.sample(self._rng, self.mc_samples)
            )
        return Histogram.from_samples(total, bins=self.mc_bins)

    def __repr__(self) -> str:
        terms = " + ".join(f"{w:g}·{a}" for a, w in self.weights.items())
        return f"LinearScore({terms} + {self.bias:g})"


__all__ = ["ScoringFunction", "AttributeScore", "LinearScore"]
