"""Top-K query processing over uncertain tables.

The user-facing entry points of the library:

* :func:`topk` — evaluate a top-K query, returning the full uncertain
  answer (the TPO, the ordering space, uncertainty diagnostics, candidate
  crowd questions);
* :func:`crowdsourced_topk` — the paper's end-to-end loop: evaluate,
  then spend a crowd budget with a selection policy to shrink the space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.policies.base import Policy
from repro.core.session import SessionResult, UncertaintyReductionSession
from repro.crowd.simulator import SimulatedCrowd
from repro.db.scoring import ScoringFunction
from repro.db.table import UncertainTable
from repro.distributions.base import ScoreDistribution
from repro.questions.candidates import relevant_questions
from repro.questions.model import Question
from repro.api.catalog import ENGINES
from repro.tpo.builders import TPOBuilder
from repro.tpo.space import OrderingSpace
from repro.tpo.tree import TPOTree
from repro.uncertainty.base import UncertaintyMeasure
from repro.uncertainty.entropy import EntropyMeasure
from repro.utils.rng import SeedLike


@dataclass
class TopKResult:
    """The uncertain answer of a top-K query."""

    table: UncertainTable
    k: int
    distributions: List[ScoreDistribution]
    tree: TPOTree
    space: OrderingSpace
    uncertainty: float
    questions: List[Question]

    def ranked_keys(self) -> List[str]:
        """Keys of the most probable top-K ordering."""
        return [self.table[i].key for i in self.space.most_probable_ordering()]

    def ordering_keys(self, ordering: Sequence[int]) -> List[str]:
        """Translate an ordering of indices into row keys."""
        return [self.table[int(i)].key for i in ordering]

    def describe(self) -> str:
        """Human-readable digest of the uncertain answer."""
        lines = [
            f"top-{self.k} over {self.table.name!r} "
            f"({len(self.table)} tuples): {self.space.size} possible orderings, "
            f"uncertainty={self.uncertainty:.4f}",
            f"most probable: {' > '.join(self.ranked_keys())}",
            f"{len(self.questions)} relevant crowd questions",
        ]
        return "\n".join(lines)

    def semantics_report(self, threshold: float = 0.5) -> str:
        """The answer under the classical uncertain-top-K semantics.

        Renders U-Top-k / U-kRanks / PT-k / expected ranks with row keys
        substituted for tuple indices (see :mod:`repro.tpo.semantics`).
        """
        from repro.tpo.semantics import answer_report

        text = answer_report(self.space, threshold)
        for index in reversed(range(len(self.table))):
            text = text.replace(f"t{index}", self.table[index].key)
        return text


def topk(
    table: UncertainTable,
    k: int,
    scoring: Optional[ScoringFunction] = None,
    attribute: Optional[str] = None,
    engine: str = "grid",
    measure: Optional[UncertaintyMeasure] = None,
    builder: Optional[TPOBuilder] = None,
    **engine_kwargs,
) -> TopKResult:
    """Evaluate an uncertain top-K query.

    Scores come from ``attribute`` (a column holding the score) or from a
    ``scoring`` function over attributes.  ``engine`` picks the TPO builder
    (``grid``/``exact``/``mc``) unless an explicit ``builder`` is given.
    """
    if len(table) == 0:
        raise ValueError("cannot query an empty table")
    distributions = table.score_distributions(scoring=scoring, attribute=attribute)
    if builder is None:
        builder = ENGINES.create(engine, **engine_kwargs)
    tree = builder.build(distributions, k)
    space = tree.to_space()
    measure = measure if measure is not None else EntropyMeasure()
    return TopKResult(
        table=table,
        k=tree.k,
        distributions=distributions,
        tree=tree,
        space=space,
        uncertainty=measure(space),
        questions=relevant_questions(space, distributions),
    )


def crowdsourced_topk(
    table: UncertainTable,
    k: int,
    budget: int,
    policy: Policy,
    crowd: SimulatedCrowd,
    scoring: Optional[ScoringFunction] = None,
    attribute: Optional[str] = None,
    engine: str = "grid",
    measure: Optional[UncertaintyMeasure] = None,
    rng: SeedLike = None,
    track_trajectory: bool = False,
) -> SessionResult:
    """Run the paper's full loop: top-K query + crowd uncertainty reduction.

    Returns the :class:`SessionResult` with the final (possibly unique)
    ordering space and all accounting.
    """
    distributions = table.score_distributions(scoring=scoring, attribute=attribute)
    session = UncertaintyReductionSession(
        distributions,
        k,
        crowd,
        builder=ENGINES.create(engine),
        measure=measure,
        rng=rng,
        track_trajectory=track_trajectory,
    )
    return session.run(policy, budget)


__all__ = ["TopKResult", "topk", "crowdsourced_topk"]
