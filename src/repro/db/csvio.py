"""CSV import/export for uncertain tables.

Uncertainty columns use a light convention so that realistic files (sensor
dumps, review exports) load without custom code:

* ``<attr>`` — certain value;
* ``<attr>_lo`` / ``<attr>_hi`` — a uniform interval;
* ``<attr>_mu`` / ``<attr>_sigma`` — a truncated Gaussian;
* ``<attr>_samples`` — ``;``-separated observations fit as a histogram.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.db.table import UncertainTable
from repro.distributions.gaussian import TruncatedGaussian
from repro.distributions.histogram import Histogram
from repro.distributions.uniform import Uniform

PathLike = Union[str, Path]

_LO, _HI, _MU, _SIGMA, _SAMPLES = "_lo", "_hi", "_mu", "_sigma", "_samples"


def _parse_row(row: Dict[str, str]) -> Dict[str, object]:
    """Turn one CSV row into tuple attributes, decoding uncertainty."""
    attributes: Dict[str, object] = {}
    consumed = set()
    for column in row:
        if column in consumed or column == "key":
            continue
        if column.endswith(_LO):
            base = column[: -len(_LO)]
            hi_column = base + _HI
            if hi_column in row:
                attributes[base] = Uniform(
                    float(row[column]), float(row[hi_column])
                )
                consumed.update({column, hi_column})
                continue
        if column.endswith(_MU):
            base = column[: -len(_MU)]
            sigma_column = base + _SIGMA
            if sigma_column in row:
                attributes[base] = TruncatedGaussian(
                    float(row[column]), float(row[sigma_column])
                )
                consumed.update({column, sigma_column})
                continue
        if column.endswith(_SAMPLES):
            base = column[: -len(_SAMPLES)]
            samples = [float(v) for v in row[column].split(";") if v != ""]
            attributes[base] = Histogram.from_samples(samples)
            consumed.add(column)
            continue
        if column.endswith((_HI, _SIGMA)):
            continue  # handled together with its partner column
        value = row[column]
        try:
            attributes[column] = float(value)
        except ValueError:
            attributes[column] = value
    return attributes


def read_table(path: PathLike, name: Optional[str] = None) -> UncertainTable:
    """Load an uncertain table from CSV (requires a ``key`` column)."""
    path = Path(path)
    table = UncertainTable(name or path.stem)
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "key" not in reader.fieldnames:
            raise ValueError(f"{path} must have a 'key' column")
        for row in reader:
            table.insert(row["key"], **_parse_row(row))
    return table


def write_table(
    table: UncertainTable, path: PathLike, attributes: List[str]
) -> None:
    """Export chosen attributes to CSV, encoding uncertainty columns.

    Uniform attributes become ``_lo``/``_hi`` pairs, Gaussians
    ``_mu``/``_sigma`` pairs, everything else its plain value (histograms
    are exported by their mean — lossy, flagged in the header comment).
    """
    path = Path(path)
    header: List[str] = ["key"]
    for attribute in attributes:
        sample = table[0].attributes.get(attribute)
        if isinstance(sample, Uniform):
            header.extend([attribute + _LO, attribute + _HI])
        elif isinstance(sample, TruncatedGaussian):
            header.extend([attribute + _MU, attribute + _SIGMA])
        else:
            header.append(attribute)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in table:
            record: List[object] = [row.key]
            for attribute in attributes:
                value = row.attributes.get(attribute)
                if isinstance(value, Uniform):
                    record.extend([value.lower, value.upper])
                elif isinstance(value, TruncatedGaussian):
                    record.extend([value.mu, value.sigma])
                elif hasattr(value, "mean"):
                    record.append(value.mean())
                else:
                    record.append(value)
            writer.writerow(record)


__all__ = ["read_table", "write_table"]
