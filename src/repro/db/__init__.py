"""Uncertain-relational layer (substrate S8 in DESIGN.md)."""

from repro.db.csvio import read_table, write_table
from repro.db.query import TopKResult, crowdsourced_topk, topk
from repro.db.scoring import AttributeScore, LinearScore, ScoringFunction
from repro.db.table import UncertainTable, UncertainTuple

__all__ = [
    "UncertainTable",
    "UncertainTuple",
    "ScoringFunction",
    "AttributeScore",
    "LinearScore",
    "topk",
    "crowdsourced_topk",
    "TopKResult",
    "read_table",
    "write_table",
]
