"""Worker-accuracy estimation from redundant answers (Dawid–Skene style).

The paper assumes worker accuracies are *known* when reweighting the TPO
(§III-C).  In a real marketplace they must be estimated; this module
implements the classical EM approach of Dawid & Skene (1979) specialized to
binary comparison tasks:

* E-step — infer a posterior over each question's true answer from the
  current accuracy estimates;
* M-step — re-estimate each worker's accuracy as their posterior-expected
  agreement rate.

The output plugs straight into :class:`~repro.crowd.simulator.SimulatedCrowd`
via ``assumed_accuracy``, closing the loop the paper leaves to future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.questions.model import Question
from repro.utils.validation import check_fraction


@dataclass
class LabeledVote:
    """One worker's reply to one question."""

    question: Question
    worker: str
    holds: bool


@dataclass
class EstimationResult:
    """Output of :func:`estimate_worker_accuracies`."""

    #: MAP accuracy per worker name.
    accuracies: Dict[str, float]
    #: Posterior probability that each question's canonical claim holds.
    posteriors: Dict[Question, float]
    #: EM iterations actually performed.
    iterations: int
    #: Converged (change below tolerance) vs stopped at the cap.
    converged: bool

    def consensus(self) -> Dict[Question, bool]:
        """MAP answer per question."""
        return {q: p >= 0.5 for q, p in self.posteriors.items()}


def estimate_worker_accuracies(
    votes: Sequence[LabeledVote],
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    prior_accuracy: float = 0.7,
    prior_strength: float = 2.0,
) -> EstimationResult:
    """Joint EM estimation of worker accuracies and true answers.

    Parameters
    ----------
    votes:
        The full answer log (several workers per question).
    prior_accuracy, prior_strength:
        A Beta-like pseudo-count prior pulling accuracies toward
        ``prior_accuracy``; keeps estimates identifiable when a worker
        answered few questions and breaks the label-switching symmetry
        (the all-workers-adversarial mirror solution).
    """
    if not votes:
        raise ValueError("need at least one vote")
    check_fraction("prior_accuracy", prior_accuracy)
    workers = sorted({v.worker for v in votes})
    questions = sorted({v.question for v in votes})
    worker_index = {w: i for i, w in enumerate(workers)}
    question_index = {q: i for i, q in enumerate(questions)}
    # Vote tensor entries: (question, worker) → ±1; 0 = no vote.
    matrix = np.zeros((len(questions), len(workers)), dtype=np.int8)
    for vote in votes:
        matrix[question_index[vote.question], worker_index[vote.worker]] = (
            1 if vote.holds else -1
        )
    voted = matrix != 0
    said_yes = matrix == 1
    votes_per_question = voted.sum(axis=1)
    # Dawid–Skene initialization: soft majority vote per question.  Starting
    # from uniform accuracies leaves the symmetric likelihood free to settle
    # in a worker-permuted local optimum; anchoring on the majority does not.
    posteriors = np.where(
        votes_per_question > 0,
        said_yes.sum(axis=1) / np.maximum(votes_per_question, 1),
        0.5,
    ).astype(float)
    accuracies = np.full(len(workers), prior_accuracy)
    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        previous = accuracies.copy()
        # M-step: expected agreement per worker, with the pseudo-count prior.
        # Pr(vote correct) = posterior if vote==+1 else (1 − posterior).
        correctness = np.where(
            said_yes, posteriors[:, None], 1.0 - posteriors[:, None]
        )
        agree = np.where(voted, correctness, 0.0).sum(axis=0)
        answered = voted.sum(axis=0)
        accuracies = (agree + prior_strength * prior_accuracy) / (
            answered + prior_strength
        )
        # E-step: log-odds of "claim holds" per question.
        safe = np.clip(accuracies, 1e-6, 1.0 - 1e-6)
        weight = np.log(safe / (1.0 - safe))
        log_odds = matrix @ weight
        posteriors = 1.0 / (1.0 + np.exp(-log_odds))
        if np.max(np.abs(accuracies - previous)) < tolerance:
            converged = True
            break
    return EstimationResult(
        accuracies={w: float(accuracies[worker_index[w]]) for w in workers},
        posteriors={
            q: float(posteriors[question_index[q]]) for q in questions
        },
        iterations=iterations,
        converged=converged,
    )


def simulate_vote_log(
    truth,
    questions: Sequence[Question],
    worker_accuracies: Dict[str, float],
    rng: np.random.Generator,
) -> List[LabeledVote]:
    """Generate a redundant vote log for estimation experiments.

    Every worker answers every question with their own Bernoulli accuracy.
    """
    votes: List[LabeledVote] = []
    for question in questions:
        correct = truth.holds(question)
        for worker, accuracy in worker_accuracies.items():
            check_fraction(f"accuracy[{worker}]", accuracy)
            holds = correct if rng.random() < accuracy else not correct
            votes.append(LabeledVote(question, worker, holds))
    return votes


__all__ = [
    "LabeledVote",
    "EstimationResult",
    "estimate_worker_accuracies",
    "simulate_vote_log",
]
