"""Simulated crowdsourcing substrate (S7 in DESIGN.md)."""

from repro.crowd.aggregation import (
    majority_accuracy,
    majority_vote,
    weighted_vote,
)
from repro.crowd.estimation import (
    EstimationResult,
    LabeledVote,
    estimate_worker_accuracies,
    simulate_vote_log,
)
from repro.crowd.oracle import GroundTruth
from repro.crowd.simulator import CrowdStats, SimulatedCrowd
from repro.crowd.worker import (
    AdversarialWorker,
    NoisyWorker,
    PerfectWorker,
    Worker,
)

__all__ = [
    "GroundTruth",
    "Worker",
    "PerfectWorker",
    "NoisyWorker",
    "AdversarialWorker",
    "majority_vote",
    "weighted_vote",
    "majority_accuracy",
    "SimulatedCrowd",
    "CrowdStats",
    "LabeledVote",
    "EstimationResult",
    "estimate_worker_accuracies",
    "simulate_vote_log",
]
