"""Answer aggregation across replicated crowd assignments.

Crowdsourcing markets routinely assign the same task to several workers;
aggregating the replies both raises effective accuracy and yields the
reliability value the Bayesian TPO update needs.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.utils.validation import check_fraction


def majority_vote(votes: Sequence[bool]) -> Tuple[bool, float]:
    """Unweighted majority; ties resolved toward ``True``.

    Returns ``(verdict, support)`` where support is the fraction of votes
    agreeing with the verdict.
    """
    if not votes:
        raise ValueError("cannot aggregate an empty vote list")
    positive = sum(1 for v in votes if v)
    verdict = positive * 2 >= len(votes)
    agreeing = positive if verdict else len(votes) - positive
    return verdict, agreeing / len(votes)


def weighted_vote(
    votes: Sequence[bool], accuracies: Sequence[float]
) -> Tuple[bool, float]:
    """Log-odds (Bayesian) vote fusion for independent Bernoulli workers.

    Each vote contributes ``±log(p/(1−p))``; the returned confidence is the
    posterior probability of the verdict under a uniform prior — the
    principled ``accuracy`` to feed the TPO reweighting.
    """
    if len(votes) != len(accuracies):
        raise ValueError("need one accuracy per vote")
    if not votes:
        raise ValueError("cannot aggregate an empty vote list")
    log_odds = 0.0
    for vote, accuracy in zip(votes, accuracies, strict=True):
        check_fraction("accuracy", accuracy)
        p = min(max(accuracy, 1e-9), 1.0 - 1e-9)
        weight = math.log(p / (1.0 - p))
        log_odds += weight if vote else -weight
    verdict = log_odds >= 0.0
    posterior = 1.0 / (1.0 + math.exp(-abs(log_odds)))
    return verdict, posterior


def majority_accuracy(worker_accuracy: float, replication: int) -> float:
    """Probability that a ``replication``-way majority is correct.

    Closed-form tail of the binomial; for even sizes a tie is broken
    uniformly.  Used to report the effective reliability of a replicated
    crowd configuration.
    """
    check_fraction("worker_accuracy", worker_accuracy)
    if replication < 1:
        raise ValueError("replication must be >= 1")
    p = worker_accuracy
    total = 0.0
    for correct in range(replication + 1):
        prob = (
            math.comb(replication, correct)
            * p**correct
            * (1.0 - p) ** (replication - correct)
        )
        if 2 * correct > replication:
            total += prob
        elif 2 * correct == replication:
            total += 0.5 * prob
    return total


__all__ = ["majority_vote", "weighted_vote", "majority_accuracy"]
