"""Simulated crowdsourcing marketplace.

:class:`SimulatedCrowd` is the substitution for the paper's human crowd
(DESIGN.md §4): the uncertainty-reduction algorithms consume only
(question → answer-with-reliability) pairs, and this class reproduces that
interface over a sampled ground truth with configurable worker accuracy,
task replication, vote aggregation, and per-task cost accounting.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.crowd.aggregation import majority_accuracy, weighted_vote
from repro.crowd.oracle import GroundTruth
from repro.crowd.worker import NoisyWorker, PerfectWorker, Worker
from repro.questions.model import Answer, Question
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive


@dataclass
class CrowdStats:
    """Accounting of a crowdsourcing run."""

    questions_posted: int = 0
    assignments: int = 0
    total_cost: float = 0.0
    log: List[Tuple[Question, bool]] = field(default_factory=list)

    def reset(self) -> None:
        """Clear all counters (new experiment repetition)."""
        self.questions_posted = 0
        self.assignments = 0
        self.total_cost = 0.0
        self.log.clear()


class SimulatedCrowd:
    """A pool of simulated workers answering ranking comparisons.

    Parameters
    ----------
    truth:
        The realized world the workers observe.
    worker_accuracy:
        Per-worker correctness probability; 1.0 gives a perfect crowd.
    replication:
        Workers assigned per question; replies are fused by Bayesian
        (log-odds) voting.
    assumed_accuracy:
        Reliability the *algorithm* assumes when updating the TPO.  By
        default the true effective reliability of the configuration
        (replication-boosted); set a different value to study robustness
        to misestimated worker quality.
    cost_per_assignment:
        Monetary cost charged per worker assignment (accounting only).
    worker_model:
        Optional name from the :data:`repro.api.CROWD_MODELS` registry
        forcing every worker to that model (``"perfect"``/``"noisy"``/
        ``"adversarial"``/custom).  ``None`` keeps the historical
        auto-pick: perfect workers at accuracy 1, noisy below.
    """

    def __init__(
        self,
        truth: GroundTruth,
        worker_accuracy: float = 1.0,
        replication: int = 1,
        assumed_accuracy: Optional[float] = None,
        cost_per_assignment: float = 0.05,
        worker_model: Optional[str] = None,
        rng: SeedLike = None,
    ) -> None:
        check_fraction("worker_accuracy", worker_accuracy)
        check_positive("replication", replication)
        self.truth = truth
        self.worker_accuracy = float(worker_accuracy)
        self.replication = int(replication)
        self.cost_per_assignment = float(cost_per_assignment)
        self.worker_model = worker_model
        self._rng = ensure_rng(rng)
        self.workers: List[Worker] = [
            self._make_worker(index) for index in range(self.replication)
        ]
        if assumed_accuracy is None:
            assumed_accuracy = self.effective_accuracy()
        check_fraction("assumed_accuracy", assumed_accuracy)
        self.assumed_accuracy = float(assumed_accuracy)
        self.stats = CrowdStats()

    def _make_worker(self, index: int) -> Worker:
        if self.worker_model is not None:
            from repro.api.catalog import CROWD_MODELS

            model = CROWD_MODELS.get(self.worker_model)
            name = f"{self.worker_model}-{index}"
            # Pass only the parameters the model's constructor declares
            # (NoisyWorker takes accuracy + rng, Perfect/Adversarial take
            # just a name) — never swallow TypeErrors raised inside it.
            accepted = inspect.signature(model).parameters
            kwargs = {"name": name}
            if "rng" in accepted:
                kwargs["rng"] = self._rng
            if "accuracy" in accepted:
                return model(self.worker_accuracy, **kwargs)
            return model(**kwargs)
        if self.worker_accuracy >= 1.0:
            return PerfectWorker(name=f"perfect-{index}")
        return NoisyWorker(
            self.worker_accuracy, rng=self._rng, name=f"noisy-{index}"
        )

    # ------------------------------------------------------------------

    def effective_accuracy(self) -> float:
        """Reliability of the fused answer under this configuration."""
        if self.worker_accuracy >= 1.0:
            return 1.0
        return majority_accuracy(self.worker_accuracy, self.replication)

    @property
    def is_reliable(self) -> bool:
        """True when answers can be hard-pruned (assumed accuracy 1)."""
        return self.assumed_accuracy >= 1.0

    # ------------------------------------------------------------------

    def ask(self, question: Question) -> Answer:
        """Post a question, collect replicated votes, fuse, and account."""
        votes = [w.answer(question, self.truth) for w in self.workers]
        if len(votes) == 1:
            verdict = votes[0]
        else:
            verdict, _ = weighted_vote(
                votes, [max(w.accuracy, 0.5) for w in self.workers]
            )
        self.stats.questions_posted += 1
        self.stats.assignments += len(votes)
        self.stats.total_cost += len(votes) * self.cost_per_assignment
        self.stats.log.append((question, verdict))
        return Answer(question, verdict, accuracy=self.assumed_accuracy)

    def ask_batch(self, questions: Sequence[Question]) -> List[Answer]:
        """Post a batch (the offline-algorithm interaction pattern)."""
        return [self.ask(q) for q in questions]

    def __repr__(self) -> str:
        return (
            f"SimulatedCrowd(workers={self.replication}, "
            f"accuracy={self.worker_accuracy:g}, "
            f"assumed={self.assumed_accuracy:g})"
        )


__all__ = ["SimulatedCrowd", "CrowdStats"]
