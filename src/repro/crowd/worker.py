"""Crowd worker models.

A worker turns a (question, ground truth) pair into a possibly wrong
boolean.  The paper's noise model is the standard Bernoulli one: a worker
with accuracy ``p`` reports the true comparison with probability ``p`` and
its negation otherwise, independently across questions.
"""

from __future__ import annotations

import abc
import itertools
from typing import Optional

from repro.crowd.oracle import GroundTruth
from repro.questions.model import Question
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction

_worker_ids = itertools.count(1)


class Worker(abc.ABC):
    """A (simulated) crowd worker."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or f"worker-{next(_worker_ids)}"
        #: Number of questions this worker has answered.
        self.answered = 0

    @property
    @abc.abstractmethod
    def accuracy(self) -> float:
        """Probability that an answer matches the ground truth."""

    @abc.abstractmethod
    def _judge(self, question: Question, truth: GroundTruth) -> bool:
        """Produce the (possibly erroneous) verdict on the canonical claim."""

    def answer(self, question: Question, truth: GroundTruth) -> bool:
        """Answer a question; increments the per-worker task counter."""
        self.answered += 1
        return self._judge(question, truth)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, accuracy={self.accuracy:g})"


class PerfectWorker(Worker):
    """An always-correct worker (accuracy 1): enables hard pruning."""

    @property
    def accuracy(self) -> float:
        return 1.0

    def _judge(self, question: Question, truth: GroundTruth) -> bool:
        return truth.holds(question)


class NoisyWorker(Worker):
    """Bernoulli-noise worker: correct with probability ``accuracy``.

    Errors are independent across questions and of the question content —
    the model under which majority voting and the Bayesian TPO update are
    exact.
    """

    def __init__(
        self,
        accuracy: float,
        rng: SeedLike = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        check_fraction("accuracy", accuracy)
        self._accuracy = float(accuracy)
        self._rng = ensure_rng(rng)

    @property
    def accuracy(self) -> float:
        return self._accuracy

    def _judge(self, question: Question, truth: GroundTruth) -> bool:
        correct = truth.holds(question)
        if self._rng.random() < self._accuracy:
            return correct
        return not correct


class AdversarialWorker(Worker):
    """Always answers incorrectly (accuracy 0) — a robustness stressor."""

    @property
    def accuracy(self) -> float:
        return 0.0

    def _judge(self, question: Question, truth: GroundTruth) -> bool:
        return not truth.holds(question)


__all__ = ["Worker", "PerfectWorker", "NoisyWorker", "AdversarialWorker"]
