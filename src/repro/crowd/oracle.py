"""Ground truth for simulated crowdsourcing runs.

The paper evaluates against the *real ordering* ``ω_r`` — one concrete
realization of the uncertain scores.  :class:`GroundTruth` draws (or is
given) that realization; workers consult it, and the final quality metric
``D(ω_r, T_K)`` compares the surviving orderings against its top-K prefix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distributions.base import ScoreDistribution
from repro.questions.model import Question
from repro.utils.rng import SeedLike, ensure_rng


class GroundTruth:
    """A fixed realization of all tuple scores.

    Parameters
    ----------
    scores:
        The realized score vector; ties are broken by tuple index
        (deterministically), matching the paper's tie-breaking assumption.
    """

    def __init__(self, scores: Sequence[float]) -> None:
        self.scores = np.asarray(scores, dtype=float)
        if self.scores.ndim != 1 or self.scores.size == 0:
            raise ValueError("scores must be a non-empty vector")
        # argsort on (-score, index): descending score, ascending index.
        order = np.lexsort((np.arange(self.scores.size), -self.scores))
        self.ordering = order.astype(np.int32)
        self._rank = np.empty_like(self.ordering)
        self._rank[self.ordering] = np.arange(self.scores.size)

    @classmethod
    def sample(
        cls,
        distributions: Sequence[ScoreDistribution],
        rng: SeedLike = None,
    ) -> "GroundTruth":
        """Draw the realization from the score model itself.

        This is the self-consistent setting: the crowd "knows" a world that
        the uncertain database deems possible.
        """
        generator = ensure_rng(rng)
        scores = [float(np.atleast_1d(d.sample(generator, 1))[0]) for d in distributions]
        return cls(scores)

    @property
    def n_tuples(self) -> int:
        """Universe size."""
        return self.scores.size

    def rank_of(self, tuple_index: int) -> int:
        """0-based true rank of a tuple (0 = best)."""
        return int(self._rank[tuple_index])

    def top_k(self, k: int) -> np.ndarray:
        """The true top-``k`` prefix ranking ``ω_r`` (best first)."""
        return self.ordering[:k].copy()

    def holds(self, question: Question) -> bool:
        """Whether the canonical claim ``t_i ≺ t_j`` is true in ``ω_r``."""
        return self.rank_of(question.i) < self.rank_of(question.j)

    def __repr__(self) -> str:
        head = ", ".join(f"t{t}" for t in self.ordering[:5])
        return f"GroundTruth(n={self.n_tuples}, top=[{head}, …])"


__all__ = ["GroundTruth"]
