"""Lightweight CPU-time measurement used by the experiment harness.

The paper's Figure 1(b) reports CPU seconds per algorithm; we measure
``time.process_time`` (CPU, not wall clock) so that the reported numbers are
insensitive to machine load, mirroring what the authors report.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulates named time spans (CPU clock by default).

    Example::

        watch = Stopwatch()
        with watch.span("select"):
            policy.select(...)
        watch.total("select")  # seconds

    Pass ``clock=time.perf_counter`` for wall-clock spans — what the grid
    runner reports for fan-out runs, where per-process CPU time says
    nothing about elapsed time.
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    clock: Callable[[], float] = time.process_time

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context manager measuring one time span under ``name``."""
        start = self.clock()
        try:
            yield
        finally:
            elapsed = self.clock() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Total CPU seconds accumulated under ``name`` (0.0 if unused)."""
        return self.totals.get(name, 0.0)

    def grand_total(self) -> float:
        """Sum of all spans."""
        return sum(self.totals.values())

    def reset(self) -> None:
        """Drop all accumulated spans."""
        self.totals.clear()
        self.counts.clear()


def timed(fn: Callable[..., T], *args: Any, **kwargs: Any) -> Tuple[T, float]:
    """Run ``fn`` and return ``(result, cpu_seconds)``."""
    start = time.process_time()
    result = fn(*args, **kwargs)
    return result, time.process_time() - start


def timed_wall(
    fn: Callable[..., T], *args: Any, **kwargs: Any
) -> Tuple[T, float]:
    """Run ``fn`` and return ``(result, wall_seconds)``.

    Wall clock, not CPU: the right metric for multi-process work, where the
    parent's CPU clock never ticks while pool workers do the computing.
    """
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


__all__ = ["Stopwatch", "timed", "timed_wall"]
