"""Shared utilities: random-number handling, timing, validation helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "timed",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
]
