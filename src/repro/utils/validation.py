"""Argument-validation helpers shared across the library.

All validators raise :class:`ValueError` with a message naming the offending
parameter, so call sites stay one-liners and errors never pass silently.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(name: str, value: float, allow_zero: bool = False) -> float:
    """Require ``value`` > 0 (or >= 0 when ``allow_zero``)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``value`` in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_probability_vector(
    name: str, values: Sequence[float], tolerance: float = 1e-6
) -> np.ndarray:
    """Require a non-negative vector summing to 1 (within ``tolerance``)."""
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(array < -tolerance):
        raise ValueError(f"{name} must be non-negative, got min {array.min()!r}")
    total = float(array.sum())
    if abs(total - 1.0) > tolerance:
        raise ValueError(f"{name} must sum to 1 (within {tolerance}), got {total!r}")
    return np.clip(array, 0.0, None)


def check_index(name: str, value: int, size: int) -> int:
    """Require ``0 <= value < size``."""
    if not 0 <= value < size:
        raise ValueError(f"{name} must lie in [0, {size}), got {value!r}")
    return value


__all__ = [
    "check_positive",
    "check_fraction",
    "check_probability_vector",
    "check_index",
]
