"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Centralizing
the coercion here keeps experiment runs reproducible: a single integer seed
threaded through :func:`ensure_rng` / :func:`spawn_rngs` determines every
sampled score, simulated worker answer, and random baseline choice.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so components can
    share a stream; anything else (``None``, ``int``,
    :class:`~numpy.random.SeedSequence`) creates a fresh generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Used by multi-seed experiment runners: each repetition gets its own
    stream, so adding repetitions never perturbs earlier ones.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def _label_value(label: Union[int, str]) -> int:
    """64-bit process-stable value of one derivation label.

    String labels go through BLAKE2b, **never** Python's builtin ``hash``:
    the builtin is salted per interpreter (PYTHONHASHSEED), so it would give
    every parallel experiment worker a different stream and make
    fan-out runs irreproducible against serial ones.
    """
    if isinstance(label, str):
        digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "little")
    return label & 0xFFFFFFFFFFFFFFFF


def derive_seed(seed: SeedLike, *labels: Union[int, str]) -> int:
    """Deterministically derive an integer sub-seed from ``seed`` and labels.

    Experiments use this to give each (algorithm, repetition) cell its own
    reproducible stream regardless of evaluation order.  The derivation is
    stable across processes and interpreter restarts, so a grid cell run in
    a pool worker sees exactly the seeds it would see in-process.
    """
    base = 0 if seed is None else (seed if isinstance(seed, int) else 0)
    mix = (base ^ 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    for label in labels:
        value = _label_value(label)
        mix = (
            mix * 6364136223846793005 + value + 1442695040888963407
        ) & 0xFFFFFFFFFFFFFFFF
    return mix & 0x7FFFFFFF


def choice_without_replacement(
    rng: np.random.Generator, items: Iterable, count: int
) -> list:
    """Sample ``count`` distinct items (or all of them if fewer exist)."""
    pool = list(items)
    if count >= len(pool):
        shuffled = pool[:]
        rng.shuffle(shuffled)
        return shuffled
    indices = rng.choice(len(pool), size=count, replace=False)
    return [pool[i] for i in indices]


__all__ = [
    "SeedLike",
    "ensure_rng",
    "spawn_rngs",
    "derive_seed",
    "choice_without_replacement",
]
