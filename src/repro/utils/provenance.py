"""Build provenance for benchmark artifacts.

Every ``BENCH_*.json`` artifact carries the git SHA and an ISO-8601 UTC
timestamp of the run that produced it, so a directory of downloaded CI
artifacts reconstructs the performance trajectory of the repository
without consulting the CI provider's metadata.
"""

from __future__ import annotations

import os
import subprocess
from datetime import datetime, timezone
from typing import Dict


def git_sha() -> str:
    """The commit the working tree is at, or ``"unknown"``.

    CI exposes the SHA via ``GITHUB_SHA`` even on shallow checkouts; a
    local run falls back to ``git rev-parse``.
    """
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def artifact_stamp() -> Dict[str, str]:
    """``{"git_sha": …, "date": …}`` fields to merge into a JSON artifact."""
    return {
        "git_sha": git_sha(),
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


__all__ = ["git_sha", "artifact_stamp"]
