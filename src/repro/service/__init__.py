"""Concurrent multi-session service layer.

Runs many crowdsourcing sessions against shared, cached state:

* :mod:`repro.service.cache` — a bounded LRU of built TPOs keyed by a
  BLAKE2b content hash of the canonical instance, so N sessions over the
  same (or hashed-equal) instance pay one tree build;
* :mod:`repro.service.manager` — :class:`SessionManager`: session
  lifecycle (create / next-question / submit-answer / snapshot / resume),
  an append-only JSONL event log that makes a killed manager resumable,
  and cross-session coalescing of next-question rankings;
* :mod:`repro.service.server` — a dependency-free asyncio HTTP front end
  (``repro serve``);
* :mod:`repro.service.bench` — the throughput/cache-hit benchmark behind
  ``repro bench-service`` and ``benchmarks/bench_service.py``.
"""

from repro.service.cache import TPOCache, instance_key
from repro.service.manager import SessionManager

__all__ = ["TPOCache", "SessionManager", "instance_key"]
