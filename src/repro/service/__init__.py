"""Concurrent multi-session service layer.

Runs many crowdsourcing sessions against shared, cached state:

* :mod:`repro.service.cache` — a bounded LRU of built TPOs keyed by a
  BLAKE2b content hash of the canonical instance, so N sessions over the
  same (or hashed-equal) instance pay one tree build;
* :mod:`repro.service.manager` — :class:`SessionManager`: session
  lifecycle (create / next-question / submit-answer / snapshot / resume),
  an append-only JSONL event log that makes a killed manager resumable,
  and cross-session coalescing of next-question rankings;
* :mod:`repro.service.server` — a dependency-free asyncio HTTP front end
  (``repro serve``);
* :mod:`repro.service.store` — the two-tier TPO store: a per-worker hot
  :class:`TPOCache` over a cross-process content-addressed cold tier of
  binary (npz) level tables, so a fleet builds each TPO once;
* :mod:`repro.service.sharding` — the multi-worker runtime behind
  ``repro serve --workers N``: a router that shards sessions across
  worker processes by BLAKE2b of the session key, with per-shard event
  logs and crash-restart resume;
* :mod:`repro.service.bench` — the throughput/cache-hit benchmarks behind
  ``repro bench-service`` and ``benchmarks/bench_service.py``.
"""

from repro.service.cache import TPOCache, instance_key
from repro.service.manager import SessionManager
from repro.service.store import TwoTierStore

__all__ = ["TPOCache", "SessionManager", "TwoTierStore", "instance_key"]
