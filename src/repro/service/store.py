"""Two-tier TPO store: per-worker hot LRU over a cross-process cold tier.

The multi-worker runtime (:mod:`repro.service.sharding`) runs one
:class:`~repro.service.manager.SessionManager` per worker process.  Each
worker keeps its own hot :class:`~repro.service.cache.TPOCache` of
deserialized :class:`~repro.tpo.space.OrderingSpace` objects, but a TPO
built by *any* worker should be paid for once per fleet, not once per
process — that is the cold tier's job.

A **cold tier** (:class:`ColdTier`) is a content-addressed map from the
existing BLAKE2b instance keys (:func:`repro.service.cache.instance_key`
— unchanged by this module) to the binary level-table serialization of
:mod:`repro.tpo.serialize` (``tree_to_npz`` / ``tree_from_npz``).  Three
backends ship, registered in the ``STORES`` registry of
:mod:`repro.api.catalog`:

``memory``
    An in-process dict of npz byte strings.  Not shared across
    processes; useful for single-worker deployments and tests, and as
    the reference implementation of the tier contract.
``disk-npz``
    One atomic (tmp+rename, fsynced) ``<key>.npz`` file per instance in
    a shared directory, memmap-loaded so concurrent workers share
    physical pages.  Torn or corrupt files are treated as misses and
    deleted rather than poisoning the fleet — the same discipline the
    event log applies to torn JSONL tails.  Cross-process single-flight:
    a ``<key>.lock`` file (``O_CREAT | O_EXCL``) elects one builder; the
    losers poll for the winner's artifact instead of burning CPU on a
    duplicate build.
``shared-memory``
    POSIX shared-memory segments (:mod:`multiprocessing.shared_memory`),
    one per instance, holding the same npz bytes behind a small
    commit-marker header so a reader never parses a half-written
    payload.  Zero filesystem traffic; segments created by this process
    are unlinked by :meth:`~SharedMemoryColdTier.close`.

:class:`TwoTierStore` composes a hot cache with a cold tier behind the
exact ``get_space(key, distributions, build)`` interface the session
manager already speaks, so it is a drop-in replacement for a bare
:class:`TPOCache`.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Protocol, Sequence, Union

from repro.distributions.base import ScoreDistribution
from repro.service.cache import TPOCache
from repro.tpo.serialize import (
    TPOSerializationError,
    tree_from_npz,
    tree_from_npz_bytes,
    tree_to_npz,
    tree_to_npz_bytes,
)
from repro.tpo.space import OrderingSpace
from repro.tpo.tree import TPOTree

PathLike = Union[str, Path]


class SpaceStore(Protocol):
    """What the session manager needs from a TPO store.

    Both the bare :class:`~repro.service.cache.TPOCache` and
    :class:`TwoTierStore` satisfy this.
    """

    def get_space(
        self,
        key: str,
        distributions: Sequence[ScoreDistribution],
        build: Callable[[], TPOTree],
    ) -> OrderingSpace: ...

    def stats(self) -> Dict[str, Any]: ...

    @property
    def hit_rate(self) -> float: ...


# ----------------------------------------------------------------------
# Cold tiers
# ----------------------------------------------------------------------


class ColdTier:
    """Base class for cross-process content-addressed TPO storage.

    Subclasses implement :meth:`_load` / :meth:`_store`; the base class
    provides uniform hit/miss/torn accounting and the (optional)
    single-flight build-lock hooks.  ``get`` returns a rebuilt
    :class:`TPOTree` or ``None``; ``put`` persists a tree and returns it
    *as re-read from the stored payload*, which is what keeps the "cached
    state equals a cold rebuild" invariant the manager's resume path
    relies on.
    """

    #: Registry name of the backend (overridden per subclass).
    name = "abstract"

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.torn = 0
        self.puts = 0

    # -- backend primitives -------------------------------------------

    def _load(
        self, key: str, distributions: Sequence[ScoreDistribution]
    ) -> Optional[TPOTree]:
        raise NotImplementedError

    def _store(self, key: str, tree: TPOTree) -> TPOTree:
        raise NotImplementedError

    def _discard_damaged(self, key: str) -> None:
        """Drop a payload that failed to decode (best-effort)."""

    # -- tier interface ------------------------------------------------

    def get(
        self, key: str, distributions: Sequence[ScoreDistribution]
    ) -> Optional[TPOTree]:
        """The stored tree for ``key``, or ``None`` on miss.

        A damaged payload (torn mid-copy, truncated by a crash) counts
        as a miss, is discarded, and bumps the ``torn`` counter.
        """
        try:
            tree = self._load(key, distributions)
        except TPOSerializationError:
            self.torn += 1
            self._discard_damaged(key)
            tree = None
        if tree is None:
            self.misses += 1
            return None
        self.hits += 1
        return tree

    def put(self, key: str, tree: TPOTree) -> TPOTree:
        """Persist ``tree`` under ``key``; returns the stored round-trip."""
        self.puts += 1
        return self._store(key, tree)

    # -- single-flight build coordination ------------------------------

    def begin_build(self, key: str) -> bool:
        """Try to become the one builder for ``key``.

        ``True`` means this caller holds the build lock and must call
        :meth:`end_build` when done; ``False`` means another process is
        already building — poll :meth:`wait_for`.  The default tier has
        no cross-process contention, so everyone "wins".
        """
        return True

    def end_build(self, key: str) -> None:
        """Release the build lock taken by :meth:`begin_build`."""

    def wait_for(
        self,
        key: str,
        distributions: Sequence[ScoreDistribution],
        timeout: float,
    ) -> Optional[TPOTree]:
        """Wait up to ``timeout`` seconds for another builder's artifact."""
        return None

    # -- bookkeeping ---------------------------------------------------

    def entry_count(self) -> int:
        """How many instances the tier currently holds."""
        raise NotImplementedError

    def stored_bytes(self) -> int:
        """Total serialized payload size currently held, in bytes."""
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        """Counters for ``/v1/stats`` and the benchmark artifacts."""
        lookups = self.hits + self.misses
        return {
            "backend": self.name,
            "entries": self.entry_count(),
            "bytes": self.stored_bytes(),
            "hits": self.hits,
            "misses": self.misses,
            "torn": self.torn,
            "puts": self.puts,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def close(self) -> None:
        """Release backend resources (files stay; shm segments unlink)."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(entries={self.entry_count()}, "
            f"hits={self.hits}, misses={self.misses})"
        )


class MemoryColdTier(ColdTier):
    """In-process cold tier: a dict of npz byte payloads.

    Goes through the same binary serialization as the shared backends so
    behavior (and round-trip guarantees) are identical — it just cannot
    cross a process boundary.
    """

    name = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._payloads: Dict[str, bytes] = {}

    def _load(
        self, key: str, distributions: Sequence[ScoreDistribution]
    ) -> Optional[TPOTree]:
        payload = self._payloads.get(key)
        if payload is None:
            return None
        return tree_from_npz_bytes(payload, distributions)

    def _store(self, key: str, tree: TPOTree) -> TPOTree:
        payload = tree_to_npz_bytes(tree)
        self._payloads[key] = payload
        return tree_from_npz_bytes(payload, tree.distributions)

    def _discard_damaged(self, key: str) -> None:
        self._payloads.pop(key, None)

    def entry_count(self) -> int:
        return len(self._payloads)

    def stored_bytes(self) -> int:
        return sum(len(payload) for payload in self._payloads.values())


def _check_key(key: str) -> str:
    """Reject keys that could escape the store directory or collide."""
    if not key or not all(ch.isalnum() or ch in "-_" for ch in key):
        raise ValueError(f"invalid store key {key!r}")
    return key


class DiskNpzColdTier(ColdTier):
    """Shared-directory cold tier of atomic, memmap-loaded npz files.

    Parameters
    ----------
    path:
        Directory holding one ``<key>.npz`` per instance (created on
        first write).  Point every worker of a fleet at the same
        directory.
    mmap:
        Memory-map level tables on load (default) so concurrent readers
        share pages; pass ``False`` to force heap copies (e.g. when the
        directory is about to be deleted).
    lock_timeout:
        How long :meth:`wait_for` polls for another process's build
        before giving up and building locally anyway.
    """

    name = "disk-npz"

    def __init__(
        self,
        path: PathLike,
        mmap: bool = True,
        lock_timeout: float = 30.0,
        poll_interval: float = 0.02,
    ) -> None:
        super().__init__()
        self.root = Path(path)
        self.mmap = bool(mmap)
        self.lock_timeout = float(lock_timeout)
        self.poll_interval = float(poll_interval)

    def _file(self, key: str) -> Path:
        return self.root / f"{_check_key(key)}.npz"

    def _lock(self, key: str) -> Path:
        return self.root / f"{_check_key(key)}.lock"

    def _load(
        self, key: str, distributions: Sequence[ScoreDistribution]
    ) -> Optional[TPOTree]:
        path = self._file(key)
        if not path.exists():
            return None
        return tree_from_npz(path, distributions, mmap=self.mmap)

    def _store(self, key: str, tree: TPOTree) -> TPOTree:
        path = tree_to_npz(tree, self._file(key))
        return tree_from_npz(path, tree.distributions, mmap=self.mmap)

    def _discard_damaged(self, key: str) -> None:
        try:
            self._file(key).unlink()
        except OSError:
            pass

    # -- single flight -------------------------------------------------

    def begin_build(self, key: str) -> bool:
        self.root.mkdir(parents=True, exist_ok=True)
        lock = self._lock(key)
        try:
            descriptor = os.open(
                lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            try:
                # A lock older than the timeout is a crashed builder:
                # steal it rather than stalling the fleet forever.
                age = time.time() - lock.stat().st_mtime
                if age > self.lock_timeout:
                    lock.unlink()
                    return self.begin_build(key)
            except OSError:
                pass
            return False
        os.write(descriptor, str(os.getpid()).encode("ascii"))
        os.close(descriptor)
        return True

    def end_build(self, key: str) -> None:
        try:
            self._lock(key).unlink()
        except OSError:
            pass

    def wait_for(
        self,
        key: str,
        distributions: Sequence[ScoreDistribution],
        timeout: float,
    ) -> Optional[TPOTree]:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            tree = self.get(key, distributions)
            if tree is not None:
                return tree
            if not self._lock(key).exists():
                # The builder released (or died) without producing the
                # artifact; one more look, then let the caller build.
                return self.get(key, distributions)
            time.sleep(self.poll_interval)
        return None

    # -- bookkeeping ---------------------------------------------------

    def _files(self) -> list:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.npz"))

    def entry_count(self) -> int:
        return len(self._files())

    def stored_bytes(self) -> int:
        total = 0
        for path in self._files():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total


#: Header layout of a shared-memory payload: commit magic + payload size.
_SHM_MAGIC = b"RTPO\x01\x00\x00\x00"
_SHM_HEADER = len(_SHM_MAGIC) + 8


class SharedMemoryColdTier(ColdTier):
    """Cold tier over named POSIX shared-memory segments.

    Each instance key maps to one segment (``<prefix>-<key>``) holding
    the npz payload behind a 16-byte header.  The payload bytes are
    written first and the commit magic last, so an attaching reader that
    sees the magic is guaranteed a complete payload — a torn writer
    leaves a segment without magic, which reads as a miss.

    Segment names are deterministic, so any process that knows the
    instance key can attach.  Segments created by this process are
    tracked and unlinked by :meth:`close`; attach-only processes never
    unlink.  (On Python < 3.13 the stdlib resource tracker may warn
    about attached segments at interpreter exit; the runtime closes its
    tiers before that point.)
    """

    name = "shared-memory"

    def __init__(self, prefix: str = "repro-tpo") -> None:
        super().__init__()
        if not prefix or not all(
            ch.isalnum() or ch in "-_" for ch in prefix
        ):
            raise ValueError(f"invalid shared-memory prefix {prefix!r}")
        self.prefix = prefix
        self._owned: Dict[str, Any] = {}

    def _segment_name(self, key: str) -> str:
        return f"{self.prefix}-{_check_key(key)}"

    def _attach(self, key: str) -> Optional[Any]:
        from multiprocessing import shared_memory

        try:
            return shared_memory.SharedMemory(name=self._segment_name(key))
        except FileNotFoundError:
            return None

    def _load(
        self, key: str, distributions: Sequence[ScoreDistribution]
    ) -> Optional[TPOTree]:
        segment = self._attach(key)
        if segment is None:
            return None
        try:
            view = segment.buf
            if bytes(view[: len(_SHM_MAGIC)]) != _SHM_MAGIC:
                raise TPOSerializationError(
                    f"shared-memory segment for {key!r} is uncommitted"
                )
            size = int.from_bytes(
                bytes(view[len(_SHM_MAGIC) : _SHM_HEADER]), "little"
            )
            if size <= 0 or _SHM_HEADER + size > len(view):
                raise TPOSerializationError(
                    f"shared-memory segment for {key!r} has a bad size"
                )
            payload = bytes(view[_SHM_HEADER : _SHM_HEADER + size])
        finally:
            if key not in self._owned:
                segment.close()
        return tree_from_npz_bytes(payload, distributions)

    def _store(self, key: str, tree: TPOTree) -> TPOTree:
        from multiprocessing import shared_memory

        payload = tree_to_npz_bytes(tree)
        name = self._segment_name(key)
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=_SHM_HEADER + len(payload)
            )
        except FileExistsError:
            # Another worker won the write race; read its copy back so
            # the round-trip invariant still holds.
            existing = self._load(key, tree.distributions)
            if existing is not None:
                return existing
            # Uncommitted leftover (writer died mid-put): replace it.
            leftover = self._attach(key)
            if leftover is not None:
                leftover.close()
                try:
                    leftover.unlink()
                except FileNotFoundError:
                    pass
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=_SHM_HEADER + len(payload)
            )
        segment.buf[_SHM_HEADER : _SHM_HEADER + len(payload)] = payload
        segment.buf[len(_SHM_MAGIC) : _SHM_HEADER] = len(payload).to_bytes(
            8, "little"
        )
        segment.buf[: len(_SHM_MAGIC)] = _SHM_MAGIC
        self._owned[key] = segment
        return tree_from_npz_bytes(payload, tree.distributions)

    def _discard_damaged(self, key: str) -> None:
        segment = self._owned.pop(key, None) or self._attach(key)
        if segment is None:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass

    def entry_count(self) -> int:
        return len(self._owned)

    def stored_bytes(self) -> int:
        return sum(segment.size for segment in self._owned.values())

    def close(self) -> None:
        """Close and unlink every segment this process created."""
        while self._owned:
            _, segment = self._owned.popitem()
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------------
# The two-tier store
# ----------------------------------------------------------------------


class TwoTierStore:
    """Per-worker hot LRU over a cross-process cold tier.

    Drop-in for :class:`~repro.service.cache.TPOCache` wherever the
    session manager expects a store (same ``get_space`` / ``stats`` /
    ``hit_rate`` surface).  Lookup path:

    1. **hot** — deserialized spaces in this process (LRU);
    2. **cold** — the shared tier, deserializing on hit;
    3. **build** — construct the TPO, publish it to the cold tier, and
       serve the round-tripped copy (so what this worker caches is
       bit-for-bit what every other worker will deserialize).

    Cold misses are single-flighted across processes when the backend
    supports it: exactly one worker builds, the rest wait for the
    artifact (up to ``build_wait`` seconds) instead of duplicating the
    dominant per-session cost.
    """

    def __init__(
        self,
        hot: Optional[TPOCache] = None,
        cold: Optional[ColdTier] = None,
        build_wait: float = 30.0,
    ) -> None:
        self.hot = hot if hot is not None else TPOCache()
        self.cold = cold if cold is not None else MemoryColdTier()
        self.build_wait = float(build_wait)
        self.builds = 0
        self.cold_hits = 0
        self.cold_waited = 0

    # ------------------------------------------------------------------

    def get_space(
        self,
        key: str,
        distributions: Sequence[ScoreDistribution],
        build: Callable[[], TPOTree],
    ) -> OrderingSpace:
        """The initial space for ``key`` (hot → cold → build-and-publish)."""
        space = self.hot.lookup(key)
        if space is not None:
            return space
        tree = self.cold.get(key, distributions)
        if tree is not None:
            self.cold_hits += 1
        else:
            tree = self._build_or_wait(key, distributions, build)
        space = tree.to_space()
        space.positions()
        self.hot.insert(key, space)
        return space

    def _build_or_wait(
        self,
        key: str,
        distributions: Sequence[ScoreDistribution],
        build: Callable[[], TPOTree],
    ) -> TPOTree:
        if not self.cold.begin_build(key):
            waited = self.cold.wait_for(
                key, distributions, timeout=self.build_wait
            )
            if waited is not None:
                self.cold_waited += 1
                return waited
            # The elected builder died or overran the wait: fall through
            # and build locally (taking the lock is best-effort now).
            if not self.cold.begin_build(key):
                self.builds += 1
                built = build()
                return self.cold.put(key, built)
        try:
            self.builds += 1
            built = build()
            stored = self.cold.put(key, built)
        finally:
            self.cold.end_build(key)
        return stored

    # ------------------------------------------------------------------

    @property
    def cold_hit_rate(self) -> float:
        """Fraction of cold-tier consults that avoided a local build."""
        shared = self.cold_hits + self.cold_waited
        consults = shared + self.builds
        return shared / consults if consults else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without building (either tier)."""
        lookups = self.hot.hits + self.hot.misses
        if not lookups:
            return 0.0
        served = self.hot.hits + self.cold_hits + self.cold_waited
        return served / lookups

    def stats(self) -> Dict[str, Any]:
        """Two-tier counters for ``/v1/stats`` and benchmark artifacts."""
        return {
            "tiers": 2,
            "hot": self.hot.stats(),
            "cold": self.cold.stats(),
            "builds": self.builds,
            "cold_hits": self.cold_hits,
            "cold_waited": self.cold_waited,
            "cold_hit_rate": self.cold_hit_rate,
            "hit_rate": self.hit_rate,
            # Back-compat aliases: dashboards reading the flat TPOCache
            # shape keep working against a two-tier store.
            "hits": self.hot.hits,
            "misses": self.hot.misses,
            "entries": len(self.hot),
            "capacity": self.hot.capacity,
        }

    def clear(self) -> None:
        """Drop the hot tier (the cold tier is shared; leave it alone)."""
        self.hot.clear()

    def close(self) -> None:
        """Release cold-tier resources owned by this process."""
        self.cold.close()

    def __repr__(self) -> str:
        return (
            f"TwoTierStore(hot={self.hot!r}, cold={self.cold!r}, "
            f"builds={self.builds})"
        )


__all__ = [
    "SpaceStore",
    "ColdTier",
    "MemoryColdTier",
    "DiskNpzColdTier",
    "SharedMemoryColdTier",
    "TwoTierStore",
]
