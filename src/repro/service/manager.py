"""Session lifecycle, durable event log, and cross-session coalescing.

:class:`SessionManager` owns many concurrent interactive sessions (one per
end user answering crowd questions) and makes them cheap to serve:

* the initial TPO of every session comes from a shared
  :class:`~repro.service.cache.TPOCache`, so hashed-equal instances pay
  one tree build;
* next-question rankings are memoized by *session state* — (instance
  hash, answer history) — and batches of pending requests are funnelled
  through :meth:`~repro.questions.residual.ResidualEvaluator.rank_singles_many`,
  so sessions in identical states (common early in their lifetime, and
  throughout for reliable crowds) share one scoring pass;
* every mutation is appended to a JSONL event log (the
  :mod:`repro.experiments.store` style: one strict-JSON line per event,
  flushed immediately, torn tail tolerated on load), so a killed manager
  resumes every in-flight session exactly where it stopped via
  :meth:`SessionManager.resume`.

Sessions are created from declarative *instance specs* — a
:class:`repro.api.InstanceSpec` or its wire-shaped dict form::

    {"workload": "uniform", "n": 20, "k": 5, "seed": 7,
     "params": {"width": 0.3}}

A spec is the canonical, hashable description of the uncertain instance —
the workload generator, its parameters, and the derived-seed RNG stream —
so two sessions with equal specs provably share a TPO, and a resumed
manager re-materializes identical instances from the log alone.
"""

from __future__ import annotations

import json
import math
import secrets
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Union

if TYPE_CHECKING:  # avoid importing the store stack at runtime
    from repro.service.store import SpaceStore

from repro.api._deprecation import warn_deprecated
from repro.api.specs import EngineSpec, InstanceSpec, as_instance_spec
from repro.core.session import InteractiveSession
from repro.distributions.base import ScoreDistribution
from repro.experiments.store import ensure_trailing_newline
from repro.questions.model import Question
from repro.questions.residual import ResidualEvaluator
from repro.service.cache import TPOCache, instance_key
from repro.tpo.builders import TPOBuilder
from repro.uncertainty.base import UncertaintyMeasure
from repro.uncertainty.entropy import EntropyMeasure

#: Anything :class:`pathlib.Path` accepts for the event-log location.
PathLike = Union[str, Path]


class UnknownSessionError(KeyError):
    """Raised when a session id names no live session."""


class ClosedSessionError(ValueError):
    """Raised when an operation targets a closed session."""


# ----------------------------------------------------------------------
# Instance specs (deprecated shims — the real thing is repro.api)
# ----------------------------------------------------------------------


def normalize_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Deprecated shim: use :class:`repro.api.InstanceSpec` instead.

    ``InstanceSpec.from_dict(spec).to_dict()`` produces the identical
    canonical dict this function always returned.
    """
    warn_deprecated(
        "repro.service.manager.normalize_spec", "repro.api.InstanceSpec"
    )
    return InstanceSpec.from_dict(spec).to_dict()


def materialize_instance(spec: Dict[str, Any]) -> List[ScoreDistribution]:
    """Deprecated shim: use :meth:`repro.api.InstanceSpec.materialize`."""
    warn_deprecated(
        "repro.service.manager.materialize_instance",
        "repro.api.InstanceSpec.materialize",
    )
    return as_instance_spec(spec).materialize()


def builder_signature(builder: TPOBuilder) -> Dict[str, Any]:
    """The builder configuration fields that shape the built TPO.

    Delegates to :meth:`repro.api.EngineSpec.signature_for` — the single
    canonical definition of the builder fingerprint — so cache keys
    computed here, by the sharded runtime, and by callers hashing an
    :class:`~repro.api.EngineSpec` directly always agree.
    """
    return EngineSpec.signature_for(builder)


# ----------------------------------------------------------------------
# Durable event log
# ----------------------------------------------------------------------


class EventLog:
    """Append-only JSONL log of session events (create / answer / close).

    Same durability contract as the experiment
    :class:`~repro.experiments.store.ResultStore`: one strict-JSON line
    per event, flushed as it happens, and a torn final line (killed
    mid-write) is skipped on load rather than poisoning the replay.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    def append(self, event: Dict[str, Any]) -> None:
        """Durably record one event."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        ensure_trailing_newline(self.path)
        with open(self.path, "a") as handle:
            handle.write(json.dumps(event, allow_nan=False) + "\n")
            handle.flush()

    def flush(self) -> int:
        """No-op: every :meth:`append` is already durable.  Returns the
        number of events written (always 0 here); see
        :class:`BufferedEventLog` for the deferred variant."""
        return 0

    def load(self) -> List[Dict[str, Any]]:
        """All parseable events, in append order."""
        events: List[Dict[str, Any]] = []
        if not self.path.exists():
            return events
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(event, dict) and "event" in event:
                    events.append(event)
        return events


class BufferedEventLog(EventLog):
    """:class:`EventLog` whose appends buffer in memory until :meth:`flush`.

    The asyncio server mutates sessions on the event-loop thread but must
    never block it on disk I/O (lint rule RPL004).  With this variant,
    :meth:`append` is a pure in-memory list append, and the handler awaits
    one :meth:`flush` hop through the server's log executor *before*
    responding — so the client-visible durability contract is unchanged
    (a 200 means the event is on disk) while the loop never waits on a
    file handle.

    Appends keep their order; ``flush`` writes the whole backlog through a
    single append-mode open with the same torn-tail healing as the eager
    log.  Two locks keep the threads honest: ``_lock`` guards the buffer
    (so the loop thread's ``append`` only ever waits for a list swap,
    never for the disk), and ``_flush_lock`` serializes whole flushes (so
    overlapping flushers cannot interleave batches out of order).
    """

    def __init__(self, path: PathLike) -> None:
        super().__init__(path)
        self._pending: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._flush_lock = threading.Lock()

    @property
    def pending(self) -> int:
        """Events buffered but not yet on disk."""
        with self._lock:
            return len(self._pending)

    def append(self, event: Dict[str, Any]) -> None:
        """Buffer one event (no disk I/O until :meth:`flush`)."""
        with self._lock:
            self._pending.append(event)

    def flush(self) -> int:
        """Write every buffered event durably; returns how many."""
        with self._flush_lock:
            with self._lock:
                batch, self._pending = self._pending, []
            if not batch:
                return 0
            self.path.parent.mkdir(parents=True, exist_ok=True)
            ensure_trailing_newline(self.path)
            with open(self.path, "a") as handle:
                for event in batch:
                    handle.write(json.dumps(event, allow_nan=False) + "\n")
                handle.flush()
            return len(batch)


# ----------------------------------------------------------------------
# The manager
# ----------------------------------------------------------------------


@dataclass
class ManagedSession:
    """One live session plus the bookkeeping the manager needs."""

    session_id: str
    spec: Dict[str, Any]
    tpo_key: str
    session: InteractiveSession
    status: str = "active"
    meta: Dict[str, Any] = field(default_factory=dict)


class SessionManager:
    """Runs many interactive sessions against shared, cached state.

    Parameters
    ----------
    cache:
        Shared TPO cache (default: a fresh 64-entry
        :class:`~repro.service.cache.TPOCache`; pass capacity 0 to
        disable sharing, as the benchmark baseline does).
    log_path:
        Optional JSONL event-log path.  When set, every create / answer /
        close is durably appended, and :meth:`resume` rebuilds the
        manager from that file.
    builder:
        TPO engine shared by all sessions (default: grid).
    measure:
        Uncertainty measure driving question ranking (default ``U_H``).
    ranking_memo_size:
        How many per-state next-question rankings to memoize (LRU).
        ``0`` disables both the memo and cross-session ranking sharing.
    """

    def __init__(
        self,
        cache: Optional["SpaceStore"] = None,
        log_path: Optional[PathLike] = None,
        builder: Optional[TPOBuilder] = None,
        measure: Optional[UncertaintyMeasure] = None,
        ranking_memo_size: int = 1024,
    ) -> None:
        if ranking_memo_size < 0:
            raise ValueError("ranking_memo_size must be >= 0")
        self.cache = cache if cache is not None else TPOCache()
        self.builder = (
            builder if builder is not None else EngineSpec().build()
        )
        self.measure = measure if measure is not None else EntropyMeasure()
        self.evaluator = ResidualEvaluator(self.measure)
        self.ranking_memo_size = int(ranking_memo_size)
        self._sessions: Dict[str, ManagedSession] = {}
        #: (tpo_key, answers_key) → (candidates, residuals).
        self._rankings: OrderedDict = OrderedDict()
        self._log: Optional[EventLog] = (
            EventLog(log_path) if log_path is not None else None
        )
        self.rankings_computed = 0
        self.rankings_memo_hits = 0
        self.rankings_coalesced = 0
        self.replay_skipped = 0

    # -- lookup --------------------------------------------------------

    def _get(self, session_id: str) -> ManagedSession:
        managed = self._sessions.get(session_id)
        if managed is None:
            raise UnknownSessionError(session_id)
        return managed

    def _active(self, session_id: str) -> ManagedSession:
        managed = self._get(session_id)
        if managed.status != "active":
            raise ClosedSessionError(f"session {session_id} is closed")
        return managed

    def session_ids(self, status: Optional[str] = "active") -> List[str]:
        """Ids of sessions with the given status (None = all), in creation
        order."""
        return [
            sid
            for sid, managed in self._sessions.items()
            if status is None or managed.status == status
        ]

    # -- lifecycle -----------------------------------------------------

    def create_session(
        self, spec: Any, session_id: Optional[str] = None
    ) -> str:
        """Create (and log) a session from an instance spec; returns its id.

        ``spec`` is a :class:`repro.api.InstanceSpec` or its wire-shaped
        dict form (the ``/v1`` create body).
        """
        sid = self._create(spec, session_id)
        if self._log is not None:
            self._log.append(
                {
                    "event": "create",
                    "session_id": sid,
                    "spec": self._sessions[sid].spec,
                }
            )
        return sid

    def _create(
        self, spec: Any, session_id: Optional[str] = None
    ) -> str:
        ispec = as_instance_spec(spec)
        spec = ispec.to_dict()
        sid = session_id if session_id is not None else secrets.token_hex(8)
        if sid in self._sessions:
            raise ValueError(f"session id {sid!r} already exists")
        distributions = ispec.materialize()
        tpo_key = instance_key(
            {"spec": spec, "builder": builder_signature(self.builder)}
        )
        space = self.cache.get_space(
            tpo_key,
            distributions,
            lambda: self.builder.build(distributions, spec["k"]),
        )
        session = InteractiveSession(
            distributions, spec["k"], space, evaluator=self.evaluator
        )
        self._sessions[sid] = ManagedSession(sid, spec, tpo_key, session)
        return sid

    def close_session(self, session_id: str) -> None:
        """Mark a session closed (it stays inspectable, not answerable)."""
        managed = self._get(session_id)
        if managed.status == "closed":
            return
        managed.status = "closed"
        if self._log is not None:
            self._log.append({"event": "close", "session_id": session_id})

    # -- question flow -------------------------------------------------

    def next_question(self, session_id: str) -> Optional[Question]:
        """The most informative question for one session (None = settled)."""
        return self.next_questions([session_id])[session_id]

    def next_questions(
        self, session_ids: Iterable[str]
    ) -> Dict[str, Optional[Question]]:
        """Coalesced next-question lookup for many sessions at once.

        Sessions in bit-identical states — same instance hash, same
        answer history — share one ranking: memoized rankings are reused
        directly, and the remaining distinct states are priced through a
        single :meth:`ResidualEvaluator.rank_singles_many` call.  This is
        the entry point the asyncio server funnels concurrent requests
        through.
        """
        results: Dict[str, Optional[Question]] = {}
        #: state → (candidates, [(sid, session), …]) for memo misses.
        needed: "OrderedDict" = OrderedDict()
        for sid in session_ids:
            managed = self._active(sid)
            state = (managed.tpo_key, managed.session.answers_key())
            memo = (
                self._rankings.get(state) if self.ranking_memo_size else None
            )
            if memo is not None:
                self._rankings.move_to_end(state)
                self.rankings_memo_hits += 1
                results[sid] = managed.session.next_question(memo)
                continue
            group = needed.get(state)
            if group is None:
                needed[state] = (
                    managed.session.candidates(),
                    [(sid, managed.session)],
                )
            else:
                group[1].append((sid, managed.session))
        if not needed:
            return results
        states = list(needed)
        requests = [
            (needed[state][1][0][1].space, needed[state][0])
            for state in states
        ]
        rankings = self.evaluator.rank_singles_many(requests, keys=states)
        self.rankings_computed += len(states)
        for state, residuals in zip(states, rankings, strict=True):
            candidates, members = needed[state]
            ranking = (candidates, residuals)
            self.rankings_coalesced += len(members) - 1
            if self.ranking_memo_size:
                self._rankings[state] = ranking
                while len(self._rankings) > self.ranking_memo_size:
                    self._rankings.popitem(last=False)
            for sid, session in members:
                results[sid] = session.next_question(ranking)
        return results

    def submit_answer(
        self,
        session_id: str,
        i: int,
        j: int,
        holds: bool,
        accuracy: float = 1.0,
    ) -> Dict[str, Any]:
        """Apply (and log) one answer: "t_i ranks above t_j" is ``holds``.

        The pair is canonicalized to ``i < j`` (flipping ``holds``
        accordingly), matching the :class:`Question` identity rules.
        """
        summary = self._submit(session_id, i, j, holds, accuracy)
        if self._log is not None:
            managed = self._get(session_id)
            last = managed.session.answers[-1]
            self._log.append(
                {
                    "event": "answer",
                    "session_id": session_id,
                    "i": last.question.i,
                    "j": last.question.j,
                    "holds": last.holds,
                    "accuracy": last.accuracy,
                }
            )
        return summary

    def _submit(
        self,
        session_id: str,
        i: int,
        j: int,
        holds: bool,
        accuracy: float,
    ) -> Dict[str, Any]:
        managed = self._active(session_id)
        i, j = int(i), int(j)
        if i > j:
            i, j, holds = j, i, not holds
        managed.session.submit_answer(
            Question(i, j), bool(holds), accuracy=float(accuracy)
        )
        return {
            "session_id": session_id,
            "questions_asked": managed.session.questions_asked,
            "orderings": managed.session.space.size,
            "settled": managed.session.is_settled,
        }

    # -- inspection ----------------------------------------------------

    @property
    def engine_key(self) -> str:
        """Content address of the shared engine configuration."""
        key = getattr(self, "_engine_key", None)
        if key is None:
            key = instance_key({"builder": builder_signature(self.builder)})
            self._engine_key = key
        return key

    def approximation(self, session_id: str) -> Optional[Dict[str, Any]]:
        """Typed approximation metadata for one session, or ``None``.

        Exact sessions (the historical default — zero certified lost
        mass) return ``None`` so their responses carry no new keys.
        Beam-approximate sessions report the space's certified
        ``lost_mass``, the measure's certified ``value_interval`` (or
        ``None`` when only the vacuous bound is available), and the
        ``engine_key`` identifying the beam configuration.
        """
        managed = self._get(session_id)
        space = managed.session.space
        if space.lost_mass <= 0.0:
            return None
        lo, hi = self.evaluator.uncertainty_interval(space)
        interval = (
            [float(lo), float(hi)]
            if math.isfinite(lo) and math.isfinite(hi)
            else None
        )
        return {
            "lost_mass": float(space.lost_mass),
            "value_interval": interval,
            "engine_key": self.engine_key,
        }

    def questions_asked(self, session_id: str) -> int:
        """Answers applied so far (cheap — no snapshot materialization)."""
        return self._get(session_id).session.questions_asked

    def snapshot(self, session_id: str) -> Dict[str, Any]:
        """Full JSON-portable state of one session (any status)."""
        managed = self._get(session_id)
        return {
            "session_id": session_id,
            "status": managed.status,
            "spec": managed.spec,
            "tpo_key": managed.tpo_key,
            "snapshot": managed.session.snapshot().to_dict(),
            "questions_asked": managed.session.questions_asked,
            "orderings": managed.session.space.size,
            "settled": managed.session.is_settled,
            "top_k": managed.session.top_k(),
        }

    def stats(self) -> Dict[str, Any]:
        """Service counters for the ``/stats`` endpoint and benchmarks."""
        by_status: Dict[str, int] = {}
        for managed in self._sessions.values():
            by_status[managed.status] = by_status.get(managed.status, 0) + 1
        stats = {
            "sessions": by_status,
            "cache": self.cache.stats(),
            "rankings": {
                "computed": self.rankings_computed,
                "memo_hits": self.rankings_memo_hits,
                "coalesced": self.rankings_coalesced,
            },
            "evaluations": self.evaluator.evaluations,
            "contradictions": self.evaluator.contradictions,
            "replay_skipped": self.replay_skipped,
        }
        if getattr(self.builder, "beam_active", False):
            lost = [
                managed.session.space.lost_mass
                for managed in self._sessions.values()
                if managed.status == "active"
            ]
            stats["approximation"] = {
                "lost_mass": max(lost, default=0.0),
                "value_interval": None,
                "engine_key": self.engine_key,
            }
        return stats

    # -- durability ----------------------------------------------------

    def defer_log_writes(self) -> bool:
        """Swap the eager event log for a :class:`BufferedEventLog`.

        After this, mutations buffer their events in memory and someone —
        the asyncio server, via its log executor — must call
        :meth:`flush_log` to make them durable.  Idempotent; returns
        whether a log is configured at all.
        """
        if self._log is not None and not isinstance(
            self._log, BufferedEventLog
        ):
            self._log = BufferedEventLog(self._log.path)
        return self._log is not None

    def flush_log(self) -> int:
        """Durably write any buffered events; returns how many were
        written (0 for the eager log, which never buffers)."""
        return self._log.flush() if self._log is not None else 0

    @classmethod
    def resume(cls, log_path: PathLike, **kwargs: Any) -> "SessionManager":
        """Rebuild a manager from its event log and keep logging to it.

        Replays every parseable event in order (create → answers →
        close); events whose session never materialized — e.g. answers
        after a torn create line — are counted in ``replay_skipped``
        rather than aborting the other sessions.  Sessions restore to the
        exact state they were killed in: the next question of a restored
        session equals the one the uninterrupted manager would ask.
        """
        manager = cls(log_path=None, **kwargs)
        events = EventLog(log_path).load()
        for event in events:
            manager._apply_event(event)
        manager._log = EventLog(log_path)
        return manager

    def _apply_event(self, event: Dict[str, Any]) -> None:
        kind = event.get("event")
        try:
            if kind == "create":
                self._create(event["spec"], event["session_id"])
            elif kind == "answer":
                self._submit(
                    event["session_id"],
                    event["i"],
                    event["j"],
                    event["holds"],
                    event.get("accuracy", 1.0),
                )
            elif kind == "close":
                managed = self._get(event["session_id"])
                managed.status = "closed"
            else:
                self.replay_skipped += 1
        except (KeyError, ValueError, TypeError):
            self.replay_skipped += 1

    def __repr__(self) -> str:
        return (
            f"SessionManager(sessions={len(self._sessions)}, "
            f"cache_hit_rate={self.cache.hit_rate:.2f})"
        )


__all__ = [
    "SessionManager",
    "ManagedSession",
    "EventLog",
    "BufferedEventLog",
    "UnknownSessionError",
    "ClosedSessionError",
    "normalize_spec",
    "materialize_instance",
    "builder_signature",
]
