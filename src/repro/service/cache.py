"""Content-addressed, bounded LRU cache of built TPOs.

Building the tree of possible orderings is the dominant per-session cost,
and it depends only on the *instance* — the score distributions, the query
depth K, and the builder configuration.  Sessions are therefore keyed by a
BLAKE2b hash of the canonical-JSON instance description (the same
addressing scheme :mod:`repro.experiments.grid` uses for grid cells): any
number of concurrent sessions over hashed-equal instances share one build.

Cached values are *initial* :class:`~repro.tpo.space.OrderingSpace`
objects.  Spaces are immutable — every answer produces a new space — so
sharing one across sessions is safe; the ``(L, N)`` ``positions()``
matrix is computed eagerly on insert, so concurrent sessions over the
same instance share one copy instead of racing to build their own (and
``reweight``/``restrict`` now carry it into their derived spaces).  On
insert the built tree is round-tripped through :mod:`repro.tpo.serialize`
(``tree_to_dict`` / ``tree_from_dict``), which drops builder engine
caches and guarantees the cached state is exactly what a cold rebuild
from the serialized form would produce — the property the manager's
resume path relies on.  Since the flat level-table refactor the
round-trip is cheap: deserialization fills per-level arrays and
``to_space`` is a batch of gathers, not a leaf walk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Sequence

from repro.api.canonical import content_key
from repro.distributions.base import ScoreDistribution
from repro.tpo.space import OrderingSpace
from repro.tpo.serialize import tree_from_dict, tree_to_dict
from repro.tpo.tree import TPOTree


def instance_key(payload: Any) -> str:
    """Stable 32-hex-digit content address of a JSON-serializable payload.

    Same recipe as :attr:`repro.experiments.grid.GridCell.cell_id`
    (canonical JSON → BLAKE2b via :mod:`repro.api.canonical`), with a
    wider digest since service keys are long-lived and cross instance
    universes.
    """
    return content_key(payload, digest_size=16)


class TPOCache:
    """Bounded LRU of initial ordering spaces, keyed by instance hash.

    Parameters
    ----------
    capacity:
        Maximum number of cached instances; least-recently-used entries
        are evicted beyond it.  ``0`` is the well-defined **disabled**
        configuration: the cache is a pure pass-through — every lookup
        misses, :meth:`insert` is a no-op, and the eviction counter never
        moves (no insert-then-immediately-evict churn) — which is what
        the service benchmark uses as its baseline and what
        ``repro serve --cache-capacity 0`` means.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, OrderingSpace]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether this cache stores anything at all (capacity > 0)."""
        return self.capacity > 0

    def lookup(self, key: str) -> Optional[OrderingSpace]:
        """The cached space for ``key`` (counting a hit), or ``None``
        (counting a miss).  A disabled cache always misses."""
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        return None

    def insert(self, key: str, space: OrderingSpace) -> None:
        """Store ``space`` under ``key`` (evicting LRU entries beyond
        capacity).  No-op when the cache is disabled."""
        if not self.enabled:
            return
        # Warm the (L, N) positions matrix once, up front: every session
        # sharing this entry reads it on its first agreement query, and
        # derived spaces (reweight/restrict) inherit it.
        space.positions()
        self._entries[key] = space
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_space(
        self,
        key: str,
        distributions: Sequence[ScoreDistribution],
        build: Callable[[], TPOTree],
    ) -> OrderingSpace:
        """The initial space for ``key``, building (and caching) on miss.

        ``build`` must construct the TPO of the instance ``key`` names;
        ``distributions`` are needed to rebuild the tree from its
        serialized form (the dict stores only tuple indices).
        """
        entry = self.lookup(key)
        if entry is not None:
            return entry
        payload = tree_to_dict(build())
        space = tree_from_dict(payload, list(distributions)).to_space()
        space.positions()
        self.insert(key, space)
        return space

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, Any]:
        """Counters for monitoring endpoints and benchmark artifacts."""
        return {
            "enabled": self.enabled,
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"TPOCache(capacity={self.capacity}, entries={len(self)}, "
            f"hit_rate={self.hit_rate:.2f})"
        )


__all__ = ["TPOCache", "instance_key"]
