"""Service-layer benchmark: sessions/sec and TPO-cache hit rate.

Drives the full service stack the way production traffic would — many
concurrent sessions over a small set of distinct instances, each pulling
its next question and submitting a (simulated) crowd answer until a
per-session answer budget is exhausted — and measures what the shared
state buys:

* **baseline** — cache capacity 0, ranking memo 0, per-session calls:
  every session pays its own TPO build and every ranking pass;
* **cached** — shared TPO cache plus coalesced ``next_questions`` waves:
  hashed-equal instances share one build, identical-state sessions share
  one ranking.

Gates (CI): cache hit rate ≥ 85 % and ≥ 3× sessions/sec over the
baseline at 64 sessions over 8 distinct instances, plus a kill/resume
equivalence check — the manager is dropped mid-run, resumed from its
event log, and must finish every session with results identical to an
uninterrupted run.

Run:  PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.api.specs import InstanceSpec
from repro.crowd.oracle import GroundTruth
from repro.crowd.simulator import SimulatedCrowd
from repro.service.cache import TPOCache
from repro.service.manager import SessionManager
from repro.tpo.builders import GridBuilder
from repro.utils.provenance import artifact_stamp
from repro.utils.rng import derive_seed, ensure_rng

HIT_RATE_FLOOR = 0.85
SPEEDUP_FLOOR = 3.0


def instance_specs(
    instances: int, n: int, k: int, width: float, base_seed: int = 2016
) -> List[Dict[str, Any]]:
    """``instances`` distinct specs differing only in their seed."""
    return [
        {
            "workload": "uniform",
            "n": n,
            "k": k,
            "seed": base_seed + index,
            "params": {"width": width},
        }
        for index in range(instances)
    ]


def make_crowds(specs: Sequence[Dict[str, Any]]) -> List[SimulatedCrowd]:
    """One reliable simulated crowd per instance spec.

    The ground truth derives from the spec seed, so every run — baseline,
    cached, interrupted, resumed — sees the same world and the same
    answers, which is what makes the resume-equivalence gate exact.
    """
    crowds = []
    for spec in specs:
        distributions = InstanceSpec.from_dict(spec).materialize()
        truth = GroundTruth.sample(
            distributions, ensure_rng(derive_seed(spec["seed"], "truth"))
        )
        crowds.append(SimulatedCrowd(truth, worker_accuracy=1.0))
    return crowds


def _fresh_builder(resolution: int) -> GridBuilder:
    return GridBuilder(resolution=resolution)


def create_sessions(
    manager: SessionManager, specs: Sequence[Dict[str, Any]], sessions: int
) -> List[Tuple[str, int]]:
    """Create ``sessions`` sessions round-robin over ``specs``.

    Ids are deterministic (``s0000``, ``s0001``, …) so an interrupted and
    an uninterrupted run are comparable session by session.
    """
    plan = []
    for index in range(sessions):
        spec_index = index % len(specs)
        sid = f"s{index:04d}"
        manager.create_session(specs[spec_index], session_id=sid)
        plan.append((sid, spec_index))
    return plan


def drive_sessions(
    manager: SessionManager,
    plan: Sequence[Tuple[str, int]],
    crowds: Sequence[SimulatedCrowd],
    answers_per_session: int,
    coalesce: bool = True,
    stop_after: Optional[int] = None,
) -> int:
    """Answer questions in waves until every session hits its budget.

    Returns the number of answers submitted by this call.  ``coalesce``
    switches between the service path (one ``next_questions`` call per
    wave) and the baseline path (one ``next_question`` call per session).
    ``stop_after`` aborts mid-run after that many submissions — the
    benchmark's "kill the manager" hook.
    """
    crowd_of = dict(plan)
    done: set = set()
    # Questions already asked (non-zero after a resume), tracked locally so
    # waves don't pay a manager lookup per session.
    asked = {sid: manager.questions_asked(sid) for sid, _ in plan}
    submitted = 0
    while True:
        active = [
            sid
            for sid, _ in plan
            if sid not in done and asked[sid] < answers_per_session
        ]
        if not active:
            break
        if coalesce:
            questions = manager.next_questions(active)
        else:
            questions = {sid: manager.next_question(sid) for sid in active}
        for sid in active:
            question = questions[sid]
            if question is None:
                done.add(sid)
                continue
            crowd = crowds[crowd_of[sid]]
            answer = crowd.ask(question)
            manager.submit_answer(
                sid,
                question.i,
                question.j,
                answer.holds,
                accuracy=answer.accuracy,
            )
            asked[sid] += 1
            submitted += 1
            if stop_after is not None and submitted >= stop_after:
                return submitted
    return submitted


def session_results(
    manager: SessionManager, plan: Sequence[Tuple[str, int]]
) -> Dict[str, Dict[str, Any]]:
    """Per-session outcome used for run-equivalence comparison."""
    results = {}
    for sid, _ in plan:
        snapshot = manager.snapshot(sid)
        results[sid] = {
            "questions_asked": snapshot["questions_asked"],
            "answers": snapshot["snapshot"]["answers"],
            "top_k": snapshot["top_k"],
            "settled": snapshot["settled"],
        }
    return results


def _timed_run(
    specs: Sequence[Dict[str, Any]],
    crowds: Sequence[SimulatedCrowd],
    sessions: int,
    answers: int,
    resolution: int,
    cached: bool,
) -> Dict[str, Any]:
    """One full create-and-drive pass; returns measurements."""
    capacity = 2 * len(specs) if cached else 0
    manager = SessionManager(
        cache=TPOCache(capacity=capacity),
        builder=_fresh_builder(resolution),
        ranking_memo_size=1024 if cached else 0,
    )
    start = time.perf_counter()
    plan = create_sessions(manager, specs, sessions)
    submitted = drive_sessions(
        manager, plan, crowds, answers, coalesce=cached
    )
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "sessions_per_sec": sessions / wall if wall > 0 else float("inf"),
        "answers_submitted": submitted,
        "cache": manager.cache.stats(),
        "rankings": manager.stats()["rankings"],
        "results": session_results(manager, plan),
    }


def _resume_check(
    specs: Sequence[Dict[str, Any]],
    crowds: Sequence[SimulatedCrowd],
    sessions: int,
    answers: int,
    resolution: int,
    reference: Dict[str, Dict[str, Any]],
    log_path: Path,
) -> Dict[str, Any]:
    """Kill a logged run mid-flight, resume it, and diff against
    ``reference``."""
    total_reference = sum(r["questions_asked"] for r in reference.values())
    stop_after = max(1, total_reference // 2)

    manager = SessionManager(
        cache=TPOCache(capacity=2 * len(specs)),
        builder=_fresh_builder(resolution),
        log_path=log_path,
    )
    plan = create_sessions(manager, specs, sessions)
    interrupted_at = drive_sessions(
        manager, plan, crowds, answers, stop_after=stop_after
    )
    del manager  # the "kill": only the event log survives

    resumed = SessionManager.resume(
        log_path,
        cache=TPOCache(capacity=2 * len(specs)),
        builder=_fresh_builder(resolution),
    )
    drive_sessions(resumed, plan, crowds, answers)
    resumed_results = session_results(resumed, plan)
    return {
        "checked": True,
        "interrupted_after_answers": interrupted_at,
        "reference_answers": total_reference,
        "identical": resumed_results == reference,
    }


def run(
    sessions: int = 64,
    instances: int = 8,
    answers: int = 20,
    n: int = 24,
    k: int = 4,
    width: float = 0.35,
    resolution: int = 640,
    json_path: Optional[str] = None,
    smoke: bool = False,
) -> int:
    """Run the benchmark; returns the number of failed gates."""
    if smoke:
        sessions, instances, answers = 8, 2, 5
        n, k, resolution = 12, 3, 256
    if instances > sessions:
        raise ValueError("need at least one session per instance")
    specs = instance_specs(instances, n, k, width)
    crowds = make_crowds(specs)
    print(
        f"service bench: {sessions} sessions over {instances} instances "
        f"(N={n}, K={k}, width={width}), {answers} answers each"
    )

    baseline = _timed_run(
        specs, crowds, sessions, answers, resolution, cached=False
    )
    cached = _timed_run(
        specs, crowds, sessions, answers, resolution, cached=True
    )
    speedup = baseline["wall_seconds"] / cached["wall_seconds"]
    hit_rate = cached["cache"]["hit_rate"]
    print(
        f"baseline : {baseline['wall_seconds']:7.2f}s  "
        f"{baseline['sessions_per_sec']:8.2f} sessions/s  "
        f"(no cache, no coalescing)"
    )
    print(
        f"cached   : {cached['wall_seconds']:7.2f}s  "
        f"{cached['sessions_per_sec']:8.2f} sessions/s  "
        f"hit-rate {hit_rate:.1%}  "
        f"rankings computed {cached['rankings']['computed']}, "
        f"coalesced {cached['rankings']['coalesced']}"
    )
    print(f"speedup  : {speedup:6.2f}x")
    if baseline["results"] != cached["results"]:
        print("  FAIL: cached run changed session outcomes")
        failures = 1
    else:
        failures = 0
    if not smoke:
        if hit_rate < HIT_RATE_FLOOR:
            print(f"  FAIL: hit rate below the {HIT_RATE_FLOOR:.0%} floor")
            failures += 1
        if speedup < SPEEDUP_FLOOR:
            print(f"  FAIL: speedup below the {SPEEDUP_FLOOR}x floor")
            failures += 1

    # A fresh directory every run: resuming against a stale log from an
    # earlier invocation would replay foreign events and fail the
    # equivalence gate spuriously.
    with tempfile.TemporaryDirectory() as tmp:
        resume = _resume_check(
            specs,
            crowds,
            sessions,
            answers,
            resolution,
            cached["results"],
            Path(tmp) / "service-events.jsonl",
        )
    print(
        f"resume   : killed after {resume['interrupted_after_answers']} of "
        f"{resume['reference_answers']} answers, resumed run identical: "
        f"{resume['identical']}"
    )
    if not resume["identical"]:
        print("  FAIL: resumed run differs from the uninterrupted run")
        failures += 1

    if json_path is not None:
        for measurement in (baseline, cached):
            measurement.pop("results")
        artifact = {
            "benchmark": "bench_service",
            **artifact_stamp(),
            "config": {
                "sessions": sessions,
                "instances": instances,
                "answers_per_session": answers,
                "n": n,
                "k": k,
                "width": width,
                "resolution": resolution,
                "smoke": smoke,
            },
            "baseline": baseline,
            "cached": cached,
            "speedup": speedup,
            "cache_hit_rate": hit_rate,
            "gates": {
                "hit_rate_floor": HIT_RATE_FLOOR,
                "speedup_floor": SPEEDUP_FLOOR,
                "gated": not smoke,
            },
            "resume": resume,
            "failures": failures,
        }
        Path(json_path).write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"wrote {json_path}")

    print("PASS" if failures == 0 else f"{failures} check(s) FAILED")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=64)
    parser.add_argument("--instances", type=int, default=8)
    parser.add_argument(
        "--answers", type=int, default=20, help="answer budget per session"
    )
    parser.add_argument("--n", type=int, default=24, help="tuples per instance")
    parser.add_argument("--k", type=int, default=4, help="top-K depth")
    parser.add_argument("--width", type=float, default=0.35, help="pdf width")
    parser.add_argument(
        "--resolution", type=int, default=640, help="grid-builder resolution"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance, no perf gates (CI smoke / laptops)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write measurements as a JSON artifact (BENCH_service.json)",
    )
    args = parser.parse_args(argv)
    return run(
        sessions=args.sessions,
        instances=args.instances,
        answers=args.answers,
        n=args.n,
        k=args.k,
        width=args.width,
        resolution=args.resolution,
        json_path=args.json,
        smoke=args.smoke,
    )


__all__ = [
    "run",
    "main",
    "instance_specs",
    "make_crowds",
    "create_sessions",
    "drive_sessions",
    "session_results",
    "HIT_RATE_FLOOR",
    "SPEEDUP_FLOOR",
]
