"""Service-layer benchmark: sessions/sec and TPO-cache hit rate.

Drives the full service stack the way production traffic would — many
concurrent sessions over a small set of distinct instances, each pulling
its next question and submitting a (simulated) crowd answer until a
per-session answer budget is exhausted — and measures what the shared
state buys:

* **baseline** — cache capacity 0, ranking memo 0, per-session calls:
  every session pays its own TPO build and every ranking pass;
* **cached** — shared TPO cache plus coalesced ``next_questions`` waves:
  hashed-equal instances share one build, identical-state sessions share
  one ranking.

Gates (CI): cache hit rate ≥ 85 % and ≥ 3× sessions/sec over the
baseline at 64 sessions over 8 distinct instances, plus a kill/resume
equivalence check — the manager is dropped mid-run, resumed from its
event log, and must finish every session with results identical to an
uninterrupted run.

The multi-worker variant (``--multi`` / ``bench-service-multi`` in CI)
drives the same instance mix through a sharded fleet: N worker processes,
sessions placed by :func:`repro.service.sharding.shard_for`, TPOs shared
through a disk-npz cold tier.  Its gates: ≥ 2× sessions/sec at 4 workers
vs the single-process run, cold-tier hit rate ≥ 50 % across workers,
fleet results identical to the single-process run, and kill-one-worker /
resume equivalence (one shard is interrupted mid-run, the whole fleet is
resumed from its per-shard event logs, merged results bit-identical).

Run:  PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--json PATH]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.canonical import content_key
from repro.api.specs import EngineSpec, InstanceSpec
from repro.crowd.oracle import GroundTruth
from repro.crowd.simulator import SimulatedCrowd
from repro.service.cache import TPOCache
from repro.service.manager import SessionManager
from repro.tpo.builders import TPOBuilder
from repro.utils.provenance import artifact_stamp
from repro.utils.rng import derive_seed, ensure_rng

HIT_RATE_FLOOR = 0.85
SPEEDUP_FLOOR = 3.0
MULTI_SPEEDUP_FLOOR = 2.0
COLD_HIT_RATE_FLOOR = 0.5


def instance_specs(
    instances: int, n: int, k: int, width: float, base_seed: int = 2016
) -> List[Dict[str, Any]]:
    """``instances`` distinct specs differing only in their seed."""
    return [
        {
            "workload": "uniform",
            "n": n,
            "k": k,
            "seed": base_seed + index,
            "params": {"width": width},
        }
        for index in range(instances)
    ]


def make_crowds(specs: Sequence[Dict[str, Any]]) -> List[SimulatedCrowd]:
    """One reliable simulated crowd per instance spec.

    The ground truth derives from the spec seed, so every run — baseline,
    cached, interrupted, resumed — sees the same world and the same
    answers, which is what makes the resume-equivalence gate exact.
    """
    crowds = []
    for spec in specs:
        distributions = InstanceSpec.from_dict(spec).materialize()
        truth = GroundTruth.sample(
            distributions, ensure_rng(derive_seed(spec["seed"], "truth"))
        )
        crowds.append(SimulatedCrowd(truth, worker_accuracy=1.0))
    return crowds


def _fresh_builder(resolution: int) -> TPOBuilder:
    return EngineSpec("grid", {"resolution": resolution}).build()


def create_sessions(
    manager: SessionManager, specs: Sequence[Dict[str, Any]], sessions: int
) -> List[Tuple[str, int]]:
    """Create ``sessions`` sessions round-robin over ``specs``.

    Ids are deterministic (``s0000``, ``s0001``, …) so an interrupted and
    an uninterrupted run are comparable session by session.
    """
    plan = []
    for index in range(sessions):
        spec_index = index % len(specs)
        sid = f"s{index:04d}"
        manager.create_session(specs[spec_index], session_id=sid)
        plan.append((sid, spec_index))
    return plan


def drive_sessions(
    manager: SessionManager,
    plan: Sequence[Tuple[str, int]],
    crowds: Sequence[Union[SimulatedCrowd, "SessionCrowd"]],
    answers_per_session: int,
    coalesce: bool = True,
    stop_after: Optional[int] = None,
) -> int:
    """Answer questions in waves until every session hits its budget.

    Returns the number of answers submitted by this call.  ``crowds`` is
    any table of ``.ask(question)`` answer sources — per-instance
    :class:`SimulatedCrowd` rows or per-session :class:`SessionCrowd`
    rows, indexed by the plan's second element.  ``coalesce`` switches
    between the service path (one ``next_questions`` call per wave) and
    the baseline path (one ``next_question`` call per session).
    ``stop_after`` aborts mid-run after that many submissions — the
    benchmark's "kill the manager" hook.
    """
    crowd_of = dict(plan)
    done: set = set()
    # Questions already asked (non-zero after a resume), tracked locally so
    # waves don't pay a manager lookup per session.
    asked = {sid: manager.questions_asked(sid) for sid, _ in plan}
    submitted = 0
    while True:
        active = [
            sid
            for sid, _ in plan
            if sid not in done and asked[sid] < answers_per_session
        ]
        if not active:
            break
        if coalesce:
            questions = manager.next_questions(active)
        else:
            questions = {sid: manager.next_question(sid) for sid in active}
        for sid in active:
            question = questions[sid]
            if question is None:
                done.add(sid)
                continue
            crowd = crowds[crowd_of[sid]]
            answer = crowd.ask(question)
            manager.submit_answer(
                sid,
                question.i,
                question.j,
                answer.holds,
                accuracy=answer.accuracy,
            )
            asked[sid] += 1
            submitted += 1
            if stop_after is not None and submitted >= stop_after:
                return submitted
    return submitted


def session_results(
    manager: SessionManager, plan: Sequence[Tuple[str, int]]
) -> Dict[str, Dict[str, Any]]:
    """Per-session outcome used for run-equivalence comparison."""
    results = {}
    for sid, _ in plan:
        snapshot = manager.snapshot(sid)
        results[sid] = {
            "questions_asked": snapshot["questions_asked"],
            "answers": snapshot["snapshot"]["answers"],
            "top_k": snapshot["top_k"],
            "settled": snapshot["settled"],
        }
    return results


def _timed_run(
    specs: Sequence[Dict[str, Any]],
    crowds: Sequence[SimulatedCrowd],
    sessions: int,
    answers: int,
    resolution: int,
    cached: bool,
) -> Dict[str, Any]:
    """One full create-and-drive pass; returns measurements."""
    capacity = 2 * len(specs) if cached else 0
    manager = SessionManager(
        cache=TPOCache(capacity=capacity),
        builder=_fresh_builder(resolution),
        ranking_memo_size=1024 if cached else 0,
    )
    start = time.perf_counter()
    plan = create_sessions(manager, specs, sessions)
    submitted = drive_sessions(
        manager, plan, crowds, answers, coalesce=cached
    )
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "sessions_per_sec": sessions / wall if wall > 0 else float("inf"),
        "answers_submitted": submitted,
        "cache": manager.cache.stats(),
        "rankings": manager.stats()["rankings"],
        "results": session_results(manager, plan),
    }


def _resume_check(
    specs: Sequence[Dict[str, Any]],
    crowds: Sequence[SimulatedCrowd],
    sessions: int,
    answers: int,
    resolution: int,
    reference: Dict[str, Dict[str, Any]],
    log_path: Path,
) -> Dict[str, Any]:
    """Kill a logged run mid-flight, resume it, and diff against
    ``reference``."""
    total_reference = sum(r["questions_asked"] for r in reference.values())
    stop_after = max(1, total_reference // 2)

    manager = SessionManager(
        cache=TPOCache(capacity=2 * len(specs)),
        builder=_fresh_builder(resolution),
        log_path=log_path,
    )
    plan = create_sessions(manager, specs, sessions)
    interrupted_at = drive_sessions(
        manager, plan, crowds, answers, stop_after=stop_after
    )
    del manager  # the "kill": only the event log survives

    resumed = SessionManager.resume(
        log_path,
        cache=TPOCache(capacity=2 * len(specs)),
        builder=_fresh_builder(resolution),
    )
    drive_sessions(resumed, plan, crowds, answers)
    resumed_results = session_results(resumed, plan)
    return {
        "checked": True,
        "interrupted_after_answers": interrupted_at,
        "reference_answers": total_reference,
        "identical": resumed_results == reference,
    }


# ----------------------------------------------------------------------
# Multi-worker variant
# ----------------------------------------------------------------------


class SessionCrowd:
    """Deterministic per-session crowd: a pure function of the question.

    The answer to ``(i, j)`` depends only on ``(salt, i, j)`` — never on
    call order — so it is identical across processes, interleavings, and
    resume replays.  A per-session ``salt`` makes different sessions of
    the same instance answer differently (a BLAKE2b-derived fraction of
    answers is flipped and submitted at sub-certain accuracy, so flips
    reweight rather than contradict): their states diverge, which is
    what makes multi-worker ranking work actually parallel instead of a
    replica of the same shared states on every worker.
    """

    def __init__(
        self,
        truth: GroundTruth,
        salt: str,
        flip_percent: int = 25,
        accuracy: float = 0.9,
    ) -> None:
        self.truth = truth
        self.salt = salt
        self.flip_percent = int(flip_percent)
        self.accuracy = float(accuracy)

    def ask(self, question: Any) -> "SessionCrowd._Answer":
        digest = content_key(
            [self.salt, int(question.i), int(question.j)], digest_size=2
        )
        flip = int(digest, 16) % 100 < self.flip_percent
        return self._Answer(
            holds=self.truth.holds(question) ^ flip,
            accuracy=self.accuracy,
        )

    class _Answer:
        def __init__(self, holds: bool, accuracy: float) -> None:
            self.holds = holds
            self.accuracy = accuracy


def _session_crowds(
    specs: Sequence[Dict[str, Any]], plan: Sequence[Tuple[str, int]]
) -> List[SessionCrowd]:
    """One :class:`SessionCrowd` per plan entry, in plan order."""
    truths: Dict[int, GroundTruth] = {}
    crowds = []
    for sid, spec_index in plan:
        if spec_index not in truths:
            spec = specs[spec_index]
            distributions = InstanceSpec.from_dict(spec).materialize()
            truths[spec_index] = GroundTruth.sample(
                distributions,
                ensure_rng(derive_seed(spec["seed"], "truth")),
            )
        crowds.append(SessionCrowd(truths[spec_index], salt=sid))
    return crowds


def _drive_with_session_crowds(
    manager: SessionManager,
    specs: Sequence[Dict[str, Any]],
    plan: Sequence[Tuple[str, int]],
    answers: int,
    stop_after: Optional[int] = None,
) -> int:
    """Drive ``plan`` with per-session crowds (positional crowd table)."""
    crowds = _session_crowds(specs, plan)
    drive_plan = [(sid, pos) for pos, (sid, _) in enumerate(plan)]
    return drive_sessions(
        manager, drive_plan, crowds, answers, stop_after=stop_after
    )


def _timed_single_reference(
    specs: Sequence[Dict[str, Any]],
    sessions: int,
    answers: int,
    resolution: int,
) -> Dict[str, Any]:
    """Single-process reference pass driven by per-session crowds.

    The mirror of :func:`_timed_run` with ``cached=True``, but answering
    through the same :class:`SessionCrowd` table the fleet workers use —
    the fleet/single comparison is only meaningful when both sides see
    the identical answer stream.
    """
    manager = SessionManager(
        cache=TPOCache(capacity=2 * len(specs)),
        builder=_fresh_builder(resolution),
        ranking_memo_size=1024,
    )
    start = time.perf_counter()
    plan = create_sessions(manager, specs, sessions)
    submitted = _drive_with_session_crowds(manager, specs, plan, answers)
    wall = time.perf_counter() - start
    return {
        "wall_seconds": wall,
        "sessions_per_sec": sessions / wall if wall > 0 else float("inf"),
        "answers_submitted": submitted,
        "cache": manager.cache.stats(),
        "rankings": manager.stats()["rankings"],
        "results": session_results(manager, plan),
    }


def _multi_plans(
    sessions: int, instances: int, workers: int
) -> List[List[Tuple[int, int]]]:
    """Per-worker session plans under BLAKE2b sharding.

    Entries are ``(session_index, spec_index)``; the session id is always
    ``s{index:04d}``, so the merged fleet plan is exactly the
    single-process plan — which is what makes fleet results directly
    comparable session by session.
    """
    from repro.service.sharding import shard_for

    plans: List[List[Tuple[int, int]]] = [[] for _ in range(workers)]
    for index in range(sessions):
        shard = shard_for(f"s{index:04d}", workers)
        plans[shard].append((index, index % instances))
    return plans


def _run_bench_worker(config: Dict[str, Any]) -> Dict[str, Any]:
    """One fleet worker: build a two-tier store, create (or resume) its
    shard of the sessions, drive them, report wall + stats + results.

    Module-level so every multiprocessing start method can pickle it.
    """
    from repro.service.store import DiskNpzColdTier, TwoTierStore

    specs = config["specs"]
    plan = [(f"s{index:04d}", spec) for index, spec in config["plan"]]
    builder = _fresh_builder(config["resolution"])
    store = TwoTierStore(
        hot=TPOCache(capacity=config["hot_capacity"]),
        cold=DiskNpzColdTier(config["store_dir"]),
    )
    log_path = config.get("log_path")
    start = time.perf_counter()
    if config.get("resume"):
        manager = SessionManager.resume(
            log_path, cache=store, builder=builder
        )
        submitted = _drive_with_session_crowds(
            manager, specs, plan, config["answers"]
        )
    else:
        manager = SessionManager(
            cache=store, builder=builder, log_path=log_path
        )
        for sid, spec_index in plan:
            manager.create_session(specs[spec_index], session_id=sid)
        submitted = _drive_with_session_crowds(
            manager,
            specs,
            plan,
            config["answers"],
            stop_after=config.get("stop_after"),
        )
    wall = time.perf_counter() - start
    return {
        "shard": config["shard"],
        "wall_seconds": wall,
        "answers_submitted": submitted,
        "sessions": len(plan),
        "store": manager.cache.stats(),
        "results": session_results(manager, plan),
    }


def _pool(workers: int) -> ProcessPoolExecutor:
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


def _run_fleet(
    specs: Sequence[Dict[str, Any]],
    plans: Sequence[Sequence[Tuple[int, int]]],
    answers: int,
    resolution: int,
    store_dir: Path,
    log_base: Optional[Path] = None,
    resume: bool = False,
    stop_shard: Optional[int] = None,
    stop_after: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Run every worker's pass concurrently; returns per-worker reports."""
    from repro.service.sharding import worker_log_path

    configs = []
    for shard, plan in enumerate(plans):
        configs.append(
            {
                "shard": shard,
                "specs": list(specs),
                "plan": list(plan),
                "answers": answers,
                "resolution": resolution,
                "hot_capacity": 2 * len(specs),
                "store_dir": str(store_dir),
                "log_path": (
                    str(worker_log_path(log_base, shard))
                    if log_base is not None
                    else None
                ),
                "resume": resume,
                "stop_after": (
                    stop_after if shard == stop_shard else None
                ),
            }
        )
    with _pool(len(plans)) as pool:
        return list(pool.map(_run_bench_worker, configs))


def _merge_fleet(
    reports: Sequence[Dict[str, Any]],
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, Any]]:
    """Merged per-session results + aggregated store counters."""
    results: Dict[str, Dict[str, Any]] = {}
    cold_hits = cold_waited = builds = 0
    store_bytes = 0
    for report in reports:
        results.update(report["results"])
        store = report["store"]
        cold_hits += store.get("cold_hits", 0)
        cold_waited += store.get("cold_waited", 0)
        builds += store.get("builds", 0)
        store_bytes = max(
            store_bytes, store.get("cold", {}).get("bytes", 0)
        )
    shared = cold_hits + cold_waited
    consults = shared + builds
    return results, {
        "cold_hits": cold_hits,
        "cold_waited": cold_waited,
        "builds": builds,
        "cold_hit_rate": shared / consults if consults else 0.0,
        "store_bytes": store_bytes,
    }


def run_multi(
    sessions: int = 64,
    instances: int = 8,
    answers: int = 20,
    n: int = 24,
    k: int = 4,
    width: float = 0.35,
    resolution: int = 640,
    workers: int = 4,
    json_path: Optional[str] = None,
    smoke: bool = False,
) -> int:
    """Multi-worker benchmark; returns the number of failed gates."""
    if smoke:
        sessions, instances, answers = 8, 2, 5
        n, k, resolution = 12, 3, 256
        workers = min(workers, 2)
    if instances > sessions:
        raise ValueError("need at least one session per instance")
    specs = instance_specs(instances, n, k, width)
    plans = _multi_plans(sessions, instances, workers)
    print(
        f"service bench (multi): {sessions} sessions over {instances} "
        f"instances (N={n}, K={k}, width={width}), {answers} answers "
        f"each, {workers} workers"
    )

    single = _timed_single_reference(specs, sessions, answers, resolution)
    print(
        f"single   : {single['wall_seconds']:7.2f}s  "
        f"{single['sessions_per_sec']:8.2f} sessions/s  "
        f"(1 process, shared cache)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        reports = _run_fleet(
            specs, plans, answers, resolution, Path(tmp) / "cold"
        )
    fleet_wall = max(r["wall_seconds"] for r in reports)
    fleet_rate = sessions / fleet_wall if fleet_wall > 0 else float("inf")
    multi_results, store = _merge_fleet(reports)
    speedup = fleet_rate / single["sessions_per_sec"]
    print(
        f"fleet    : {fleet_wall:7.2f}s  {fleet_rate:8.2f} sessions/s  "
        f"cold-tier hit-rate {store['cold_hit_rate']:.1%}  "
        f"({store['builds']} builds, "
        f"{store['cold_hits'] + store['cold_waited']} shared)"
    )
    print(f"speedup  : {speedup:6.2f}x over single-process")

    failures = 0
    if multi_results != single["results"]:
        print("  FAIL: fleet run changed session outcomes")
        failures += 1
    if not smoke:
        if speedup < MULTI_SPEEDUP_FLOOR:
            print(
                f"  FAIL: speedup below the {MULTI_SPEEDUP_FLOOR}x floor"
            )
            failures += 1
        if store["cold_hit_rate"] < COLD_HIT_RATE_FLOOR:
            print(
                f"  FAIL: cold-tier hit rate below the "
                f"{COLD_HIT_RATE_FLOOR:.0%} floor"
            )
            failures += 1

    # Kill one worker mid-run, then resume the whole fleet from its
    # per-shard event logs: merged results must be bit-identical.
    stop_shard = max(range(workers), key=lambda w: len(plans[w]))
    shard_sids = [f"s{i:04d}" for i, _ in plans[stop_shard]]
    shard_reference = sum(
        single["results"][sid]["questions_asked"] for sid in shard_sids
    )
    stop_after = max(1, shard_reference // 2)
    with tempfile.TemporaryDirectory() as tmp:
        log_base = Path(tmp) / "events.jsonl"
        _run_fleet(
            specs,
            plans,
            answers,
            resolution,
            Path(tmp) / "cold",
            log_base=log_base,
            stop_shard=stop_shard,
            stop_after=stop_after,
        )
        resumed = _run_fleet(
            specs,
            plans,
            answers,
            resolution,
            Path(tmp) / "cold",
            log_base=log_base,
            resume=True,
        )
    resumed_results, _ = _merge_fleet(resumed)
    identical = resumed_results == single["results"]
    print(
        f"resume   : shard {stop_shard} killed after {stop_after} of "
        f"{shard_reference} answers, resumed fleet identical: {identical}"
    )
    if not identical:
        print("  FAIL: resumed fleet differs from the uninterrupted run")
        failures += 1

    if json_path is not None:
        single.pop("results")
        for report in reports:
            report.pop("results")
        artifact = {
            "benchmark": "bench_service_multi",
            **artifact_stamp(),
            "config": {
                "sessions": sessions,
                "instances": instances,
                "answers_per_session": answers,
                "n": n,
                "k": k,
                "width": width,
                "resolution": resolution,
                "workers": workers,
                "smoke": smoke,
            },
            "single": single,
            "fleet": {
                "wall_seconds": fleet_wall,
                "sessions_per_sec": fleet_rate,
                "workers": reports,
                "store": store,
            },
            "speedup": speedup,
            "cold_hit_rate": store["cold_hit_rate"],
            "gates": {
                "speedup_floor": MULTI_SPEEDUP_FLOOR,
                "cold_hit_rate_floor": COLD_HIT_RATE_FLOOR,
                "gated": not smoke,
            },
            "resume": {
                "checked": True,
                "stop_shard": stop_shard,
                "interrupted_after_answers": stop_after,
                "reference_answers": shard_reference,
                "identical": identical,
            },
            "failures": failures,
        }
        Path(json_path).write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"wrote {json_path}")

    print("PASS" if failures == 0 else f"{failures} check(s) FAILED")
    return failures


def run(
    sessions: int = 64,
    instances: int = 8,
    answers: int = 20,
    n: int = 24,
    k: int = 4,
    width: float = 0.35,
    resolution: int = 640,
    json_path: Optional[str] = None,
    smoke: bool = False,
) -> int:
    """Run the benchmark; returns the number of failed gates."""
    if smoke:
        sessions, instances, answers = 8, 2, 5
        n, k, resolution = 12, 3, 256
    if instances > sessions:
        raise ValueError("need at least one session per instance")
    specs = instance_specs(instances, n, k, width)
    crowds = make_crowds(specs)
    print(
        f"service bench: {sessions} sessions over {instances} instances "
        f"(N={n}, K={k}, width={width}), {answers} answers each"
    )

    baseline = _timed_run(
        specs, crowds, sessions, answers, resolution, cached=False
    )
    cached = _timed_run(
        specs, crowds, sessions, answers, resolution, cached=True
    )
    speedup = baseline["wall_seconds"] / cached["wall_seconds"]
    hit_rate = cached["cache"]["hit_rate"]
    print(
        f"baseline : {baseline['wall_seconds']:7.2f}s  "
        f"{baseline['sessions_per_sec']:8.2f} sessions/s  "
        f"(no cache, no coalescing)"
    )
    print(
        f"cached   : {cached['wall_seconds']:7.2f}s  "
        f"{cached['sessions_per_sec']:8.2f} sessions/s  "
        f"hit-rate {hit_rate:.1%}  "
        f"rankings computed {cached['rankings']['computed']}, "
        f"coalesced {cached['rankings']['coalesced']}"
    )
    print(f"speedup  : {speedup:6.2f}x")
    if baseline["results"] != cached["results"]:
        print("  FAIL: cached run changed session outcomes")
        failures = 1
    else:
        failures = 0
    if not smoke:
        if hit_rate < HIT_RATE_FLOOR:
            print(f"  FAIL: hit rate below the {HIT_RATE_FLOOR:.0%} floor")
            failures += 1
        if speedup < SPEEDUP_FLOOR:
            print(f"  FAIL: speedup below the {SPEEDUP_FLOOR}x floor")
            failures += 1

    # A fresh directory every run: resuming against a stale log from an
    # earlier invocation would replay foreign events and fail the
    # equivalence gate spuriously.
    with tempfile.TemporaryDirectory() as tmp:
        resume = _resume_check(
            specs,
            crowds,
            sessions,
            answers,
            resolution,
            cached["results"],
            Path(tmp) / "service-events.jsonl",
        )
    print(
        f"resume   : killed after {resume['interrupted_after_answers']} of "
        f"{resume['reference_answers']} answers, resumed run identical: "
        f"{resume['identical']}"
    )
    if not resume["identical"]:
        print("  FAIL: resumed run differs from the uninterrupted run")
        failures += 1

    if json_path is not None:
        for measurement in (baseline, cached):
            measurement.pop("results")
        artifact = {
            "benchmark": "bench_service",
            **artifact_stamp(),
            "config": {
                "sessions": sessions,
                "instances": instances,
                "answers_per_session": answers,
                "n": n,
                "k": k,
                "width": width,
                "resolution": resolution,
                "smoke": smoke,
            },
            "baseline": baseline,
            "cached": cached,
            "speedup": speedup,
            "cache_hit_rate": hit_rate,
            "gates": {
                "hit_rate_floor": HIT_RATE_FLOOR,
                "speedup_floor": SPEEDUP_FLOOR,
                "gated": not smoke,
            },
            "resume": resume,
            "failures": failures,
        }
        Path(json_path).write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"wrote {json_path}")

    print("PASS" if failures == 0 else f"{failures} check(s) FAILED")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=64)
    parser.add_argument("--instances", type=int, default=8)
    parser.add_argument(
        "--answers", type=int, default=20, help="answer budget per session"
    )
    parser.add_argument("--n", type=int, default=24, help="tuples per instance")
    parser.add_argument("--k", type=int, default=4, help="top-K depth")
    parser.add_argument("--width", type=float, default=0.35, help="pdf width")
    parser.add_argument(
        "--resolution", type=int, default=640, help="grid-builder resolution"
    )
    parser.add_argument(
        "--multi",
        action="store_true",
        help="benchmark the sharded multi-worker runtime instead",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker processes for --multi",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance, no perf gates (CI smoke / laptops)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write measurements as a JSON artifact (BENCH_service.json)",
    )
    args = parser.parse_args(argv)
    if args.multi:
        return run_multi(
            sessions=args.sessions,
            instances=args.instances,
            answers=args.answers,
            n=args.n,
            k=args.k,
            width=args.width,
            resolution=args.resolution,
            workers=args.workers,
            json_path=args.json,
            smoke=args.smoke,
        )
    return run(
        sessions=args.sessions,
        instances=args.instances,
        answers=args.answers,
        n=args.n,
        k=args.k,
        width=args.width,
        resolution=args.resolution,
        json_path=args.json,
        smoke=args.smoke,
    )


__all__ = [
    "run",
    "run_multi",
    "main",
    "instance_specs",
    "make_crowds",
    "SessionCrowd",
    "create_sessions",
    "drive_sessions",
    "session_results",
    "HIT_RATE_FLOOR",
    "SPEEDUP_FLOOR",
    "MULTI_SPEEDUP_FLOOR",
    "COLD_HIT_RATE_FLOOR",
]
