"""Typed models of the versioned ``/v1`` service wire protocol.

The HTTP layer (:mod:`repro.service.server`) never hand-builds JSON for
the versioned surface: every request body is parsed into a frozen request
dataclass (validating types and required fields), and every response is a
frozen response dataclass rendered through ``to_payload()``.  Clients and
the nightly benchmarks can therefore depend on the exact shapes below —
the protocol is frozen per version, and breaking changes require ``/v2``.

Error envelope
--------------
Every non-2xx response on the versioned surface carries one uniform JSON
envelope::

    {"error": {"code": "not_found", "message": "no session 'x'",
               "detail": {...}}}

``code`` is a stable machine-readable slug per status (see
:data:`ERROR_CODES`), ``message`` is human-readable, and ``detail`` is an
optional object with structured context (e.g. the ``allow`` list on 405).
The legacy unversioned routes keep their historical flat
``{"error": "<message>"}`` shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.api.specs import InstanceSpec

#: The protocol version this module describes (the URL prefix).
PROTOCOL_VERSION = "v1"

#: Stable machine-readable error codes per HTTP status.
ERROR_CODES: Dict[int, str] = {
    400: "bad_request",
    404: "not_found",
    405: "method_not_allowed",
    409: "conflict",
    413: "payload_too_large",
    500: "internal",
    502: "bad_gateway",
    503: "unavailable",
}

#: HTTP reason phrases for the statuses the service emits.
REASON_PHRASES: Dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}


class ProtocolError(ValueError):
    """A request body that does not match its typed model."""


def _require(body: Mapping, fields: Tuple[str, ...], what: str) -> None:
    missing = [name for name in fields if name not in body]
    if missing:
        raise ProtocolError(f"{what} needs fields {sorted(missing)}")


def _object_body(body: Any, what: str) -> Mapping:
    if not isinstance(body, Mapping):
        raise ProtocolError(f"{what} must be a JSON object")
    return body


# ----------------------------------------------------------------------
# Error envelope
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ErrorEnvelope:
    """The uniform ``/v1`` error body."""

    status: int
    message: str
    code: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, Any]:
        code = self.code or ERROR_CODES.get(self.status, "error")
        error: Dict[str, Any] = {"code": code, "message": self.message}
        if self.detail:
            error["detail"] = dict(self.detail)
        return {"error": error}

    def to_legacy_payload(self) -> Dict[str, Any]:
        """The historical flat shape of the unversioned routes."""
        return {"error": self.message}


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CreateSessionRequest:
    """``POST /v1/sessions`` — create a session from an instance spec."""

    spec: InstanceSpec
    session_id: Optional[str] = None

    @classmethod
    def from_body(cls, body: Any) -> "CreateSessionRequest":
        body = _object_body(body, "create-session request")
        _require(body, ("spec",), "create-session request")
        session_id = body.get("session_id")
        if session_id is not None and not isinstance(session_id, str):
            raise ProtocolError("session_id must be a string")
        unknown = set(body) - {"spec", "session_id"}
        if unknown:
            raise ProtocolError(
                f"unknown create-session fields: {sorted(unknown)}"
            )
        return cls(
            spec=InstanceSpec.from_dict(body["spec"]), session_id=session_id
        )


@dataclass(frozen=True)
class AnswerRequest:
    """``POST /v1/sessions/<id>/answers`` — apply one crowd answer."""

    i: int
    j: int
    holds: bool
    accuracy: float = 1.0

    @classmethod
    def from_body(cls, body: Any, strict: bool = True) -> "AnswerRequest":
        """Parse an answer body.

        ``strict`` (the versioned surface) rejects unknown fields, so a
        misspelled ``accuracy`` key cannot silently apply a full-weight
        answer; the legacy routes keep their historical leniency.
        """
        body = _object_body(body, "answer")
        _require(body, ("i", "j", "holds"), "answer")
        if strict:
            unknown = set(body) - {"i", "j", "holds", "accuracy"}
            if unknown:
                raise ProtocolError(
                    f"unknown answer fields: {sorted(unknown)}"
                )
        try:
            return cls(
                i=int(body["i"]),
                j=int(body["j"]),
                holds=bool(body["holds"]),
                accuracy=float(body.get("accuracy", 1.0)),
            )
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad answer field types: {exc}") from None


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CreateSessionResponse:
    session_id: str

    def to_payload(self) -> Dict[str, Any]:
        return {"session_id": self.session_id}


@dataclass(frozen=True)
class SessionListResponse:
    sessions: List[str]

    def to_payload(self) -> Dict[str, Any]:
        return {"sessions": list(self.sessions)}


@dataclass(frozen=True)
class ApproximationInfo:
    """Certified approximation metadata of a beam-built session.

    Attached only when the underlying TPO is approximate (certified
    ``lost_mass`` > 0), so exact-mode responses are byte-identical to the
    historical shape.  ``value_interval`` is the measure's certified
    ``[lo, hi]`` bracket on the true uncertainty value, or ``None`` when
    only the vacuous bound is available; ``engine_key`` content-addresses
    the beam configuration that produced the tree.
    """

    lost_mass: float
    engine_key: str
    value_interval: Optional[List[float]] = None

    @classmethod
    def from_dict(
        cls, payload: Optional[Mapping[str, Any]]
    ) -> Optional["ApproximationInfo"]:
        """Lift a manager ``approximation()`` dict (or ``None``)."""
        if payload is None:
            return None
        interval = payload.get("value_interval")
        return cls(
            lost_mass=float(payload["lost_mass"]),
            engine_key=str(payload["engine_key"]),
            value_interval=(
                None if interval is None else [float(v) for v in interval]
            ),
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "lost_mass": self.lost_mass,
            "value_interval": (
                None
                if self.value_interval is None
                else list(self.value_interval)
            ),
            "engine_key": self.engine_key,
        }


@dataclass(frozen=True)
class NextQuestionResponse:
    """Either the next question, or ``done`` when the session settled.

    ``approximation`` is populated only for beam-approximate sessions;
    exact sessions keep the historical two-key payload.
    """

    session_id: str
    question: Optional[Tuple[int, int]] = None
    approximation: Optional[ApproximationInfo] = None

    def to_payload(self) -> Dict[str, Any]:
        if self.question is None:
            payload: Dict[str, Any] = {
                "session_id": self.session_id,
                "done": True,
            }
        else:
            i, j = self.question
            payload = {
                "session_id": self.session_id,
                "question": {"i": i, "j": j},
            }
        if self.approximation is not None:
            payload["approximation"] = self.approximation.to_payload()
        return payload


@dataclass(frozen=True)
class AnswerResponse:
    session_id: str
    questions_asked: int
    orderings: int
    settled: bool

    @classmethod
    def from_summary(cls, summary: Mapping[str, Any]) -> "AnswerResponse":
        return cls(
            session_id=summary["session_id"],
            questions_asked=summary["questions_asked"],
            orderings=summary["orderings"],
            settled=summary["settled"],
        )

    def to_payload(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "questions_asked": self.questions_asked,
            "orderings": self.orderings,
            "settled": self.settled,
        }


@dataclass(frozen=True)
class SnapshotResponse:
    """Full JSON-portable state of one session (any status)."""

    session_id: str
    status: str
    spec: Dict[str, Any]
    tpo_key: str
    snapshot: Dict[str, Any]
    questions_asked: int
    orderings: int
    settled: bool
    top_k: List[int]

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "SnapshotResponse":
        return cls(**{name: snapshot[name] for name in (
            "session_id", "status", "spec", "tpo_key", "snapshot",
            "questions_asked", "orderings", "settled", "top_k",
        )})

    def to_payload(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "status": self.status,
            "spec": dict(self.spec),
            "tpo_key": self.tpo_key,
            "snapshot": dict(self.snapshot),
            "questions_asked": self.questions_asked,
            "orderings": self.orderings,
            "settled": self.settled,
            "top_k": list(self.top_k),
        }


@dataclass(frozen=True)
class CloseSessionResponse:
    session_id: str
    closed: bool = True

    def to_payload(self) -> Dict[str, Any]:
        return {"session_id": self.session_id, "closed": self.closed}


@dataclass(frozen=True)
class TopologyInfo:
    """Where one process sits in a serve deployment.

    ``role`` is ``"single"`` (the historical one-process service),
    ``"router"`` (the front end of a sharded fleet), or ``"worker"``
    (one shard of it, in which case ``shard`` says which).
    """

    role: str = "single"
    workers: int = 1
    shard: Optional[int] = None
    strategy: str = "blake2b"

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "role": self.role,
            "workers": self.workers,
            "strategy": self.strategy,
        }
        if self.shard is not None:
            payload["shard"] = self.shard
        return payload


@dataclass(frozen=True)
class StatsResponse:
    """``GET /v1/stats`` on one process — typed service counters.

    The flat key set is the historical ``/stats`` shape (``sessions`` /
    ``cache`` / ``rankings`` / ``evaluations`` / ``contradictions`` /
    ``replay_skipped`` plus the batcher's ``next_batches`` /
    ``next_requests``) so existing dashboards keep working; ``store``
    aliases the cache block (which for a two-tier store carries
    ``hot``/``cold``/``cold_hit_rate``/per-tier byte counts), and
    ``topology`` says which process of which fleet answered.
    """

    sessions: Dict[str, int]
    cache: Dict[str, Any]
    rankings: Dict[str, int]
    evaluations: int
    contradictions: int
    replay_skipped: int
    next_batches: int
    next_requests: int
    topology: TopologyInfo = field(default_factory=TopologyInfo)
    approximation: Optional[ApproximationInfo] = None

    @classmethod
    def from_manager_stats(
        cls,
        stats: Mapping[str, Any],
        next_batches: int,
        next_requests: int,
        topology: Optional[TopologyInfo] = None,
    ) -> "StatsResponse":
        return cls(
            sessions=dict(stats["sessions"]),
            cache=dict(stats["cache"]),
            rankings=dict(stats["rankings"]),
            evaluations=stats["evaluations"],
            contradictions=stats["contradictions"],
            replay_skipped=stats["replay_skipped"],
            next_batches=next_batches,
            next_requests=next_requests,
            topology=topology if topology is not None else TopologyInfo(),
            approximation=ApproximationInfo.from_dict(
                stats.get("approximation")
            ),
        )

    def to_payload(self) -> Dict[str, Any]:
        payload = {
            "sessions": dict(self.sessions),
            "cache": dict(self.cache),
            "store": dict(self.cache),
            "rankings": dict(self.rankings),
            "evaluations": self.evaluations,
            "contradictions": self.contradictions,
            "replay_skipped": self.replay_skipped,
            "next_batches": self.next_batches,
            "next_requests": self.next_requests,
            "topology": self.topology.to_payload(),
        }
        if self.approximation is not None:
            payload["approximation"] = self.approximation.to_payload()
        return payload


@dataclass(frozen=True)
class ClusterStatsResponse:
    """``GET /v1/stats`` on a sharded router — the fleet, aggregated.

    ``workers`` holds each worker's own :class:`StatsResponse` payload
    (tagged with its shard); the top-level blocks are fleet totals —
    summed session counts and batcher counters, plus a ``store`` block
    with hot/cold hit rates and stored bytes across all workers.
    """

    topology: TopologyInfo
    workers: List[Dict[str, Any]]

    def to_payload(self) -> Dict[str, Any]:
        sessions: Dict[str, int] = {}
        next_batches = 0
        next_requests = 0
        hot_hits = hot_misses = 0
        cold_hits = cold_waited = builds = 0
        store_bytes = 0
        for worker in self.workers:
            for status, count in worker.get("sessions", {}).items():
                sessions[status] = sessions.get(status, 0) + count
            next_batches += worker.get("next_batches", 0)
            next_requests += worker.get("next_requests", 0)
            cache = worker.get("cache", {})
            hot = cache.get("hot", cache)
            hot_hits += hot.get("hits", 0)
            hot_misses += hot.get("misses", 0)
            cold_hits += cache.get("cold_hits", 0)
            cold_waited += cache.get("cold_waited", 0)
            builds += cache.get("builds", 0)
            store_bytes += cache.get("cold", {}).get("bytes", 0)
        hot_lookups = hot_hits + hot_misses
        cold_shared = cold_hits + cold_waited
        cold_consults = cold_shared + builds
        return {
            "topology": self.topology.to_payload(),
            "sessions": sessions,
            "next_batches": next_batches,
            "next_requests": next_requests,
            "store": {
                "hot_hits": hot_hits,
                "hot_misses": hot_misses,
                "hot_hit_rate": (
                    hot_hits / hot_lookups if hot_lookups else 0.0
                ),
                "cold_hits": cold_hits,
                "cold_waited": cold_waited,
                "builds": builds,
                "cold_hit_rate": (
                    cold_shared / cold_consults if cold_consults else 0.0
                ),
                "bytes": store_bytes,
            },
            "workers": [dict(worker) for worker in self.workers],
        }


@dataclass(frozen=True)
class MetaResponse:
    """``GET /v1/meta`` — what this service instance can build and serve.

    ``beam_engines`` names the registered TPO engines that accept the
    anytime beam parameters (``beam_epsilon`` / ``beam_width``) — every
    flat builder does, so today it mirrors the engine registry.
    """

    protocol: str
    version: str
    plugins: Dict[str, List[str]]
    endpoints: List[Dict[str, str]]
    topology: TopologyInfo = field(default_factory=TopologyInfo)
    beam_engines: List[str] = field(default_factory=list)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "version": self.version,
            "plugins": {k: list(v) for k, v in self.plugins.items()},
            "endpoints": [dict(e) for e in self.endpoints],
            "topology": self.topology.to_payload(),
            "beam_engines": list(self.beam_engines),
        }


__all__ = [
    "PROTOCOL_VERSION",
    "ERROR_CODES",
    "REASON_PHRASES",
    "ProtocolError",
    "ErrorEnvelope",
    "CreateSessionRequest",
    "AnswerRequest",
    "CreateSessionResponse",
    "SessionListResponse",
    "ApproximationInfo",
    "NextQuestionResponse",
    "AnswerResponse",
    "SnapshotResponse",
    "CloseSessionResponse",
    "MetaResponse",
    "TopologyInfo",
    "StatsResponse",
    "ClusterStatsResponse",
]
