"""Sharded multi-worker serve runtime: router + worker fleet.

``repro serve --workers N`` runs N single-threaded worker processes,
each an ordinary :class:`~repro.service.manager.SessionManager` behind
the asyncio front end of :mod:`repro.service.server`, plus one asyncio
**router** process (this module) that owns the public ``host:port``::

                        ┌────────────┐
        clients ──────▶ │   router   │  shard = BLAKE2b(session_id) % N
                        └─────┬──────┘
              ┌───────────────┼───────────────┐
        ┌─────▼─────┐   ┌─────▼─────┐   ┌─────▼─────┐
        │ worker 0  │   │ worker 1  │   │ worker N-1│   (loopback, port 0)
        │ hot cache │   │ hot cache │   │ hot cache │
        └─────┬─────┘   └─────┬─────┘   └─────┬─────┘
              └───────────────┼───────────────┘
                        ┌─────▼──────┐
                        │ cold tier  │  shared content-addressed npz
                        └────────────┘

Every session lives on exactly one worker — :func:`shard_for` hashes the
session id with BLAKE2b, so any router (or a client that knows the
recipe) computes the same placement without coordination.  The router
assigns ids to ``POST /sessions`` bodies that lack one, then proxies
session-scoped requests verbatim; fleet-level reads (``/v1/healthz``,
``/v1/meta``, ``/v1/stats``, ``GET /v1/sessions``) fan out to every
worker and merge.  TPOs cross the process boundary through the shared
cold tier configured by :class:`~repro.api.specs.StoreSpec` — a worker
that builds a tree publishes its npz form once; its siblings deserialize
(or memmap) instead of rebuilding.

Workers are crash-isolated: each logs to its own event-log file
(:func:`worker_log_path`), and the router's monitor restarts a dead
worker with ``resume=True``, replaying that log to the exact pre-crash
state — the same bit-identical resume contract the single-process
service has always had, now per shard.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.api.canonical import content_key
from repro.api.specs import ServeSpec
from repro.service.manager import SessionManager
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ClusterStatsResponse,
    ErrorEnvelope,
    TopologyInfo,
)
from repro.service.server import (
    HttpError,
    _encode_response,
    _read_head,
    start_server,
)

PathLike = Union[str, Path]

#: How long the parent waits for a freshly started worker to report its
#: port before declaring the launch failed.
WORKER_START_TIMEOUT = 60.0


def shard_for(
    session_id: str, workers: int, strategy: str = "blake2b"
) -> int:
    """Which worker owns ``session_id`` — stable across processes.

    The digest is :func:`repro.api.canonical.content_key` — the same
    BLAKE2b-over-canonical-JSON recipe as every other content address in
    the repo — so any router (or client) computes the same placement;
    the digest is uniform, so sessions spread evenly over any worker
    count.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if strategy != "blake2b":
        raise ValueError(f"unknown shard strategy {strategy!r}")
    return int(content_key(session_id, digest_size=8), 16) % workers


def worker_log_path(base: Optional[PathLike], shard: int) -> Optional[Path]:
    """The per-shard event-log file derived from the fleet's base path.

    ``events.jsonl`` → ``events.w0.jsonl`` / ``events.w1.jsonl`` / …, so
    each worker appends (and replays) only its own sessions and a
    restart never contends on a sibling's log.
    """
    if base is None:
        return None
    path = Path(base)
    return path.with_name(f"{path.stem}.w{shard}{path.suffix}")


def build_worker_manager(
    spec: ServeSpec, shard: int, resume: bool = False
) -> SessionManager:
    """One shard's session manager: two-tier store + per-shard log."""
    from repro.api.specs import EngineSpec

    store = spec.store.build()
    builder = EngineSpec("grid", {"resolution": spec.resolution}).build()
    log = worker_log_path(spec.log, shard)
    if resume and log is not None and log.exists():
        return SessionManager.resume(log, cache=store, builder=builder)
    return SessionManager(cache=store, log_path=log, builder=builder)


async def _run_worker(
    conn: Any, spec: ServeSpec, shard: int, resume: bool
) -> None:
    manager = build_worker_manager(spec, shard, resume)
    topology = TopologyInfo(
        role="worker",
        workers=spec.workers,
        shard=shard,
        strategy=spec.shard_by,
    )
    server = await start_server(
        manager, host="127.0.0.1", port=0, topology=topology
    )
    sockets = server.sockets or []
    conn.send(sockets[0].getsockname()[1])
    conn.close()
    async with server:
        await server.serve_forever()


def _worker_entry(
    conn: Any, spec_payload: Dict[str, Any], shard: int, resume: bool
) -> None:
    """Process target for one worker (module-level so spawn can pickle)."""
    spec = ServeSpec.from_dict(spec_payload)
    try:
        asyncio.run(_run_worker(conn, spec, shard, resume))
    except KeyboardInterrupt:
        pass


def _parse_http_response(raw: bytes) -> Tuple[int, Any]:
    """Status code + decoded JSON body of a raw worker response."""
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
    parts = status_line.split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise HttpError(502, "worker sent a malformed response")
    try:
        payload = json.loads(body) if body.strip() else {}
    except json.JSONDecodeError:
        raise HttpError(502, "worker sent a non-JSON body") from None
    return int(parts[1]), payload


#: Fleet-level GET paths the router answers by merging every worker.
_FANOUT_PATHS = {"healthz", "meta", "stats", "sessions"}


class ShardedService:
    """The router process: owns the worker fleet and the public socket.

    Lifecycle: :meth:`start_workers` (synchronous, before any event loop
    — process forking and an active loop don't mix), then either
    :meth:`run` (serve until cancelled, the CLI path) or :meth:`start`
    (bind and return, the test path) …finally :meth:`stop_workers`.
    """

    def __init__(
        self,
        spec: ServeSpec,
        resume: bool = False,
        mp_context: Optional[str] = None,
        monitor_interval: float = 0.1,
    ) -> None:
        self.spec = spec
        self.resume = resume
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(mp_context)
        self.monitor_interval = float(monitor_interval)
        self._procs: List[Any] = [None] * spec.workers
        self._ports: List[Optional[int]] = [None] * spec.workers
        self.restarts = 0
        self._monitor_task: Optional["asyncio.Task"] = None
        self._server: Optional["asyncio.AbstractServer"] = None
        self.topology = TopologyInfo(
            role="router",
            workers=spec.workers,
            strategy=spec.shard_by,
        )

    # -- worker lifecycle ----------------------------------------------

    def start_workers(self) -> None:
        """Fork the fleet and wait for every worker to report its port."""
        for shard in range(self.spec.workers):
            self._launch(shard, resume=self.resume)

    def _launch(self, shard: int, resume: bool) -> None:
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_entry,
            args=(child, self.spec.to_dict(), shard, resume),
            daemon=True,
            name=f"repro-serve-w{shard}",
        )
        proc.start()
        child.close()
        if not parent.poll(WORKER_START_TIMEOUT):
            proc.terminate()
            raise RuntimeError(
                f"worker {shard} did not report a port within "
                f"{WORKER_START_TIMEOUT}s"
            )
        port = parent.recv()
        parent.close()
        self._procs[shard] = proc
        self._ports[shard] = int(port)

    def stop_workers(self) -> None:
        """Terminate and reap every live worker process."""
        for shard, proc in enumerate(self._procs):
            if proc is None:
                continue
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5)
            self._procs[shard] = None
            self._ports[shard] = None

    async def _monitor(self) -> None:
        """Restart dead workers (always resuming from their shard log)."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.monitor_interval)
            for shard, proc in enumerate(self._procs):
                if proc is None or proc.is_alive():
                    continue
                self.restarts += 1
                # _launch blocks on the pipe handshake — keep it off the
                # loop thread so in-flight requests to live shards drain.
                await loop.run_in_executor(
                    None, self._launch, shard, True
                )

    # -- routing -------------------------------------------------------

    async def _forward_raw(
        self, shard: int, method: str, path: str, body: bytes
    ) -> bytes:
        """Proxy one request to a worker; returns its raw HTTP response."""
        port = self._ports[shard]
        if port is None:
            raise HttpError(502, f"worker {shard} is not running")
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
        except OSError:
            raise HttpError(
                502,
                f"worker {shard} is unreachable",
                detail={"shard": shard},
            ) from None
        try:
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: 127.0.0.1:{port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + body)
            await writer.drain()
            raw = await reader.read(-1)  # workers close after responding
        except (ConnectionError, asyncio.IncompleteReadError):
            raise HttpError(
                502,
                f"worker {shard} dropped the connection",
                detail={"shard": shard},
            ) from None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if not raw:
            raise HttpError(502, f"worker {shard} sent no response")
        return raw

    async def _forward_json(
        self, shard: int, method: str, path: str, body: bytes = b""
    ) -> Tuple[int, Any]:
        return _parse_http_response(
            await self._forward_raw(shard, method, path, body)
        )

    async def _fanout(
        self, leaf: str, method: str, path: str
    ) -> Dict[str, Any]:
        """Merge a fleet-level read across every worker."""
        results = await asyncio.gather(
            *(
                self._forward_json(shard, method, path)
                for shard in range(self.spec.workers)
            )
        )
        payloads = []
        for shard, (status, payload) in enumerate(results):
            if status != 200:
                raise HttpError(
                    502,
                    f"worker {shard} answered {status} to {path}",
                    detail={"shard": shard, "status": status},
                )
            payloads.append(payload)
        if leaf == "healthz":
            return {"ok": all(p.get("ok") is True for p in payloads)}
        if leaf == "sessions":
            merged: List[str] = []
            for payload in payloads:
                merged.extend(payload.get("sessions", []))
            return {"sessions": sorted(merged)}
        if leaf == "stats":
            workers = [
                dict(payload, shard=shard)
                for shard, payload in enumerate(payloads)
            ]
            return ClusterStatsResponse(
                topology=self.topology, workers=workers
            ).to_payload()
        # meta: every worker enumerates the same catalog — report worker
        # 0's view with the router's own place in the topology.
        meta = dict(payloads[0])
        meta["topology"] = self.topology.to_payload()
        return meta

    async def _dispatch(
        self, method: str, path: str, raw_body: bytes
    ) -> bytes:
        segments = [s for s in path.split("/") if s]
        if segments[:1] == [PROTOCOL_VERSION]:
            segments = segments[1:]
        if (
            method == "GET"
            and len(segments) == 1
            and segments[0] in _FANOUT_PATHS
        ):
            payload = await self._fanout(segments[0], method, path)
            return _encode_response(200, payload)
        if method == "POST" and segments == ["sessions"]:
            return await self._route_create(method, path, raw_body)
        if len(segments) >= 2 and segments[0] == "sessions":
            shard = shard_for(
                segments[1], self.spec.workers, self.spec.shard_by
            )
            return await self._forward_raw(shard, method, path, raw_body)
        # Anything else (unknown routes, wrong methods on fleet paths):
        # let a worker produce the protocol-correct 404/405 envelope.
        return await self._forward_raw(0, method, path, raw_body)

    async def _route_create(
        self, method: str, path: str, raw_body: bytes
    ) -> bytes:
        """Place a new session: assign an id if absent, hash it to a
        shard, and forward the (possibly re-encoded) body there."""
        import secrets

        try:
            body = json.loads(raw_body) if raw_body.strip() else {}
        except json.JSONDecodeError:
            raise HttpError(
                400, "request body is not valid JSON"
            ) from None
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        session_id = body.get("session_id")
        if session_id is None:
            session_id = secrets.token_hex(8)
            if "spec" in body:
                body = dict(body, session_id=session_id)
            else:
                # Legacy bare-spec body: wrap it so the injected id is
                # not mistaken for a spec field.
                body = {"spec": body, "session_id": session_id}
            raw_body = json.dumps(body).encode("utf-8")
        elif not isinstance(session_id, str):
            raise HttpError(400, "session_id must be a string")
        shard = shard_for(
            session_id, self.spec.workers, self.spec.shard_by
        )
        return await self._forward_raw(shard, method, path, raw_body)

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        versioned = True
        try:
            head = await _read_head(reader)
            if head is None:
                return
            method, path, content_length = head
            versioned = [s for s in path.split("/") if s][:1] == [
                PROTOCOL_VERSION
            ]
            raw_body = (
                await reader.readexactly(content_length)
                if content_length
                else b""
            )
            response = await self._dispatch(method, path, raw_body)
        except HttpError as exc:
            envelope = ErrorEnvelope(
                status=exc.status, message=exc.message, detail=exc.detail
            )
            payload = (
                envelope.to_payload()
                if versioned
                else envelope.to_legacy_payload()
            )
            response = _encode_response(exc.status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except Exception as exc:  # pragma: no cover - defensive
            envelope = ErrorEnvelope(
                status=500, message=f"{type(exc).__name__}: {exc}"
            )
            response = _encode_response(500, envelope.to_payload())
        try:
            writer.write(response)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError, OSError):
            pass

    # -- running -------------------------------------------------------

    async def start(self) -> "asyncio.AbstractServer":
        """Bind the router socket and start the worker monitor.

        The workers must already be running (:meth:`start_workers`).
        Returns the bound server so callers — tests, mainly — can read
        the real port and close it when done.
        """
        self._server = await asyncio.start_server(
            self._handle_client, host=self.spec.host, port=self.spec.port
        )
        self._monitor_task = asyncio.ensure_future(self._monitor())
        return self._server

    async def run(self) -> None:
        """Serve until cancelled (the multi-worker ``repro serve`` path)."""
        server = await self.start()
        addresses = ", ".join(
            f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
            for sock in server.sockets or []
        )
        print(
            f"repro service router on {addresses} "
            f"({self.spec.workers} workers, shard by {self.spec.shard_by}, "
            f"protocol /{PROTOCOL_VERSION})"
        )
        try:
            async with server:
                await server.serve_forever()
        finally:
            await self.shutdown()

    async def shutdown(self) -> None:
        """Cancel the monitor and tear the fleet down."""
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            self._monitor_task = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.stop_workers)


def run_sharded(spec: ServeSpec, resume: bool = False) -> None:
    """Start the fleet and block in the router loop (CLI entry point)."""
    service = ShardedService(spec, resume=resume)
    service.start_workers()
    try:
        asyncio.run(service.run())
    finally:
        service.stop_workers()


__all__ = [
    "shard_for",
    "worker_log_path",
    "build_worker_manager",
    "ShardedService",
    "run_sharded",
    "WORKER_START_TIMEOUT",
]
