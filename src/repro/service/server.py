"""Dependency-free asyncio HTTP front end for the session manager.

A deliberately small HTTP/1.1 implementation over ``asyncio.start_server``
(no web framework — the repo's only runtime dependency stays NumPy),
exposing the **versioned** ``/v1`` wire protocol typed out in
:mod:`repro.service.protocol`:

==========  ==================================  ===============================
method      path                                body / response
==========  ==================================  ===============================
``GET``     ``/v1/healthz``                     ``{"ok": true}``
``GET``     ``/v1/meta``                        protocol version + registered
                                                plugins + endpoint table
``GET``     ``/v1/stats``                       service counters
``GET``     ``/v1/sessions``                    ``{"sessions": [ids…]}``
``POST``    ``/v1/sessions``                    ``{"spec": {…}}`` →
                                                ``{"session_id"}``
``GET``     ``/v1/sessions/<id>``               full snapshot
``GET``     ``/v1/sessions/<id>/next``          ``{"question": {"i", "j"}}``
                                                or ``{"done": true}``
``POST``    ``/v1/sessions/<id>/answers``       ``{"i", "j", "holds",
                                                "accuracy"?}``
``POST``    ``/v1/sessions/<id>/close``         ``{"closed": true}``
==========  ==================================  ===============================

Versioned error responses use the uniform JSON envelope
(``{"error": {"code", "message", "detail"?}}``) with correct statuses:
400 on malformed bodies/specs, 404 on unknown sessions or routes, 405 —
with an ``Allow`` header — on known routes hit with the wrong method, 409
on closed sessions, and 413 on oversized bodies.  The pre-``/v1``
unversioned paths remain as deprecated aliases (flat
``{"error": "<message>"}`` bodies, a ``Deprecation: true`` header) so old
clients keep working.

Concurrent ``/next`` requests are *coalesced*: handlers enqueue into a
:class:`NextQuestionBatcher` which drains once per event-loop tick through
:meth:`SessionManager.next_questions`, so simultaneous requests from
sessions in identical states share a single ranking pass — the asyncio
face of the manager's cross-session batching.

The manager is synchronous and only touched from the event-loop thread, so
no locking is needed anywhere — with one deliberate exception: the durable
event log.  :func:`start_server` swaps the manager's eager
:class:`~repro.service.manager.EventLog` for a
:class:`~repro.service.manager.BufferedEventLog`, so mutating handlers
append in memory (no disk I/O on the loop thread — lint rule RPL004) and
then await one flush hop through a single-thread executor *before*
responding.  A 200 still means the event is on disk; the buffered log's
own lock covers the loop-thread/executor-thread handoff.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import __version__
from repro.api.catalog import all_registries
from repro.service.manager import (
    ClosedSessionError,
    SessionManager,
    UnknownSessionError,
)
from repro.tpo.builders import TPOSizeError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    REASON_PHRASES,
    AnswerRequest,
    AnswerResponse,
    ApproximationInfo,
    CloseSessionResponse,
    CreateSessionRequest,
    CreateSessionResponse,
    ErrorEnvelope,
    MetaResponse,
    NextQuestionResponse,
    ProtocolError,
    SessionListResponse,
    SnapshotResponse,
    StatsResponse,
    TopologyInfo,
)

MAX_BODY_BYTES = 1 << 20  # a spec or an answer is tiny; reject abuse early.


class HttpError(Exception):
    """An error with a definite HTTP status and JSON payload."""

    def __init__(
        self,
        status: int,
        message: str,
        detail: Optional[Dict[str, Any]] = None,
        allow: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.detail = dict(detail or {})
        self.allow = sorted(allow) if allow else None


class NextQuestionBatcher:
    """Coalesces concurrent next-question requests into one manager call.

    Requests arriving within the same event-loop tick are drained together
    by a single :meth:`SessionManager.next_questions` call; each waiter
    gets its own result (or its own error) back through a future.
    """

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager
        self._pending: List[Tuple[str, asyncio.Future]] = []
        self._drain_scheduled = False
        self.batches = 0
        self.requests = 0

    def request(self, session_id: str) -> "asyncio.Future":
        """Enqueue one request; resolves to ``Optional[Question]``."""
        future = asyncio.get_running_loop().create_future()
        self._pending.append((session_id, future))
        self.requests += 1
        if not self._drain_scheduled:
            self._drain_scheduled = True
            asyncio.get_running_loop().call_soon(self._drain)
        return future

    def _drain(self) -> None:
        batch, self._pending = self._pending, []
        self._drain_scheduled = False
        if not batch:
            return
        self.batches += 1
        unique_ids = list(dict.fromkeys(sid for sid, _ in batch))
        try:
            questions = self.manager.next_questions(unique_ids)
        except Exception:
            # One member poisoning the whole batch (a bad id, or any
            # unexpected failure) must not leave the other waiters hanging
            # forever — _drain runs outside every connection's handler, so
            # an escaping exception would resolve no future at all.  Retry
            # ids one by one; each waiter gets its own result or error.
            questions = {}
            errors: Dict[str, Exception] = {}
            for sid in unique_ids:
                try:
                    questions.update(self.manager.next_questions([sid]))
                except Exception as exc:
                    errors[sid] = exc
            for sid, future in batch:
                if future.done():
                    continue
                if sid in errors:
                    future.set_exception(errors[sid])
                else:
                    future.set_result(questions[sid])
            return
        for sid, future in batch:
            if not future.done():
                future.set_result(questions[sid])


# ----------------------------------------------------------------------
# Request handling
# ----------------------------------------------------------------------


async def _read_head(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, int]]:
    """Parse the request line + headers; returns ``(method, path,
    content_length)`` or ``None`` on EOF.

    Split from :func:`_read_body` so the connection handler knows the
    path — and therefore whether the client is on the versioned surface —
    before any body-level error can be raised.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise HttpError(400, "bad Content-Length") from None
    return method, target.split("?", 1)[0], content_length


async def _read_body(
    reader: asyncio.StreamReader, content_length: int
) -> Any:
    """Read and parse the JSON request body (may raise 400/413)."""
    if content_length > MAX_BODY_BYTES:
        raise HttpError(
            413,
            "request body too large",
            detail={
                "max_bytes": MAX_BODY_BYTES,
                "content_length": content_length,
            },
        )
    if not content_length:
        return {}
    raw = await reader.readexactly(content_length)
    try:
        body = json.loads(raw)
    except json.JSONDecodeError:
        raise HttpError(400, "request body is not valid JSON") from None
    if not isinstance(body, dict):
        raise HttpError(400, "request body must be a JSON object")
    return body


def _encode_response(
    status: int,
    payload: Dict[str, Any],
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    body = (json.dumps(payload) + "\n").encode("utf-8")
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    if extra_headers:
        headers.update(extra_headers)
    head_lines = [
        f"HTTP/1.1 {status} {REASON_PHRASES.get(status, 'Unknown')}"
    ]
    head_lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
    return head + body


# ----------------------------------------------------------------------
# Routes
# ----------------------------------------------------------------------


class Context:
    """Everything one request handler needs."""

    def __init__(
        self,
        manager: SessionManager,
        batcher: NextQuestionBatcher,
        body: Any,
        params: Dict[str, str],
        versioned: bool,
        log_executor: Optional[ThreadPoolExecutor] = None,
        topology: Optional[TopologyInfo] = None,
    ) -> None:
        self.manager = manager
        self.batcher = batcher
        self.body = body
        self.params = params
        self.versioned = versioned
        self.log_executor = log_executor
        self.topology = topology if topology is not None else TopologyInfo()

    async def flush_log(self) -> None:
        """Durably write buffered event-log appends, off the loop thread.

        Mutating handlers await this before responding so the wire
        contract stays "200 ⇒ logged", while the actual ``open``/``write``
        happens on the (single-thread) log executor, never the loop.
        """
        await asyncio.get_running_loop().run_in_executor(
            self.log_executor, self.manager.flush_log
        )


async def _handle_healthz(ctx: Context) -> Dict[str, Any]:
    return {"ok": True}


async def _handle_meta(ctx: Context) -> Dict[str, Any]:
    plugins = {
        kind: registry.available()
        for kind, registry in all_registries().items()
    }
    endpoints = [
        {"method": method, "path": f"/{PROTOCOL_VERSION}/{route.pattern}"}
        for route in ROUTES
        for method in sorted(route.handlers)
    ]
    return MetaResponse(
        protocol=PROTOCOL_VERSION,
        version=__version__,
        plugins=plugins,
        endpoints=endpoints,
        topology=ctx.topology,
        beam_engines=plugins.get("engines", []),
    ).to_payload()


async def _handle_stats(ctx: Context) -> Dict[str, Any]:
    return StatsResponse.from_manager_stats(
        ctx.manager.stats(),
        next_batches=ctx.batcher.batches,
        next_requests=ctx.batcher.requests,
        topology=ctx.topology,
    ).to_payload()


async def _handle_list_sessions(ctx: Context) -> Dict[str, Any]:
    return SessionListResponse(
        sessions=ctx.manager.session_ids(status=None)
    ).to_payload()


async def _handle_create_session(ctx: Context) -> Dict[str, Any]:
    if ctx.versioned:
        try:
            request = CreateSessionRequest.from_body(ctx.body)
        except (TypeError, ValueError) as exc:
            # Spec validation failures (unknown workload, bad n/k, unknown
            # fields) are the client's fault — 400, never a 500.
            raise HttpError(400, str(exc)) from None
        spec: Any = request.spec
        session_id = request.session_id
    else:
        # Legacy leniency: a bare spec body (no "spec" wrapper) is allowed.
        spec = ctx.body.get("spec", ctx.body)
        session_id = ctx.body.get("session_id")
    try:
        sid = ctx.manager.create_session(spec, session_id=session_id)
    except TPOSizeError as exc:
        # An instance whose TPO blows the engine's size budget is a
        # client-side resource limit, not an internal failure — surface
        # it as 413 instead of leaking an opaque 500 (found by RPC104).
        raise HttpError(413, str(exc)) from None
    except (TypeError, ValueError) as exc:
        # TypeError covers bad generator params the spec validator cannot
        # know about (e.g. {"params": {"bogus": 1}}) — still the client's
        # fault, not a 500.
        raise HttpError(400, str(exc)) from None
    await ctx.flush_log()
    return CreateSessionResponse(session_id=sid).to_payload()


async def _handle_snapshot(ctx: Context) -> Dict[str, Any]:
    snapshot = ctx.manager.snapshot(ctx.params["session_id"])
    return SnapshotResponse.from_snapshot(snapshot).to_payload()


async def _handle_next(ctx: Context) -> Dict[str, Any]:
    sid = ctx.params["session_id"]
    question = await ctx.batcher.request(sid)
    return NextQuestionResponse(
        session_id=sid,
        question=None if question is None else (question.i, question.j),
        approximation=ApproximationInfo.from_dict(
            ctx.manager.approximation(sid)
        ),
    ).to_payload()


async def _handle_answer(ctx: Context) -> Dict[str, Any]:
    sid = ctx.params["session_id"]
    request = AnswerRequest.from_body(ctx.body, strict=ctx.versioned)
    try:
        summary = ctx.manager.submit_answer(
            sid,
            request.i,
            request.j,
            request.holds,
            accuracy=request.accuracy,
        )
    except (TypeError, ValueError) as exc:
        if isinstance(exc, ClosedSessionError):
            raise
        raise HttpError(400, str(exc)) from None
    await ctx.flush_log()
    return AnswerResponse.from_summary(summary).to_payload()


async def _handle_close(ctx: Context) -> Dict[str, Any]:
    sid = ctx.params["session_id"]
    ctx.manager.close_session(sid)
    await ctx.flush_log()
    return CloseSessionResponse(session_id=sid).to_payload()


class Route:
    """One path pattern plus its method → handler table.

    Patterns are slash-joined literal segments with ``{name}`` wildcards
    (e.g. ``sessions/{session_id}/next``).  A request whose path matches a
    pattern but whose method has no handler is answered 405 with an
    ``Allow`` header — never a generic 404.
    """

    def __init__(
        self,
        pattern: str,
        handlers: Dict[str, Any],
        versioned_only: bool = False,
    ) -> None:
        self.pattern = pattern
        self.segments = pattern.split("/")
        self.handlers = handlers
        self.versioned_only = versioned_only

    def match(self, segments: List[str]) -> Optional[Dict[str, str]]:
        """Wildcard bindings when ``segments`` matches, else ``None``."""
        if len(segments) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for expected, actual in zip(self.segments, segments, strict=True):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params


ROUTES: List[Route] = [
    Route("healthz", {"GET": _handle_healthz}),
    Route("meta", {"GET": _handle_meta}, versioned_only=True),
    Route("stats", {"GET": _handle_stats}),
    Route(
        "sessions",
        {"GET": _handle_list_sessions, "POST": _handle_create_session},
    ),
    Route("sessions/{session_id}", {"GET": _handle_snapshot}),
    Route("sessions/{session_id}/next", {"GET": _handle_next}),
    Route("sessions/{session_id}/answers", {"POST": _handle_answer}),
    Route("sessions/{session_id}/close", {"POST": _handle_close}),
]


async def _route(
    method: str,
    path: str,
    body: Any,
    manager: SessionManager,
    batcher: NextQuestionBatcher,
    log_executor: Optional[ThreadPoolExecutor] = None,
    topology: Optional[TopologyInfo] = None,
) -> Tuple[Dict[str, Any], bool]:
    """Dispatch one request; returns ``(payload, versioned)``."""
    segments = [s for s in path.split("/") if s]
    versioned = bool(segments) and segments[0] == PROTOCOL_VERSION
    if versioned:
        segments = segments[1:]
    sid: Optional[str] = None
    try:
        for route in ROUTES:
            if route.versioned_only and not versioned:
                continue
            params = route.match(segments)
            if params is None:
                continue
            handler = route.handlers.get(method)
            if handler is None:
                prefix = f"/{PROTOCOL_VERSION}/" if versioned else "/"
                raise HttpError(
                    405,
                    f"{method} not allowed on {prefix}{route.pattern}",
                    detail={"allow": sorted(route.handlers)},
                    allow=route.handlers,
                )
            sid = params.get("session_id")
            ctx = Context(
                manager,
                batcher,
                body,
                params,
                versioned,
                log_executor,
                topology,
            )
            return await handler(ctx), versioned
        raise HttpError(404, f"no route for {method} {path}")
    except ProtocolError as exc:
        raise HttpError(400, str(exc)) from None
    except UnknownSessionError:
        raise HttpError(404, f"no session {sid!r}") from None
    except ClosedSessionError as exc:
        raise HttpError(409, str(exc)) from None


def _error_payload(
    status: int,
    message: str,
    detail: Optional[Dict[str, Any]],
    versioned: bool,
) -> Dict[str, Any]:
    envelope = ErrorEnvelope(status=status, message=message, detail=detail or {})
    return envelope.to_payload() if versioned else envelope.to_legacy_payload()


async def _handle_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    manager: SessionManager,
    batcher: NextQuestionBatcher,
    log_executor: Optional[ThreadPoolExecutor] = None,
    topology: Optional[TopologyInfo] = None,
) -> None:
    status, payload = 500, {"error": "internal error"}
    headers: Dict[str, str] = {}
    versioned = True
    try:
        head = await _read_head(reader)
        if head is None:
            return
        method, path, content_length = head
        versioned = [s for s in path.split("/") if s][:1] == [
            PROTOCOL_VERSION
        ]
        body = await _read_body(reader, content_length)
        payload, versioned = await _route(
            method, path, body, manager, batcher, log_executor, topology
        )
        status = 200
    except HttpError as exc:
        status = exc.status
        payload = _error_payload(
            exc.status, exc.message, exc.detail, versioned
        )
        if exc.allow:
            headers["Allow"] = ", ".join(exc.allow)
    except Exception as exc:  # pragma: no cover - defensive catch-all
        status = 500
        payload = _error_payload(
            500, f"{type(exc).__name__}: {exc}", None, versioned
        )
    finally:
        if not versioned:
            headers.setdefault("Deprecation", "true")
        try:
            writer.write(_encode_response(status, payload, headers))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):  # client went away
            pass


async def start_server(
    manager: SessionManager,
    host: str = "127.0.0.1",
    port: int = 8080,
    topology: Optional[TopologyInfo] = None,
) -> "asyncio.AbstractServer":
    """Bind the service; the caller drives ``serve_forever`` (or tests
    poke it and close).

    Also moves the manager's event log into deferred mode
    (:meth:`SessionManager.defer_log_writes`) with a dedicated
    single-thread executor doing the actual disk writes — handlers append
    in memory and await the flush, so the event loop never blocks on the
    log file.  ``topology`` is what ``/v1/meta`` and ``/v1/stats`` report
    as this process's place in the deployment (defaults to the
    single-process role).
    """
    batcher = NextQuestionBatcher(manager)
    log_executor: Optional[ThreadPoolExecutor] = None
    if manager.defer_log_writes():
        log_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-eventlog"
        )

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        await _handle_connection(
            reader, writer, manager, batcher, log_executor, topology
        )

    return await asyncio.start_server(handler, host=host, port=port)


async def serve(
    manager: SessionManager,
    host: str = "127.0.0.1",
    port: int = 8080,
    topology: Optional[TopologyInfo] = None,
) -> None:
    """Run the service until cancelled (the ``repro serve`` entry point)."""
    server = await start_server(
        manager, host=host, port=port, topology=topology
    )
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets or []
    )
    print(
        f"repro service listening on {addresses} "
        f"(protocol /{PROTOCOL_VERSION})"
    )
    async with server:
        await server.serve_forever()


__all__ = [
    "start_server",
    "serve",
    "NextQuestionBatcher",
    "HttpError",
    "Route",
    "ROUTES",
]
