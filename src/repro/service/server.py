"""Dependency-free asyncio HTTP front end for the session manager.

A deliberately small HTTP/1.1 implementation over ``asyncio.start_server``
(no web framework — the repo's only runtime dependency stays NumPy):

==========  =============================  =====================================
method      path                           body / response
==========  =============================  =====================================
``GET``     ``/healthz``                   ``{"ok": true}``
``GET``     ``/stats``                     service counters (cache hit rate, …)
``GET``     ``/sessions``                  ``{"sessions": [ids…]}``
``POST``    ``/sessions``                  ``{"spec": {…}}`` → ``{"session_id"}``
``GET``     ``/sessions/<id>``             full snapshot (spec, answers, top-K)
``GET``     ``/sessions/<id>/next``        ``{"question": {"i", "j"}}`` or
                                           ``{"done": true}``
``POST``    ``/sessions/<id>/answers``     ``{"i", "j", "holds", "accuracy"?}``
``POST``    ``/sessions/<id>/close``       ``{"closed": true}``
==========  =============================  =====================================

Concurrent ``/next`` requests are *coalesced*: handlers enqueue into a
:class:`NextQuestionBatcher` which drains once per event-loop tick through
:meth:`SessionManager.next_questions`, so simultaneous requests from
sessions in identical states share a single ranking pass — the asyncio
face of the manager's cross-session batching.

The manager is synchronous and only touched from the event-loop thread, so
no locking is needed anywhere.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.service.manager import (
    ClosedSessionError,
    SessionManager,
    UnknownSessionError,
)

MAX_BODY_BYTES = 1 << 20  # a spec or an answer is tiny; reject abuse early.


class HttpError(Exception):
    """An error with a definite HTTP status and JSON payload."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class NextQuestionBatcher:
    """Coalesces concurrent next-question requests into one manager call.

    Requests arriving within the same event-loop tick are drained together
    by a single :meth:`SessionManager.next_questions` call; each waiter
    gets its own result (or its own error) back through a future.
    """

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager
        self._pending: List[Tuple[str, asyncio.Future]] = []
        self._drain_scheduled = False
        self.batches = 0
        self.requests = 0

    def request(self, session_id: str) -> "asyncio.Future":
        """Enqueue one request; resolves to ``Optional[Question]``."""
        future = asyncio.get_running_loop().create_future()
        self._pending.append((session_id, future))
        self.requests += 1
        if not self._drain_scheduled:
            self._drain_scheduled = True
            asyncio.get_running_loop().call_soon(self._drain)
        return future

    def _drain(self) -> None:
        batch, self._pending = self._pending, []
        self._drain_scheduled = False
        if not batch:
            return
        self.batches += 1
        unique_ids = list(dict.fromkeys(sid for sid, _ in batch))
        try:
            questions = self.manager.next_questions(unique_ids)
        except Exception:
            # One member poisoning the whole batch (a bad id, or any
            # unexpected failure) must not leave the other waiters hanging
            # forever — _drain runs outside every connection's handler, so
            # an escaping exception would resolve no future at all.  Retry
            # ids one by one; each waiter gets its own result or error.
            questions = {}
            errors: Dict[str, Exception] = {}
            for sid in unique_ids:
                try:
                    questions.update(self.manager.next_questions([sid]))
                except Exception as exc:
                    errors[sid] = exc
            for sid, future in batch:
                if future.done():
                    continue
                if sid in errors:
                    future.set_exception(errors[sid])
                else:
                    future.set_result(questions[sid])
            return
        for sid, future in batch:
            if not future.done():
                future.set_result(questions[sid])


# ----------------------------------------------------------------------
# Request handling
# ----------------------------------------------------------------------


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, Any]]]:
    """Parse one request; returns ``(method, path, body)`` or None on EOF."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise HttpError(400, "bad Content-Length") from None
    if content_length > MAX_BODY_BYTES:
        raise HttpError(413, "request body too large")
    body: Dict[str, Any] = {}
    if content_length:
        raw = await reader.readexactly(content_length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError:
            raise HttpError(400, "request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
    path = target.split("?", 1)[0]
    return method, path, body


def _encode_response(status: int, payload: Dict[str, Any]) -> bytes:
    reasons = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        409: "Conflict",
        413: "Payload Too Large",
        500: "Internal Server Error",
    }
    body = (json.dumps(payload) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1")
    return head + body


async def _route(
    method: str,
    path: str,
    body: Dict[str, Any],
    manager: SessionManager,
    batcher: NextQuestionBatcher,
) -> Dict[str, Any]:
    segments = [s for s in path.split("/") if s]
    if segments == ["healthz"] and method == "GET":
        return {"ok": True}
    if segments == ["stats"] and method == "GET":
        stats = manager.stats()
        stats["next_batches"] = batcher.batches
        stats["next_requests"] = batcher.requests
        return stats
    if segments == ["sessions"]:
        if method == "GET":
            return {"sessions": manager.session_ids(status=None)}
        if method == "POST":
            spec = body.get("spec", body)
            try:
                sid = manager.create_session(
                    spec, session_id=body.get("session_id")
                )
            except (TypeError, ValueError) as exc:
                # TypeError covers bad generator params the spec validator
                # cannot know about (e.g. {"params": {"bogus": 1}}) — still
                # the client's fault, not a 500.
                raise HttpError(400, str(exc)) from None
            return {"session_id": sid}
        raise HttpError(405, f"{method} not allowed on /sessions")
    if len(segments) >= 2 and segments[0] == "sessions":
        sid = segments[1]
        tail = segments[2:]
        try:
            if tail == [] and method == "GET":
                return manager.snapshot(sid)
            if tail == ["next"] and method == "GET":
                question = await batcher.request(sid)
                if question is None:
                    return {"session_id": sid, "done": True}
                return {
                    "session_id": sid,
                    "question": {"i": question.i, "j": question.j},
                }
            if tail == ["answers"] and method == "POST":
                missing = {"i", "j", "holds"} - set(body)
                if missing:
                    raise HttpError(
                        400, f"answer needs fields {sorted(missing)}"
                    )
                try:
                    return manager.submit_answer(
                        sid,
                        int(body["i"]),
                        int(body["j"]),
                        bool(body["holds"]),
                        accuracy=float(body.get("accuracy", 1.0)),
                    )
                except (TypeError, ValueError) as exc:
                    if isinstance(exc, ClosedSessionError):
                        raise
                    raise HttpError(400, str(exc)) from None
            if tail == ["close"] and method == "POST":
                manager.close_session(sid)
                return {"session_id": sid, "closed": True}
        except UnknownSessionError:
            raise HttpError(404, f"no session {sid!r}") from None
        except ClosedSessionError as exc:
            raise HttpError(409, str(exc)) from None
    raise HttpError(404, f"no route for {method} {path}")


async def _handle_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    manager: SessionManager,
    batcher: NextQuestionBatcher,
) -> None:
    status, payload = 500, {"error": "internal error"}
    try:
        request = await _read_request(reader)
        if request is None:
            return
        method, path, body = request
        payload = await _route(method, path, body, manager, batcher)
        status = 200
    except HttpError as exc:
        status, payload = exc.status, {"error": exc.message}
    except Exception as exc:  # pragma: no cover - defensive catch-all
        status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
    finally:
        try:
            writer.write(_encode_response(status, payload))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):  # client went away
            pass


async def start_server(
    manager: SessionManager, host: str = "127.0.0.1", port: int = 8080
) -> "asyncio.AbstractServer":
    """Bind the service; the caller drives ``serve_forever`` (or tests
    poke it and close)."""
    batcher = NextQuestionBatcher(manager)

    async def handler(reader, writer):
        await _handle_connection(reader, writer, manager, batcher)

    return await asyncio.start_server(handler, host=host, port=port)


async def serve(
    manager: SessionManager, host: str = "127.0.0.1", port: int = 8080
) -> None:
    """Run the service until cancelled (the ``repro serve`` entry point)."""
    server = await start_server(manager, host=host, port=port)
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}"
        for sock in server.sockets or []
    )
    print(f"repro service listening on {addresses}")
    async with server:
        await server.serve_forever()


__all__ = [
    "start_server",
    "serve",
    "NextQuestionBatcher",
    "HttpError",
]
