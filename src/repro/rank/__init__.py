"""Ranking distances and rank aggregation (substrate S4 in DESIGN.md)."""

from repro.rank.aggregation import (
    AggregationCosts,
    borda_aggregation,
    copeland_aggregation,
    exact_aggregation,
    kwiksort_aggregation,
    local_search,
    optimal_rank_aggregation,
)
from repro.rank.kendall import (
    DEFAULT_PENALTY,
    expected_topk_distance,
    kendall_tau,
    max_topk_distance,
    spearman_footrule,
    stance_marginals,
    topk_kendall,
)

__all__ = [
    "DEFAULT_PENALTY",
    "kendall_tau",
    "topk_kendall",
    "max_topk_distance",
    "spearman_footrule",
    "stance_marginals",
    "expected_topk_distance",
    "AggregationCosts",
    "borda_aggregation",
    "copeland_aggregation",
    "kwiksort_aggregation",
    "local_search",
    "exact_aggregation",
    "optimal_rank_aggregation",
]
