"""Kendall-tau style distances between (top-K) rankings.

The paper's quality metric ``D(ω_r, T_K)`` and two of its uncertainty
measures (``U_ORA``, ``U_MPO``) are expected distances between orderings.
Full permutations use the classic Kendall tau; top-K *lists* (which may
rank different tuple sets) use the Fagin–Kumar–Sivakumar ``K^(p)`` distance
with a neutral penalty ``p`` for pairs whose relative order one list cannot
determine.

Stance convention (shared with :class:`~repro.tpo.space.OrderingSpace`):
for a pair ``(i, j)`` a list's *stance* is ``+1`` when it implies
``t_i ≺ t_j`` (i ranked higher), ``−1`` for the opposite, ``0`` when it is
silent (neither tuple in the list).  A pair costs 1 when the stances are
opposite, ``p`` when exactly one list is silent, and 0 otherwise.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tpo.space import OrderingSpace
from repro.utils.validation import check_fraction

#: Fagin's neutral penalty: an unknowable pair costs half a disagreement.
DEFAULT_PENALTY = 0.5


def kendall_tau(a: Sequence[int], b: Sequence[int], normalized: bool = True) -> float:
    """Kendall tau distance between two permutations of the same items.

    Counts discordant pairs; ``normalized=True`` divides by ``C(n, 2)``.
    """
    a = list(a)
    b = list(b)
    if sorted(a) != sorted(b):
        raise ValueError("kendall_tau requires permutations of the same items")
    n = len(a)
    if n < 2:
        return 0.0
    rank_b = {item: r for r, item in enumerate(b)}
    sequence = [rank_b[item] for item in a]
    discordant = _count_inversions(sequence)
    if not normalized:
        return float(discordant)
    return 2.0 * discordant / (n * (n - 1))


def _count_inversions(sequence: Sequence[int]) -> int:
    """Inversion count via merge sort, O(n log n)."""
    items = list(sequence)

    def sort(values):
        if len(values) <= 1:
            return values, 0
        mid = len(values) // 2
        left, inv_left = sort(values[:mid])
        right, inv_right = sort(values[mid:])
        merged = []
        inversions = inv_left + inv_right
        li = ri = 0
        while li < len(left) and ri < len(right):
            if left[li] <= right[ri]:
                merged.append(left[li])
                li += 1
            else:
                merged.append(right[ri])
                ri += 1
                inversions += len(left) - li
        merged.extend(left[li:])
        merged.extend(right[ri:])
        return merged, inversions

    return sort(items)[1]


def _positions(ranking: Sequence[int], n_tuples: int, depth: int) -> np.ndarray:
    """Position vector with sentinel ``depth`` for absent tuples."""
    pos = np.full(n_tuples, depth, dtype=np.int64)
    for r, item in enumerate(ranking):
        if not 0 <= item < n_tuples:
            raise ValueError(f"tuple index {item} outside universe of {n_tuples}")
        pos[item] = r
    return pos


def topk_kendall(
    a: Sequence[int],
    b: Sequence[int],
    n_tuples: Optional[int] = None,
    penalty: float = DEFAULT_PENALTY,
    normalized: bool = True,
) -> float:
    """Fagin ``K^(p)`` distance between two top-K lists.

    The lists may contain different tuples.  ``normalized=True`` divides by
    the distance between two disjoint lists of the same length — the worst
    case — yielding a value in [0, 1].
    """
    check_fraction("penalty", penalty)
    a = list(a)
    b = list(b)
    if len(set(a)) != len(a) or len(set(b)) != len(b):
        raise ValueError("top-K lists must not repeat tuples")
    if n_tuples is None:
        n_tuples = max(a + b, default=-1) + 1
    depth = max(len(a), len(b), 1)
    pos_a = _positions(a, n_tuples, depth)
    pos_b = _positions(b, n_tuples, depth)
    present_a = pos_a < depth
    present_b = pos_b < depth
    stance_a = np.sign(pos_a[None, :] - pos_a[:, None])
    stance_b = np.sign(pos_b[None, :] - pos_b[:, None])
    opposite = (stance_a * stance_b) < 0
    # Fagin case 4: both tuples appear in exactly one of the lists; pairs
    # touching a tuple outside the union of the lists are NOT part of the
    # distance (they cost the bogus penalty otherwise).
    both_in_b = present_b[:, None] & present_b[None, :]
    both_in_a = present_a[:, None] & present_a[None, :]
    one_silent = ((stance_a == 0) & both_in_b) | ((stance_b == 0) & both_in_a)
    upper = np.triu(np.ones((n_tuples, n_tuples), dtype=bool), k=1)
    raw = float(np.sum(opposite & upper)) + penalty * float(
        np.sum(one_silent & upper)
    )
    if not normalized:
        return raw
    worst = max_topk_distance(len(a), len(b), penalty)
    return raw / worst if worst > 0 else 0.0


def max_topk_distance(
    len_a: int, len_b: int, penalty: float = DEFAULT_PENALTY
) -> float:
    """``K^(p)`` distance between two *disjoint* lists (the maximum).

    Cross pairs (one tuple per list) each cost 1; pairs internal to a
    single list cost ``penalty`` because the other list is silent on them.
    """
    cross = len_a * len_b
    silent = len_a * (len_a - 1) // 2 + len_b * (len_b - 1) // 2
    return float(cross) + penalty * float(silent)


def spearman_footrule(
    a: Sequence[int],
    b: Sequence[int],
    n_tuples: Optional[int] = None,
    normalized: bool = True,
) -> float:
    """Footrule distance for top-K lists (absent tuples at rank ``K``).

    A coarser metric than ``K^(p)``; provided for sanity cross-checks (it
    is within a factor 2 of Kendall on full permutations).
    """
    a = list(a)
    b = list(b)
    if n_tuples is None:
        n_tuples = max(a + b, default=-1) + 1
    depth = max(len(a), len(b), 1)
    pos_a = _positions(a, n_tuples, depth)
    pos_b = _positions(b, n_tuples, depth)
    touched = (pos_a < depth) | (pos_b < depth)
    raw = float(np.abs(pos_a - pos_b)[touched].sum())
    if not normalized:
        return raw
    worst = float(depth * (len(a) + len(b)))
    return raw / worst if worst > 0 else 0.0


# ----------------------------------------------------------------------
# Expected distances over an ordering space (vectorized)
# ----------------------------------------------------------------------


def stance_marginals(space: OrderingSpace) -> tuple:
    """Per-pair stance probabilities over the space.

    Returns three ``(N, N)`` arrays ``(P_plus, P_minus, P_zero)`` where
    ``P_plus[i, j] = Pr(ω implies t_i ≺ t_j)`` etc.  Basis for both the
    expected-distance computation and the ORA objective.  Delegates to
    :meth:`~repro.tpo.space.OrderingSpace.pairwise_order_masses`, so no
    ``(L, N, N)`` stance tensor is ever materialized.
    """
    less, _ = space.pairwise_order_masses()
    p_plus = less
    p_minus = less.T.copy()
    p_zero = np.clip(1.0 - p_plus - p_minus, 0.0, 1.0)
    np.fill_diagonal(p_plus, 0.0)
    np.fill_diagonal(p_minus, 0.0)
    np.fill_diagonal(p_zero, 0.0)
    return p_plus, p_minus, p_zero


def presence_pair_marginals(space: OrderingSpace) -> np.ndarray:
    """``(N, N)`` matrix of ``Pr(both t_i and t_j appear in ω)``.

    The penalty term of the ``K^(p)`` distance for pairs *outside* an
    aggregate list applies only when the ordering contains both tuples
    (otherwise the pair is outside the union of the two lists); this
    marginal weights that term in the ORA objective.
    """
    pos = space.positions()
    present = (pos < space.depth).astype(float)
    weighted = present * space.probabilities[:, None]
    both = weighted.T @ present
    np.fill_diagonal(both, 0.0)
    return both


def topk_distance_profile(
    space: OrderingSpace,
    reference: Sequence[int],
    penalty: float = DEFAULT_PENALTY,
    normalized: bool = True,
    chunk: int = 4096,
) -> np.ndarray:
    """``K^(p)(ω, reference)`` for every path ω — an ``(L,)`` vector.

    The expected distance of *any* reweighting of the space to a fixed
    reference is a dot product with this profile, which is what lets the
    batched ``U_MPO`` / ``U_ORA`` measures price many hypothetical
    posteriors against one reference without rebuilding spaces.
    """
    check_fraction("penalty", penalty)
    reference = list(reference)
    n = space.n_tuples
    depth = max(space.depth, len(reference), 1)
    pos_ref = _positions(reference, n, depth)
    present_ref = pos_ref < depth
    both_in_ref = present_ref[:, None] & present_ref[None, :]
    stance_ref = np.sign(pos_ref[None, :] - pos_ref[:, None]).astype(np.int8)
    pos = space.positions().astype(np.int64)
    profile = np.empty(space.size)
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    for start in range(0, space.size, chunk):
        block = slice(start, min(start + chunk, space.size))
        pb = pos[block]
        present = pb < space.depth
        stance = np.sign(pb[:, None, :] - pb[:, :, None]).astype(np.int8)
        opposite = (stance * stance_ref[None, :, :]) < 0
        # Fagin case 4, union-restricted (see topk_kendall).
        both_in_path = present[:, :, None] & present[:, None, :]
        one_silent = (stance == 0) & both_in_ref[None, :, :]
        one_silent |= (stance_ref[None, :, :] == 0) & both_in_path
        profile[block] = (
            (opposite & upper[None, :, :]).sum(axis=(1, 2)).astype(float)
            + penalty
            * (one_silent & upper[None, :, :]).sum(axis=(1, 2)).astype(float)
        )
    if not normalized:
        return profile
    worst = max_topk_distance(space.depth, len(reference), penalty)
    return profile / worst if worst > 0 else np.zeros_like(profile)


def expected_topk_distance(
    space: OrderingSpace,
    reference: Sequence[int],
    penalty: float = DEFAULT_PENALTY,
    normalized: bool = True,
    chunk: int = 4096,
) -> float:
    """``Σ_ω Pr(ω) · K^(p)(ω, reference)`` without materializing each pair.

    This is the paper's ``D(ω_r, T_K)`` when ``reference`` is the real
    ordering's top-K prefix, and the ``U_ORA`` / ``U_MPO`` uncertainty value
    when it is the aggregated / most probable ordering.
    """
    profile = topk_distance_profile(
        space, reference, penalty=penalty, normalized=normalized, chunk=chunk
    )
    return float(np.dot(space.probabilities, profile))


__all__ = [
    "DEFAULT_PENALTY",
    "kendall_tau",
    "topk_kendall",
    "max_topk_distance",
    "spearman_footrule",
    "stance_marginals",
    "presence_pair_marginals",
    "topk_distance_profile",
    "expected_topk_distance",
]
