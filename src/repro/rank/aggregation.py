"""Rank aggregation over a space of possible orderings.

The *Optimal Rank Aggregation* (ORA) of Soliman et al. (SIGMOD'11) is the
top-K list minimizing the expected ``K^(p)`` distance to the orderings of
the space — a median ordering.  Minimizing Kendall-style disagreement is
NP-hard in general, so this module provides

* an **exact** Held–Karp subset DP (optimal; practical for up to ~13
  candidate tuples, which covers the paper's K),
* **Borda** and **Copeland** positional heuristics,
* a **KwikSort** pivot heuristic (Ailon et al.'s 11/7-style approximation
  adapted to weighted tournaments), and
* a **local-search** refinement (adjacent swaps + in/out replacement),

with :func:`optimal_rank_aggregation` choosing automatically.

All methods consume the per-pair stance marginals
(:func:`repro.rank.kendall.stance_marginals`), so their objective is exactly
the expected distance :func:`repro.rank.kendall.expected_topk_distance`
computes — a property the test suite verifies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rank.kendall import DEFAULT_PENALTY, stance_marginals
from repro.tpo.space import OrderingSpace


class AggregationCosts:
    """Pairwise cost terms of the expected ``K^(p)`` distance objective.

    For an aggregate list σ and an unordered pair ``{u, v}`` the expected
    distance contribution depends on σ's stance and, through the union
    semantics of the distance, on the pair's membership:

    * both in σ, ``u`` above ``v`` → ``within[u, v]`` (disagreeing
      orderings cost 1, orderings silent on the pair cost the penalty);
    * ``u`` in σ, ``v`` outside → ``in_out[u, v]`` (only orderings
      decisively ranking ``v`` above ``u`` cost anything — a silent ω
      leaves ``v`` outside the union);
    * both outside σ → ``out_out[u, v]`` (penalty, but only when the
      ordering contains both tuples).
    """

    __slots__ = ("within", "in_out", "out_out", "n")

    def __init__(self, space: OrderingSpace, penalty: float = DEFAULT_PENALTY):
        from repro.rank.kendall import presence_pair_marginals

        p_plus, p_minus, p_zero = stance_marginals(space)
        self.within = p_minus + penalty * p_zero
        self.in_out = p_minus
        self.out_out = penalty * presence_pair_marginals(space)
        self.n = space.n_tuples

    def total(self, ordering: Sequence[int]) -> float:
        """Objective value of a top-K list (lower is better)."""
        ordering = list(ordering)
        inside = np.zeros(self.n, dtype=bool)
        inside[ordering] = True
        cost = 0.0
        # Ordered pairs inside the list.
        for a, u in enumerate(ordering):
            for v in ordering[a + 1 :]:
                cost += self.within[u, v]
        # List item above every outside tuple.
        outside = np.flatnonzero(~inside)
        if outside.size:
            cost += float(self.in_out[np.ix_(ordering, outside)].sum())
        # Both-outside pairs.
        if outside.size > 1:
            sub = self.out_out[np.ix_(outside, outside)]
            cost += 0.5 * float(sub.sum())
        return cost


def _candidates(space: OrderingSpace) -> np.ndarray:
    """Tuples worth aggregating: those present in at least one ordering."""
    return space.present_tuples()


def borda_aggregation(space: OrderingSpace, k: Optional[int] = None) -> np.ndarray:
    """Order tuples by expected rank (absent = rank K); take the best K.

    Cheap (O(L·K)) and surprisingly strong on unimodal spaces.
    """
    k = space.depth if k is None else k
    pos = space.positions().astype(float)
    expected = space.probabilities @ pos
    candidates = _candidates(space)
    order = candidates[np.argsort(expected[candidates], kind="stable")]
    return order[:k].astype(np.int32)


def copeland_aggregation(space: OrderingSpace, k: Optional[int] = None) -> np.ndarray:
    """Order tuples by pairwise-victory count (Copeland rule)."""
    k = space.depth if k is None else k
    w = space.pairwise_preference()
    candidates = _candidates(space)
    sub = w[np.ix_(candidates, candidates)]
    victories = (sub > 0.5).sum(axis=1).astype(float)
    victories += 0.5 * (np.isclose(sub, 0.5).sum(axis=1) - 1)  # ties, minus self
    order = candidates[np.argsort(-victories, kind="stable")]
    return order[:k].astype(np.int32)


def kwiksort_aggregation(
    space: OrderingSpace,
    k: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Randomized pivot ordering by majority preference.

    Deterministic when ``rng`` is None (first element pivots).
    """
    k = space.depth if k is None else k
    w = space.pairwise_preference()
    candidates = list(_candidates(space))

    def sort(items: List[int]) -> List[int]:
        if len(items) <= 1:
            return items
        pivot_index = 0 if rng is None else int(rng.integers(len(items)))
        pivot = items[pivot_index]
        above = [u for u in items if u != pivot and w[u, pivot] > 0.5]
        below = [u for u in items if u != pivot and w[u, pivot] <= 0.5]
        return [*sort(above), pivot, *sort(below)]

    return np.asarray(sort(candidates)[:k], dtype=np.int32)


def local_search(
    ordering: Sequence[int],
    costs: AggregationCosts,
    candidates: Sequence[int],
    max_rounds: int = 50,
) -> np.ndarray:
    """Greedy improvement: adjacent swaps and in/out replacements.

    Runs to a local optimum of the expected-distance objective (or
    ``max_rounds``, whichever first).
    """
    current = list(ordering)
    best_cost = costs.total(current)
    pool = [c for c in candidates]
    for _ in range(max_rounds):
        improved = False
        # Adjacent transpositions.
        for a in range(len(current) - 1):
            trial = current.copy()
            trial[a], trial[a + 1] = trial[a + 1], trial[a]
            trial_cost = costs.total(trial)
            if trial_cost < best_cost - 1e-12:
                current, best_cost = trial, trial_cost
                improved = True
        # Replace a list member with an outside candidate.
        outside = [c for c in pool if c not in set(current)]
        for a in range(len(current)):
            for candidate in outside:
                trial = current.copy()
                trial[a] = candidate
                trial_cost = costs.total(trial)
                if trial_cost < best_cost - 1e-12:
                    current, best_cost = trial, trial_cost
                    improved = True
                    outside = [c for c in pool if c not in set(current)]
                    break
        if not improved:
            break
    return np.asarray(current, dtype=np.int32)


def exact_aggregation(
    space: OrderingSpace,
    k: Optional[int] = None,
    penalty: float = DEFAULT_PENALTY,
) -> np.ndarray:
    """Optimal top-K aggregation by Held–Karp subset DP.

    State = set of tuples already placed (they occupy the best ranks);
    appending ``t`` below a set ``S`` adds ``Σ_{s∈S} before[s, t]``.
    Membership-dependent terms (list-vs-outside, outside-vs-outside) are
    added per final subset.  Exponential in the candidate count — guarded
    by :func:`optimal_rank_aggregation`.
    """
    k = space.depth if k is None else k
    costs = AggregationCosts(space, penalty)
    candidates = list(_candidates(space))
    m = len(candidates)
    k = min(k, m)
    if m > 20:
        raise ValueError(
            f"exact aggregation over {m} candidates is intractable; "
            "use method='auto' or a heuristic"
        )
    within = costs.within
    # f[mask] = (cost, last_item, prev_mask) over candidate-index bitmasks.
    f: Dict[int, Tuple[float, int, int]] = {0: (0.0, -1, 0)}
    frontier = [0]
    for _ in range(k):
        new_frontier: Dict[int, Tuple[float, int, int]] = {}
        for mask in frontier:
            base_cost = f[mask][0]
            placed = [candidates[b] for b in range(m) if mask & (1 << b)]
            for b in range(m):
                bit = 1 << b
                if mask & bit:
                    continue
                t = candidates[b]
                added = sum(within[s, t] for s in placed)
                new_mask = mask | bit
                total = base_cost + added
                known = new_frontier.get(new_mask)
                if known is None or total < known[0]:
                    new_frontier[new_mask] = (total, b, mask)
        f.update(new_frontier)
        frontier = list(new_frontier.keys())
    # Add membership terms and pick the best size-k subset.
    best_mask, best_total = None, np.inf
    all_tuples = np.arange(costs.n)
    for mask in frontier:
        chosen = [candidates[b] for b in range(m) if mask & (1 << b)]
        inside = np.zeros(costs.n, dtype=bool)
        inside[chosen] = True
        outside = all_tuples[~inside]
        cross = (
            float(costs.in_out[np.ix_(chosen, outside)].sum())
            if outside.size
            else 0.0
        )
        both = (
            0.5 * float(costs.out_out[np.ix_(outside, outside)].sum())
            if outside.size > 1
            else 0.0
        )
        total = f[mask][0] + cross + both
        if total < best_total:
            best_total, best_mask = total, mask
    # Reconstruct the ordering.
    ordering: List[int] = []
    mask = best_mask
    while mask:
        _, b, prev = f[mask]
        ordering.append(candidates[b])
        mask = prev
    ordering.reverse()
    return np.asarray(ordering, dtype=np.int32)


def optimal_rank_aggregation(
    space: OrderingSpace,
    k: Optional[int] = None,
    method: str = "auto",
    penalty: float = DEFAULT_PENALTY,
    exact_limit: int = 12,
) -> np.ndarray:
    """Compute the ORA of a space of orderings.

    ``method``:

    * ``"auto"`` — exact DP when at most ``exact_limit`` tuples appear in
      the space, otherwise Borda seeding + local search;
    * ``"exact"`` / ``"borda"`` / ``"copeland"`` / ``"kwiksort"`` /
      ``"borda+ls"`` — force a specific algorithm.
    """
    k = space.depth if k is None else k
    if method == "exact":
        return exact_aggregation(space, k, penalty)
    if method == "borda":
        return borda_aggregation(space, k)
    if method == "copeland":
        return copeland_aggregation(space, k)
    if method == "kwiksort":
        return kwiksort_aggregation(space, k)
    if method == "borda+ls":
        costs = AggregationCosts(space, penalty)
        seed = borda_aggregation(space, k)
        return local_search(seed, costs, _candidates(space))
    if method == "auto":
        candidates = _candidates(space)
        if len(candidates) <= exact_limit:
            return exact_aggregation(space, k, penalty)
        costs = AggregationCosts(space, penalty)
        seed = borda_aggregation(space, k)
        return local_search(seed, costs, candidates)
    raise ValueError(
        f"unknown aggregation method {method!r}; choose from "
        "exact, borda, copeland, kwiksort, borda+ls, auto"
    )


__all__ = [
    "AggregationCosts",
    "borda_aggregation",
    "copeland_aggregation",
    "kwiksort_aggregation",
    "local_search",
    "exact_aggregation",
    "optimal_rank_aggregation",
]
