"""Interface for TPO uncertainty measures.

The paper proposes four measures of how uncertain a tree of possible
orderings is (§II): entropy, weighted per-level entropy, and expected
distance to a representative ordering (ORA or MPO).  All of them are
functions of the flattened ordering space, so a measure here is simply a
callable ``space → float`` with two contractual properties the test suite
enforces:

* **certainty ⇒ zero** — a space with one ordering measures 0;
* **non-negativity** — values are ≥ 0.

Measures are *not* required to be comparable across different spaces (they
quantify residual uncertainty of one query), and the question-selection
machinery never compares values across budgets or datasets.
"""

from __future__ import annotations

import abc

from repro.tpo.space import OrderingSpace


class UncertaintyMeasure(abc.ABC):
    """A functional quantifying the uncertainty of an ordering space."""

    #: Short identifier used in experiment configs and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def __call__(self, space: OrderingSpace) -> float:
        """Evaluate the measure; must be ≥ 0 and 0 for a singleton space."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


__all__ = ["UncertaintyMeasure"]
