"""Interface for TPO uncertainty measures.

The paper proposes four measures of how uncertain a tree of possible
orderings is (§II): entropy, weighted per-level entropy, and expected
distance to a representative ordering (ORA or MPO).  All of them are
functions of the flattened ordering space, so a measure here is simply a
callable ``space → float`` with two contractual properties the test suite
enforces:

* **certainty ⇒ zero** — a space with one ordering measures 0;
* **non-negativity** — values are ≥ 0.

Measures are *not* required to be comparable across different spaces (they
quantify residual uncertainty of one query), and the question-selection
machinery never compares values across budgets or datasets.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from repro.tpo.space import OrderingSpace


class UncertaintyMeasure(abc.ABC):
    """A functional quantifying the uncertainty of an ordering space."""

    #: Short identifier used in experiment configs and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def __call__(self, space: OrderingSpace) -> float:
        """Evaluate the measure; must be ≥ 0 and 0 for a singleton space."""

    def evaluate_interval(
        self, space: OrderingSpace
    ) -> Tuple[float, float]:
        """Certified interval ``[lo, hi]`` around the exact measure value.

        On an exact space (``space.lost_mass == 0``) both endpoints equal
        ``self(space)``.  On a beam-approximate space the interval must
        contain the value the measure would report on the full, unpruned
        space — the epistemic contract of the anytime engines: an
        approximation may widen the answer but never lie about it.

        This base fallback knows nothing about a custom measure's modulus
        of continuity under missing mass, so it returns the trivial
        ``[0, inf)`` bound; the built-in measures override it with sharp
        intervals.
        """
        value = float(self(space))
        if space.lost_mass <= 0.0:
            return (value, value)
        return (0.0, float("inf"))

    # ------------------------------------------------------------------
    # Batched evaluation over hypothetical posteriors
    # ------------------------------------------------------------------

    def evaluate_batch(
        self, space: OrderingSpace, weights: np.ndarray
    ) -> np.ndarray:
        """Evaluate the measure on many hypothetical posteriors at once.

        ``weights`` is a ``(B, L)`` matrix of non-negative path masses over
        ``space.paths``; each row describes one hypothetical posterior
        (e.g. the space after pruning with one possible answer).  Rows need
        not be normalized, but every row must carry positive total mass.
        A zero entry means the path is excluded — semantically identical to
        ``space.restrict`` followed by renormalization.

        Returns the ``(B,)`` vector of measure values.  Subclasses override
        this with vectorized implementations that never materialize an
        intermediate :class:`OrderingSpace`; this base fallback keeps
        arbitrary user measures correct by evaluating row-by-row on
        restricted spaces (the scalar oracle the parity tests compare
        against).
        """
        weights = self._check_weights(space, weights)
        values = np.empty(weights.shape[0])
        for row_index, row in enumerate(weights):
            keep = row > 0.0
            restricted = OrderingSpace(
                space.paths[keep], row[keep], space.n_tuples
            )
            values[row_index] = self(restricted)
        return values

    def evaluate_restrictions(
        self, space: OrderingSpace, masks: np.ndarray
    ) -> np.ndarray:
        """Evaluate the measure after many hypothetical *prunings* at once.

        ``masks`` is a ``(B, L)`` boolean matrix; row ``r`` describes the
        sub-space keeping exactly the paths where ``masks[r]`` is True
        (with their original relative probabilities).  Semantically this is
        ``evaluate_batch(space, masks * space.probabilities)`` — the form
        every answer-conditioned residual takes — but knowing the rows are
        maskings of one shared vector lets measures precompute per-path
        statistics once and reduce each row to dot products (see
        :class:`~repro.uncertainty.entropy.EntropyMeasure`).
        """
        masks = np.asarray(masks)
        return self.evaluate_batch(
            space, masks * space.probabilities[None, :]
        )

    @staticmethod
    def _check_weights(space: OrderingSpace, weights: np.ndarray) -> np.ndarray:
        """Validate a hypothetical-posterior matrix (shared by overrides)."""
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 2 or weights.shape[1] != space.size:
            raise ValueError(
                f"weights must be (B, {space.size}), got {weights.shape}"
            )
        if np.any(weights < 0.0):
            raise ValueError("hypothetical posterior weights must be >= 0")
        if weights.shape[0] and np.any(weights.sum(axis=1) <= 0.0):
            raise ValueError("every weights row needs positive total mass")
        return weights

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


__all__ = ["UncertaintyMeasure"]
