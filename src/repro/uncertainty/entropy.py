"""Entropy-based uncertainty measures (``U_H`` and ``U_Hw``).

``U_H`` is the state-of-the-art baseline the paper compares against: the
Shannon entropy of the leaf (ordering) probabilities.  ``U_Hw`` additionally
looks at the *structure* of the tree by combining the entropies of the
prefix distributions at every level ``1..K`` — two spaces with identical
leaf entropy but different agreement on the first ranks are told apart.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple, Union

import numpy as np

from repro.tpo.space import OrderingSpace
from repro.uncertainty.base import UncertaintyMeasure


def _lost_entropy_slack(
    delta: float, lost_leaves: float, base: float
) -> float:
    """Upper entropy slack from ≤ ``delta`` mass over ≤ ``lost_leaves`` outcomes.

    Splitting a distribution as ``(1 − δ*) q + δ* r`` with ``δ* ≤ δ`` and
    ``r`` supported on at most ``T`` outcomes, the grouping identity gives
    ``H(p) ≤ H(q) + h(δ*) + δ*·ln T`` (nats), where ``h`` is the binary
    entropy.  Maximized over ``δ* ∈ [0, δ]``: ``h`` peaks at 1/2 and the
    linear term at ``δ``.  Returned in ``base`` units.
    """
    x = min(max(delta, 0.0), 0.5)
    binary = 0.0
    if 0.0 < x < 1.0:
        binary = -x * np.log(x) - (1.0 - x) * np.log(1.0 - x)
    support = np.log(max(float(lost_leaves), 1.0))
    return float((binary + delta * support) / np.log(base))


def shannon_entropy(masses: np.ndarray, base: float = 2.0) -> float:
    """Entropy of a probability vector, ignoring zero entries."""
    masses = np.asarray(masses, dtype=float)
    positive = masses[masses > 0]
    if positive.size <= 1:
        return 0.0
    return float(-np.sum(positive * np.log(positive)) / np.log(base))


def shannon_entropy_rows(matrix: np.ndarray, base: float = 2.0) -> np.ndarray:
    """Row-wise entropy of a ``(B, G)`` matrix of unnormalized masses.

    Each row is normalized to a distribution first; zero entries contribute
    nothing (matching :func:`shannon_entropy` on the compacted row).
    """
    matrix = np.asarray(matrix, dtype=float)
    totals = matrix.sum(axis=1, keepdims=True)
    normalized = np.divide(
        matrix, totals, out=np.zeros_like(matrix), where=totals > 0
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(
            normalized > 0, normalized * np.log(normalized), 0.0
        )
    return -terms.sum(axis=1) / np.log(base)


class EntropyMeasure(UncertaintyMeasure):
    """``U_H``: Shannon entropy of the ordering probabilities.

    Depends only on the leaf probability vector — the tree structure is
    invisible to it, which is exactly the weakness the paper's structural
    measures address.
    """

    name = "H"

    def __init__(self, base: float = 2.0) -> None:
        if base <= 1.0:
            raise ValueError(f"entropy base must exceed 1, got {base}")
        self.base = base

    def __call__(self, space: OrderingSpace) -> float:
        return shannon_entropy(space.probabilities, self.base)

    def evaluate_interval(
        self, space: OrderingSpace
    ) -> Tuple[float, float]:
        """Sharp entropy interval under certified lost mass.

        The retained distribution ``q`` is the true one conditioned on
        the kept orderings, so ``H(p) ≥ (1 − δ)·H(q)`` (dropping the
        non-negative cross terms of the grouping identity) and
        ``H(p) ≤ H(q) + h(δ) + δ·ln T`` with ``T`` bounded by the tree's
        lost-leaf count.
        """
        value = float(self(space))
        delta = space.lost_mass
        if delta <= 0.0:
            return (value, value)
        slack = _lost_entropy_slack(delta, space.lost_leaves, self.base)
        return (max(0.0, (1.0 - delta) * value), value + slack)

    def evaluate_batch(
        self, space: OrderingSpace, weights: np.ndarray
    ) -> np.ndarray:
        """Row-wise leaf entropy — no intermediate spaces."""
        weights = self._check_weights(space, weights)
        return shannon_entropy_rows(weights, self.base)

    def evaluate_restrictions(
        self, space: OrderingSpace, masks: np.ndarray
    ) -> np.ndarray:
        """Pruning hypotheticals via ``Σ q·ln q = (Σ_S p·ln p)/T − ln T``.

        The per-path ``p·ln p`` vector is computed once, so each row costs
        two mask–vector products and zero transcendentals — the fast path
        behind the ≥5× selection-step speedup ``bench_policies.py`` tracks.
        """
        masks = np.asarray(masks, dtype=float)
        p = space.probabilities
        plogp = np.zeros_like(p)
        positive = p > 0.0
        plogp[positive] = p[positive] * np.log(p[positive])
        totals = masks @ p
        if np.any(totals <= 0.0):
            raise ValueError("every restriction needs surviving mass")
        sums = masks @ plogp
        return (np.log(totals) - sums / totals) / np.log(self.base)


WeightsLike = Union[None, Sequence[float], Callable[[int], np.ndarray]]


def linear_level_weights(depth: int) -> np.ndarray:
    """Default ``U_Hw`` weights: ``w_k ∝ K − k + 1`` (top ranks dominate).

    The extended abstract fixes only that ``U_Hw`` is "a weighted
    combination of entropy values at the first K levels"; linearly
    decreasing weights encode the natural reading that uncertainty about
    rank 1 hurts a top-K answer more than uncertainty about rank K
    (documented design choice, overridable).
    """
    raw = np.arange(depth, 0, -1, dtype=float)
    return raw / raw.sum()


class WeightedEntropyMeasure(UncertaintyMeasure):
    """``U_Hw``: weighted combination of per-level prefix entropies.

    ``U_Hw(T_K) = Σ_{k=1..K} w_k · H(level-k prefix distribution)``.
    """

    name = "Hw"

    def __init__(self, weights: WeightsLike = None, base: float = 2.0) -> None:
        if base <= 1.0:
            raise ValueError(f"entropy base must exceed 1, got {base}")
        self.base = base
        self._weights = weights

    def level_weights(self, depth: int) -> np.ndarray:
        """Resolve the weight vector for a K-level space (sums to 1)."""
        if self._weights is None:
            return linear_level_weights(depth)
        if callable(self._weights):
            weights = np.asarray(self._weights(depth), dtype=float)
        else:
            weights = np.asarray(self._weights, dtype=float)
            if weights.size < depth:
                raise ValueError(
                    f"need at least {depth} level weights, got {weights.size}"
                )
            weights = weights[:depth]
        total = weights.sum()
        if total <= 0:
            raise ValueError("level weights must have positive sum")
        return weights / total

    def __call__(self, space: OrderingSpace) -> float:
        weights = self.level_weights(space.depth)
        value = 0.0
        for level in range(1, space.depth + 1):
            if weights[level - 1] == 0.0:
                continue
            _, masses = space.prefix_groups(level)
            value += weights[level - 1] * shannon_entropy(masses, self.base)
        return value

    def evaluate_interval(
        self, space: OrderingSpace
    ) -> Tuple[float, float]:
        """Interval for the weighted per-level combination.

        Each level's prefix entropy obeys the same lost-mass bounds as
        the leaf entropy (a dropped subtree hides at most the leaf count
        of prefixes per level, and the dropped mass per level is within
        the same δ), and the level weights sum to 1 — so the slack of
        the combination is bounded by the single-level slack.
        """
        value = float(self(space))
        delta = space.lost_mass
        if delta <= 0.0:
            return (value, value)
        slack = _lost_entropy_slack(delta, space.lost_leaves, self.base)
        return (max(0.0, (1.0 - delta) * value), value + slack)

    def evaluate_batch(
        self, space: OrderingSpace, weights: np.ndarray
    ) -> np.ndarray:
        """Per-level prefix entropies via segment sums over shared groups.

        The prefix grouping of the *full* space is computed once per level;
        each hypothetical posterior only redistributes mass among those
        groups (a pruned prefix simply ends up with zero mass, which is
        entropy-neutral), so one ``reduceat`` per level prices every
        hypothetical without touching path arrays again.
        """
        weights = self._check_weights(space, weights)
        level_weights = self.level_weights(space.depth)
        totals = weights.sum(axis=1, keepdims=True)
        normalized = weights / totals
        values = np.zeros(weights.shape[0])
        for level in range(1, space.depth + 1):
            if level_weights[level - 1] == 0.0:
                continue
            order, starts = space.prefix_group_index(level)
            group_masses = np.add.reduceat(
                normalized[:, order], starts, axis=1
            )
            values += level_weights[level - 1] * shannon_entropy_rows(
                group_masses, self.base
            )
        return values


__all__ = [
    "shannon_entropy",
    "shannon_entropy_rows",
    "linear_level_weights",
    "EntropyMeasure",
    "WeightedEntropyMeasure",
]
