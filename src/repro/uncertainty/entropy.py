"""Entropy-based uncertainty measures (``U_H`` and ``U_Hw``).

``U_H`` is the state-of-the-art baseline the paper compares against: the
Shannon entropy of the leaf (ordering) probabilities.  ``U_Hw`` additionally
looks at the *structure* of the tree by combining the entropies of the
prefix distributions at every level ``1..K`` — two spaces with identical
leaf entropy but different agreement on the first ranks are told apart.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.tpo.space import OrderingSpace
from repro.uncertainty.base import UncertaintyMeasure


def shannon_entropy(masses: np.ndarray, base: float = 2.0) -> float:
    """Entropy of a probability vector, ignoring zero entries."""
    masses = np.asarray(masses, dtype=float)
    positive = masses[masses > 0]
    if positive.size <= 1:
        return 0.0
    return float(-np.sum(positive * np.log(positive)) / np.log(base))


class EntropyMeasure(UncertaintyMeasure):
    """``U_H``: Shannon entropy of the ordering probabilities.

    Depends only on the leaf probability vector — the tree structure is
    invisible to it, which is exactly the weakness the paper's structural
    measures address.
    """

    name = "H"

    def __init__(self, base: float = 2.0) -> None:
        if base <= 1.0:
            raise ValueError(f"entropy base must exceed 1, got {base}")
        self.base = base

    def __call__(self, space: OrderingSpace) -> float:
        return shannon_entropy(space.probabilities, self.base)


WeightsLike = Union[None, Sequence[float], Callable[[int], np.ndarray]]


def linear_level_weights(depth: int) -> np.ndarray:
    """Default ``U_Hw`` weights: ``w_k ∝ K − k + 1`` (top ranks dominate).

    The extended abstract fixes only that ``U_Hw`` is "a weighted
    combination of entropy values at the first K levels"; linearly
    decreasing weights encode the natural reading that uncertainty about
    rank 1 hurts a top-K answer more than uncertainty about rank K
    (documented design choice, overridable).
    """
    raw = np.arange(depth, 0, -1, dtype=float)
    return raw / raw.sum()


class WeightedEntropyMeasure(UncertaintyMeasure):
    """``U_Hw``: weighted combination of per-level prefix entropies.

    ``U_Hw(T_K) = Σ_{k=1..K} w_k · H(level-k prefix distribution)``.
    """

    name = "Hw"

    def __init__(self, weights: WeightsLike = None, base: float = 2.0) -> None:
        if base <= 1.0:
            raise ValueError(f"entropy base must exceed 1, got {base}")
        self.base = base
        self._weights = weights

    def level_weights(self, depth: int) -> np.ndarray:
        """Resolve the weight vector for a K-level space (sums to 1)."""
        if self._weights is None:
            return linear_level_weights(depth)
        if callable(self._weights):
            weights = np.asarray(self._weights(depth), dtype=float)
        else:
            weights = np.asarray(self._weights, dtype=float)
            if weights.size < depth:
                raise ValueError(
                    f"need at least {depth} level weights, got {weights.size}"
                )
            weights = weights[:depth]
        total = weights.sum()
        if total <= 0:
            raise ValueError("level weights must have positive sum")
        return weights / total

    def __call__(self, space: OrderingSpace) -> float:
        weights = self.level_weights(space.depth)
        value = 0.0
        for level in range(1, space.depth + 1):
            if weights[level - 1] == 0.0:
                continue
            _, masses = space.prefix_groups(level)
            value += weights[level - 1] * shannon_entropy(masses, self.base)
        return value


__all__ = [
    "shannon_entropy",
    "linear_level_weights",
    "EntropyMeasure",
    "WeightedEntropyMeasure",
]
