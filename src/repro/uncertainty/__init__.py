"""TPO uncertainty measures (substrate S3 in DESIGN.md)."""

from repro.uncertainty.base import UncertaintyMeasure
from repro.uncertainty.entropy import (
    EntropyMeasure,
    WeightedEntropyMeasure,
    linear_level_weights,
    shannon_entropy,
)
from repro.uncertainty.registry import (
    available_measures,
    get_measure,
    register_measure,
)
from repro.uncertainty.representative import MPOUncertainty, ORAUncertainty

__all__ = [
    "UncertaintyMeasure",
    "EntropyMeasure",
    "WeightedEntropyMeasure",
    "ORAUncertainty",
    "MPOUncertainty",
    "shannon_entropy",
    "linear_level_weights",
    "get_measure",
    "register_measure",
    "available_measures",
]
