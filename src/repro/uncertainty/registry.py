"""Name-based lookup of uncertainty measures.

Experiment configurations refer to measures by the paper's names
(``"H"``, ``"Hw"``, ``"ORA"``, ``"MPO"``); this registry resolves them and
lets downstream users plug in custom measures.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.uncertainty.base import UncertaintyMeasure
from repro.uncertainty.entropy import EntropyMeasure, WeightedEntropyMeasure
from repro.uncertainty.representative import MPOUncertainty, ORAUncertainty

_FACTORIES: Dict[str, Callable[[], UncertaintyMeasure]] = {
    "H": EntropyMeasure,
    "Hw": WeightedEntropyMeasure,
    "ORA": ORAUncertainty,
    "MPO": MPOUncertainty,
}


def get_measure(name: str, **kwargs) -> UncertaintyMeasure:
    """Instantiate a measure by paper name (case-sensitive).

    Extra keyword arguments are forwarded to the measure constructor,
    e.g. ``get_measure("ORA", method="exact")``.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown uncertainty measure {name!r}; "
            f"available: {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def register_measure(
    name: str, factory: Callable[[], UncertaintyMeasure]
) -> None:
    """Register a custom measure under ``name`` (overwrites existing)."""
    _FACTORIES[name] = factory


def available_measures() -> list:
    """Sorted names of all registered measures."""
    return sorted(_FACTORIES)


__all__ = ["get_measure", "register_measure", "available_measures"]
