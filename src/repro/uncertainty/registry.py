"""Deprecated shims over the unified measure registry.

The measure lookup now lives in :data:`repro.api.MEASURES` (one
:class:`~repro.api.registry.Registry` instance shared with the service's
``/v1/meta`` endpoint and ``repro list``).  The three historical entry
points below keep working but emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import Callable

from repro.api._deprecation import warn_deprecated
from repro.api.catalog import MEASURES
from repro.uncertainty.base import UncertaintyMeasure


def get_measure(name: str, **kwargs) -> UncertaintyMeasure:
    """Deprecated shim: use :class:`repro.api.MeasureSpec` or
    ``repro.api.MEASURES.create`` instead."""
    warn_deprecated(
        "repro.uncertainty.get_measure", "repro.api.MEASURES.create"
    )
    return MEASURES.create(name, **kwargs)


def register_measure(
    name: str, factory: Callable[[], UncertaintyMeasure]
) -> None:
    """Deprecated shim: use ``repro.api.MEASURES.register`` instead.

    Keeps the historical overwrite-silently semantics.
    """
    warn_deprecated(
        "repro.uncertainty.register_measure", "repro.api.MEASURES.register"
    )
    MEASURES.register(name, factory, overwrite=True)


def available_measures() -> list:
    """Deprecated shim: use ``repro.api.MEASURES.available`` instead."""
    warn_deprecated(
        "repro.uncertainty.available_measures",
        "repro.api.MEASURES.available",
    )
    return MEASURES.available()


__all__ = ["get_measure", "register_measure", "available_measures"]
