"""Representative-ordering uncertainty measures (``U_ORA`` and ``U_MPO``).

Both quantify uncertainty as the probability-weighted distance between the
orderings of the space and one representative:

* ``U_ORA`` — the Optimal Rank Aggregation, the median ordering minimizing
  exactly this expected distance (Soliman et al., SIGMOD'11);
* ``U_MPO`` — the Most Probable Ordering, i.e. the modal leaf.

By construction ``U_ORA(T) ≤ U_MPO(T)`` when the ORA is computed exactly —
a relation the property tests check on small instances.
"""

from __future__ import annotations

from repro.rank.aggregation import optimal_rank_aggregation
from repro.rank.kendall import DEFAULT_PENALTY, expected_topk_distance
from repro.tpo.space import OrderingSpace
from repro.uncertainty.base import UncertaintyMeasure


class ORAUncertainty(UncertaintyMeasure):
    """``U_ORA``: expected normalized top-K distance to the ORA.

    Parameters
    ----------
    method:
        Aggregation algorithm (see
        :func:`repro.rank.aggregation.optimal_rank_aggregation`).  The
        default ``"borda"`` keeps the measure cheap enough to sit inside
        question-selection loops; use ``"auto"``/``"exact"`` when fidelity
        matters more than speed.
    penalty:
        Fagin neutral-pair penalty of the underlying distance.
    """

    name = "ORA"

    def __init__(
        self, method: str = "borda", penalty: float = DEFAULT_PENALTY
    ) -> None:
        self.method = method
        self.penalty = penalty

    def __call__(self, space: OrderingSpace) -> float:
        if space.is_certain:
            return 0.0
        reference = optimal_rank_aggregation(
            space, k=space.depth, method=self.method, penalty=self.penalty
        )
        return expected_topk_distance(
            space, reference, penalty=self.penalty, normalized=True
        )


class MPOUncertainty(UncertaintyMeasure):
    """``U_MPO``: expected normalized top-K distance to the modal ordering."""

    name = "MPO"

    def __init__(self, penalty: float = DEFAULT_PENALTY) -> None:
        self.penalty = penalty

    def __call__(self, space: OrderingSpace) -> float:
        if space.is_certain:
            return 0.0
        reference = space.most_probable_ordering()
        return expected_topk_distance(
            space, reference, penalty=self.penalty, normalized=True
        )


__all__ = ["ORAUncertainty", "MPOUncertainty"]
