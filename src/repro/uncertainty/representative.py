"""Representative-ordering uncertainty measures (``U_ORA`` and ``U_MPO``).

Both quantify uncertainty as the probability-weighted distance between the
orderings of the space and one representative:

* ``U_ORA`` — the Optimal Rank Aggregation, the median ordering minimizing
  exactly this expected distance (Soliman et al., SIGMOD'11);
* ``U_MPO`` — the Most Probable Ordering, i.e. the modal leaf.

By construction ``U_ORA(T) ≤ U_MPO(T)`` when the ORA is computed exactly —
a relation the property tests check on small instances.
"""

from __future__ import annotations

import weakref
from typing import Tuple

import numpy as np

from repro.rank.aggregation import borda_aggregation, optimal_rank_aggregation
from repro.rank.kendall import (
    DEFAULT_PENALTY,
    expected_topk_distance,
    topk_distance_profile,
)
from repro.tpo.space import OrderingSpace
from repro.uncertainty.base import UncertaintyMeasure


#: Per-space distance-profile caches; weak keys tie each cache's lifetime
#: to its space, the FIFO limit bounds memory at ~limit·L floats per space.
_PROFILE_CACHES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_PROFILE_CACHE_LIMIT = 128


def _scaled_distance_interval(
    value: float, delta: float
) -> Tuple[float, float]:
    """Interval of an expected normalized distance under ≤ ``delta`` lost mass.

    With the reference certified unchanged, the true expectation mixes
    the retained conditional (worth ``value``) with at most ``delta``
    unseen mass whose normalized distance lies in ``[0, 1]``:
    ``(1 − δ*)·value + δ*·[0, 1]`` for some ``δ* ≤ δ``, which the
    endpoints below contain.
    """
    lo = max(0.0, (1.0 - delta) * value)
    hi = min(1.0, value + delta * (1.0 - value))
    return (lo, hi)


def _profile_dot(
    space: OrderingSpace,
    weights: np.ndarray,
    references: np.ndarray,
    penalty: float,
) -> np.ndarray:
    """Expected normalized distance of each weights row to its reference.

    ``references`` is ``(B, K)``; rows sharing a reference share one
    distance profile.  Profiles are cached per space (weakly keyed, so
    they die with it) because one greedy selection step makes many
    separate calls against the same space with largely identical
    references; the per-space cache is FIFO-bounded so a deep search
    generating many distinct references cannot pin O(L) memory per
    reference indefinitely.
    """
    totals = weights.sum(axis=1)
    values = np.empty(weights.shape[0])
    profiles = _PROFILE_CACHES.get(space)
    if profiles is None:
        profiles = {}
        _PROFILE_CACHES[space] = profiles
    for row_index in range(weights.shape[0]):
        key = (references[row_index].tobytes(), penalty)
        profile = profiles.get(key)
        if profile is None:
            profile = topk_distance_profile(
                space,
                references[row_index],
                penalty=penalty,
                normalized=True,
            )
            if len(profiles) >= _PROFILE_CACHE_LIMIT:
                profiles.pop(next(iter(profiles)))
            profiles[key] = profile
        values[row_index] = (
            np.dot(weights[row_index], profile) / totals[row_index]
        )
    return values


class ORAUncertainty(UncertaintyMeasure):
    """``U_ORA``: expected normalized top-K distance to the ORA.

    Parameters
    ----------
    method:
        Aggregation algorithm (see
        :func:`repro.rank.aggregation.optimal_rank_aggregation`).  The
        default ``"borda"`` keeps the measure cheap enough to sit inside
        question-selection loops; use ``"auto"``/``"exact"`` when fidelity
        matters more than speed.
    penalty:
        Fagin neutral-pair penalty of the underlying distance.
    """

    name = "ORA"

    def __init__(
        self, method: str = "borda", penalty: float = DEFAULT_PENALTY
    ) -> None:
        self.method = method
        self.penalty = penalty

    def __call__(self, space: OrderingSpace) -> float:
        if space.is_certain:
            return 0.0
        reference = optimal_rank_aggregation(
            space, k=space.depth, method=self.method, penalty=self.penalty
        )
        return expected_topk_distance(
            space, reference, penalty=self.penalty, normalized=True
        )

    def evaluate_interval(
        self, space: OrderingSpace
    ) -> Tuple[float, float]:
        """Interval for the Borda-aggregated expected distance.

        Sound when the Borda reference is *stable* under the lost mass:
        expected positions shift by at most ``δ·K`` (a position is in
        ``[0, K]``), so if every consecutive gap among the reference-
        deciding expected positions (the first K and the K-boundary)
        exceeds ``2δK``, the full space aggregates to the same reference
        and the scaled-mixture interval applies.  Otherwise the reference
        itself may differ and only the trivial ``[0, 1]`` is certified.
        """
        value = float(self(space))
        delta = space.lost_mass
        if delta <= 0.0:
            return (value, value)
        if delta >= 1.0 or self.method != "borda":
            return (0.0, 1.0)
        if self._borda_reference_stable(space, delta):
            return _scaled_distance_interval(value, delta)
        return (0.0, 1.0)

    @staticmethod
    def _borda_reference_stable(
        space: OrderingSpace, delta: float
    ) -> bool:
        """True when ≤ ``delta`` lost mass cannot flip the Borda reference."""
        pos = space.positions().astype(float)
        expected = space.probabilities @ pos
        order = np.argsort(expected, kind="stable")
        boundary = expected[order[: space.depth + 1]]
        gaps = np.diff(boundary)
        return bool(np.all(gaps > 2.0 * delta * space.depth))

    def evaluate_batch(
        self, space: OrderingSpace, weights: np.ndarray
    ) -> np.ndarray:
        """Batched ``U_ORA`` for the Borda aggregation method.

        Borda only needs each hypothetical's expected tuple positions —
        one matmul for the whole batch; the expected distance to each
        aggregate is a profile dot product.  Non-Borda methods fall back
        to the generic per-row oracle (their aggregations are not
        expressible as a reweighting of shared statistics).
        """
        if self.method != "borda":
            return super().evaluate_batch(space, weights)
        weights = self._check_weights(space, weights)
        return self._borda_values(space, weights, support=weights > 0.0)

    def evaluate_restrictions(
        self, space: OrderingSpace, masks: np.ndarray
    ) -> np.ndarray:
        """Pruning hypotheticals keep the mask as the survivor set.

        Presence must come from the *mask*, not from ``weights > 0``: a
        kept zero-probability path still contributes its tuples to the
        Borda candidate set, exactly as ``space.restrict(mask)`` retains
        the path — deriving support from the weights would silently drop
        such tuples and break scalar parity.
        """
        if self.method != "borda":
            return super().evaluate_restrictions(space, masks)
        masks = np.asarray(masks, dtype=bool)
        weights = self._check_weights(
            space, masks * space.probabilities[None, :]
        )
        return self._borda_values(space, weights, support=masks)

    def _borda_values(
        self, space: OrderingSpace, weights: np.ndarray, support: np.ndarray
    ) -> np.ndarray:
        """Shared Borda pricing given per-row survivor sets ``support``."""
        if weights.shape[0] == 0:
            return np.zeros(0)
        depth = space.depth
        pos = space.positions().astype(float)
        totals = weights.sum(axis=1, keepdims=True)
        expected = (weights / totals) @ pos
        # A tuple is present in a hypothetical space iff some surviving
        # path contains it; absent tuples sort last (Borda ignores them).
        present = support.astype(float) @ (pos < depth).astype(float) > 0.0
        masked = np.where(present, expected, np.inf)
        # Stable argsort ties on ascending tuple index — exactly the order
        # borda_aggregation produces from its sorted candidate list.
        order = np.argsort(masked, axis=1, kind="stable")
        references = order[:, :depth].astype(np.int32)
        # Exact or last-ulp ties among the expected positions that decide
        # the reference (the first K and the K-boundary) are fp-association
        # sensitive: the vectorized sums may round differently than the
        # scalar oracle's compacted sums and flip the stable sort.  Those
        # rows re-derive their reference through the scalar Borda path so
        # the documented batch/scalar parity holds even on tied spaces
        # (e.g. uniform path masses from the Monte Carlo engine).
        boundary = np.take_along_axis(masked, order[:, : depth + 1], axis=1)
        tied = np.any(np.diff(boundary, axis=1) <= 1e-9, axis=1)
        for row_index in np.flatnonzero(tied):
            row = weights[row_index]
            keep = support[row_index]
            if np.array_equal(row[keep], space.probabilities[keep]):
                # Pure masking (an answer-conditioned pruning): restrict()
                # — not a fresh OrderingSpace — so an all-true mask returns
                # the space itself without renormalizing, exactly like the
                # scalar residual oracle; rebuilding would divide by a
                # ≈1.0 sum and perturb tied positions at the last ulp.
                restricted = space.restrict(keep)
            else:
                # Genuinely reweighted posterior: the reference must be
                # aggregated under the row's own masses, matching the
                # base-class row-by-row oracle.
                restricted = OrderingSpace(
                    space.paths[keep], row[keep], space.n_tuples
                )
            references[row_index] = borda_aggregation(restricted, depth)
        return _profile_dot(space, weights, references, self.penalty)


class MPOUncertainty(UncertaintyMeasure):
    """``U_MPO``: expected normalized top-K distance to the modal ordering."""

    name = "MPO"

    def __init__(self, penalty: float = DEFAULT_PENALTY) -> None:
        self.penalty = penalty

    def __call__(self, space: OrderingSpace) -> float:
        if space.is_certain:
            return 0.0
        reference = space.most_probable_ordering()
        return expected_topk_distance(
            space, reference, penalty=self.penalty, normalized=True
        )

    def evaluate_interval(
        self, space: OrderingSpace
    ) -> Tuple[float, float]:
        """Interval for the expected distance to the modal ordering.

        The mode is certified unchanged when the heaviest retained
        ordering's share of the *full* mass, ``q_max·(1 − δ)``, strictly
        exceeds ``δ`` — no unseen ordering can outweigh it.  Then the
        scaled-mixture interval applies; otherwise the modal reference
        itself is uncertain and only ``[0, 1]`` is certified.
        """
        value = float(self(space))
        delta = space.lost_mass
        if delta <= 0.0:
            return (value, value)
        q_max = float(space.probabilities.max())
        if delta < 1.0 and q_max * (1.0 - delta) > delta:
            return _scaled_distance_interval(value, delta)
        return (0.0, 1.0)

    def evaluate_batch(
        self, space: OrderingSpace, weights: np.ndarray
    ) -> np.ndarray:
        """Batched ``U_MPO``: modal path per row, shared distance profiles.

        Hypothetical posteriors are reweightings of one path table, so the
        modal ordering is an argmax per row and rows sharing a mode share
        one distance profile.
        """
        weights = self._check_weights(space, weights)
        if weights.shape[0] == 0:
            return np.zeros(0)
        modal = np.argmax(weights, axis=1)
        references = space.paths[modal]
        return _profile_dot(space, weights, references, self.penalty)


__all__ = ["ORAUncertainty", "MPOUncertainty"]
