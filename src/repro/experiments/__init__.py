"""Experiment harness and per-figure reproduction modules (S10).

Each module maps to one experiment id of DESIGN.md §5 / EXPERIMENTS.md and
exposes ``run(fast=True) -> ResultTable``, ``report(table) -> str`` and a
printing ``main``.
"""

from repro.experiments import (
    astar_comparison,
    distributions_exp,
    fig1a,
    fig1b,
    incr_ablation,
    measures,
    noisy,
    scalability,
    transitive_ablation,
)
from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    format_series,
    run_cell,
)

#: Experiment id → module, mirroring DESIGN.md §5.
EXPERIMENTS = {
    "FIG1A": fig1a,
    "FIG1B": fig1b,
    "MEAS": measures,
    "ASTAR": astar_comparison,
    "NOISE": noisy,
    "DIST": distributions_exp,
    "INCR": incr_ablation,
    "SCALE": scalability,
    "TRANS": transitive_ablation,
}

__all__ = [
    "ExperimentConfig",
    "ResultTable",
    "format_series",
    "run_cell",
    "EXPERIMENTS",
    "fig1a",
    "fig1b",
    "measures",
    "astar_comparison",
    "noisy",
    "distributions_exp",
    "incr_ablation",
    "scalability",
    "transitive_ablation",
]
