"""Experiment harness and per-figure reproduction modules (S10).

Each module maps to one experiment id of DESIGN.md §5 / EXPERIMENTS.md and
exposes ``grid(fast) -> ExperimentGrid`` (the declared cell grid),
``run(fast=True, workers=0, store=None, resume=False) -> ResultTable``,
``report(table) -> str`` and a printing ``main``.  Execution — serial or
process-pool fan-out with a durable, resumable JSON-lines store — lives in
:mod:`repro.experiments.runner` / :mod:`repro.experiments.store`.
"""

from repro.experiments import (
    astar_comparison,
    distributions_exp,
    fig1a,
    fig1b,
    incr_ablation,
    measures,
    noisy,
    scalability,
    transitive_ablation,
)
from repro.experiments.grid import ExperimentGrid, GridCell
from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    format_series,
    run_cell,
)
from repro.experiments.runner import GridRunReport, run_grid
from repro.experiments.store import ResultStore

#: Experiment id → module, mirroring DESIGN.md §5.
EXPERIMENTS = {
    "FIG1A": fig1a,
    "FIG1B": fig1b,
    "MEAS": measures,
    "ASTAR": astar_comparison,
    "NOISE": noisy,
    "DIST": distributions_exp,
    "INCR": incr_ablation,
    "SCALE": scalability,
    "TRANS": transitive_ablation,
}

__all__ = [
    "ExperimentConfig",
    "ExperimentGrid",
    "GridCell",
    "GridRunReport",
    "ResultStore",
    "ResultTable",
    "format_series",
    "run_cell",
    "run_grid",
    "EXPERIMENTS",
    "fig1a",
    "fig1b",
    "measures",
    "astar_comparison",
    "noisy",
    "distributions_exp",
    "incr_ablation",
    "scalability",
    "transitive_ablation",
]
