"""NOISE — noisy crowd workers (§III-C / §IV prose claim).

With worker accuracy below 1 no pruning is possible; answers Bayesian-
reweight the ordering probabilities instead.  This experiment runs
``T1-on`` under decreasing worker accuracies, plus a replicated-voting
configuration, and reports the distance-vs-budget decay.

Expected shape: lower accuracy ⇒ slower decay (each answer carries less
evidence) but still monotone improvement; 3-way majority voting at
accuracy 0.8 behaves like a single ≈0.9 worker while costing 3 assignments
per question.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.grid import ExperimentGrid
from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    config_cells,
    format_series,
)
from repro.experiments.runner import make_run

ACCURACIES = [1.0, 0.9, 0.8, 0.7]

FAST_CONFIG = ExperimentConfig(
    n=10, k=5, workload_params={"width": 0.3}, repetitions=2
)
FAST_BUDGETS = [0, 5, 10]

FULL_CONFIG = ExperimentConfig(
    n=15, k=8, workload_params={"width": 0.18}, repetitions=4
)
FULL_BUDGETS = [0, 5, 10, 20, 30]

#: Replication used in the majority-voting arm (worker accuracy 0.8).
VOTING_REPLICATION = 3


def grid(fast: bool = True) -> ExperimentGrid:
    """Declare the NOISE grid: one T1-on block per accuracy arm."""
    base = FAST_CONFIG if fast else FULL_CONFIG
    budgets = FAST_BUDGETS if fast else FULL_BUDGETS
    cells = []
    for accuracy in ACCURACIES:
        config = replace(base, worker_accuracy=accuracy)
        cells.extend(
            config_cells(
                "NOISE",
                config,
                {"T1-on": None},
                budgets,
                tags={"arm": f"p={accuracy:g}"},
            )
        )
    voting = replace(
        base, worker_accuracy=0.8, replication=VOTING_REPLICATION
    )
    cells.extend(
        config_cells(
            "NOISE",
            voting,
            {"T1-on": None},
            budgets,
            tags={"arm": "p=0.8 x3 vote"},
        )
    )
    return ExperimentGrid("NOISE", cells)


#: Module entry point — `T1-on under each accuracy, plus one replicated-voting arm.`
run = make_run(grid)


def report(table: ResultTable) -> str:
    """Distance vs budget per accuracy arm."""
    aggregated = table.aggregate(["arm", "budget"], ["distance"])
    series = aggregated.pivot("arm", "budget", "distance")
    return (
        "NOISE  D(omega_r, T_K) vs budget under noisy workers (T1-on)\n"
        + format_series(series)
    )


def main(fast: bool = True) -> ResultTable:
    """Run and print."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
