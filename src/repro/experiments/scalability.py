"""SCALE — engine and algorithm scalability in N and K.

Complements Figure 1(b): how TPO construction and one ``T1-on`` selection
step scale as the table grows (N) and the query deepens (K), per engine.

Expected shape: grid-engine build time grows with the number of orderings
(roughly exponential in K for fixed overlap, polynomial in N for fixed
tree size); ``incr`` is insensitive to K until its rounds force deeper
levels; the Monte Carlo engine's cost is dominated by the fixed sample
budget.
"""

from __future__ import annotations

import time

from repro.crowd.oracle import GroundTruth
from repro.crowd.simulator import SimulatedCrowd
from repro.core import make_policy
from repro.core.session import UncertaintyReductionSession
from repro.experiments.harness import ResultTable
from repro.tpo.builders import make_builder
from repro.utils.rng import derive_seed
from repro.workloads.synthetic import uniform_intervals

FAST_GRID = {
    "n_sweep": [8, 12],
    "k_sweep": [3, 5],
    "engines": ["grid", "mc"],
    "budget": 5,
    "reps": 2,
}
FULL_GRID = {
    "n_sweep": [10, 15, 20, 25],
    "k_sweep": [4, 6, 8, 10],
    "engines": ["grid", "exact", "mc"],
    "budget": 10,
    "reps": 3,
}

#: Width shrinks with N to keep tree sizes comparable across the sweep.
def _width(n: int) -> float:
    return min(0.25, 3.0 / n)


def _run_point(
    n: int, k: int, engine: str, budget: int, rep: int
) -> dict:
    """One (N, K, engine) measurement: build time + session CPU."""
    dists = uniform_intervals(n, width=_width(n), rng=derive_seed(7, "w", n, k, rep))
    truth = GroundTruth.sample(dists, rng=derive_seed(7, "t", n, k, rep))
    engine_params = {"resolution": 600} if engine == "grid" else {}
    if engine == "mc":
        engine_params = {"samples": 20000, "seed": derive_seed(7, "mc", rep)}
    builder = make_builder(engine, **engine_params)
    start = time.process_time()
    tree = builder.build(dists, k)
    build_seconds = time.process_time() - start
    crowd = SimulatedCrowd(truth, rng=derive_seed(7, "c", n, k, rep))
    session = UncertaintyReductionSession(
        dists, k, crowd, builder=builder, rng=derive_seed(7, "p", n, k, rep)
    )
    result = session.run(make_policy("T1-on"), budget)
    return {
        "n": n,
        "k": k,
        "engine": engine,
        "build_cpu": build_seconds,
        "session_cpu": result.cpu_seconds,
        "orderings": tree.ordering_count(),
        "distance": result.distance_to_truth,
        "rep": rep,
    }


def run(fast: bool = True) -> ResultTable:
    """Sweep N (at mid K) and K (at mid N) for every engine."""
    grid = FAST_GRID if fast else FULL_GRID
    table = ResultTable()
    mid_k = grid["k_sweep"][len(grid["k_sweep"]) // 2]
    mid_n = grid["n_sweep"][len(grid["n_sweep"]) // 2]
    for engine in grid["engines"]:
        for n in grid["n_sweep"]:
            for rep in range(grid["reps"]):
                table.add(
                    sweep="N", **_run_point(n, mid_k, engine, grid["budget"], rep)
                )
        for k in grid["k_sweep"]:
            for rep in range(grid["reps"]):
                table.add(
                    sweep="K", **_run_point(mid_n, k, engine, grid["budget"], rep)
                )
    return table


def report(table: ResultTable) -> str:
    """Build/session CPU per sweep point and engine."""
    aggregated = table.aggregate(
        ["sweep", "engine", "n", "k"],
        ["build_cpu", "session_cpu", "orderings"],
    )
    aggregated.rows.sort(
        key=lambda r: (r["sweep"], r["engine"], r["n"], r["k"])
    )
    return "SCALE  engine scalability in N and K\n" + aggregated.format(
        ["sweep", "engine", "n", "k", "build_cpu", "session_cpu", "orderings"]
    )


def main(fast: bool = True) -> ResultTable:
    """Run and print."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
