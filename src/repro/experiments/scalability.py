"""SCALE — engine and algorithm scalability in N and K.

Complements Figure 1(b): how TPO construction and one ``T1-on`` selection
step scale as the table grows (N) and the query deepens (K), per engine.

Expected shape: grid-engine build time grows with the number of orderings
(roughly exponential in K for fixed overlap, polynomial in N for fixed
tree size); ``incr`` is insensitive to K until its rounds force deeper
levels; the Monte Carlo engine's cost is dominated by the fixed sample
budget.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.api.catalog import ENGINES, POLICIES
from repro.core.session import UncertaintyReductionSession
from repro.crowd.oracle import GroundTruth
from repro.crowd.simulator import SimulatedCrowd
from repro.experiments.grid import ExperimentGrid, GridCell
from repro.experiments.harness import ResultTable
from repro.experiments.runner import make_run
from repro.utils.rng import derive_seed
from repro.workloads.synthetic import uniform_intervals

FAST_GRID = {
    "n_sweep": [8, 12],
    "k_sweep": [3, 5],
    "engines": ["grid", "mc"],
    "budget": 5,
    "reps": 2,
}
FULL_GRID = {
    "n_sweep": [10, 15, 20, 25],
    "k_sweep": [4, 6, 8, 10],
    "engines": ["grid", "exact", "mc"],
    "budget": 10,
    "reps": 3,
}

#: Width shrinks with N to keep tree sizes comparable across the sweep.
def _width(n: int) -> float:
    return min(0.25, 3.0 / n)


def run_scale_record(
    n: int, k: int, engine: str, budget: int, rep: int
) -> Dict[str, Any]:
    """Picklable cell runner: one (N, K, engine) measurement row."""
    dists = uniform_intervals(n, width=_width(n), rng=derive_seed(7, "w", n, k, rep))
    truth = GroundTruth.sample(dists, rng=derive_seed(7, "t", n, k, rep))
    engine_params = {"resolution": 600} if engine == "grid" else {}
    if engine == "mc":
        engine_params = {"samples": 20000, "seed": derive_seed(7, "mc", rep)}
    builder = ENGINES.create(engine, **engine_params)
    start = time.process_time()
    tree = builder.build(dists, k)
    build_seconds = time.process_time() - start
    crowd = SimulatedCrowd(truth, rng=derive_seed(7, "c", n, k, rep))
    session = UncertaintyReductionSession(
        dists, k, crowd, builder=builder, rng=derive_seed(7, "p", n, k, rep)
    )
    result = session.run(POLICIES.create("T1-on"), budget)
    return {
        "n": n,
        "k": k,
        "engine": engine,
        "build_cpu": build_seconds,
        "session_cpu": result.cpu_seconds,
        "orderings": tree.ordering_count(),
        "distance": result.distance_to_truth,
        "rep": rep,
    }


GRID_RUNNER = "repro.experiments.scalability:run_scale_record"


def grid(fast: bool = True) -> ExperimentGrid:
    """Declare the SCALE grid: sweep N (at mid K) and K (at mid N).

    The sweep label is a presentation tag, not part of cell identity, so
    the (mid N, mid K) point shared by both sweeps is computed once and
    reported under both labels.
    """
    spec = FAST_GRID if fast else FULL_GRID
    mid_k = spec["k_sweep"][len(spec["k_sweep"]) // 2]
    mid_n = spec["n_sweep"][len(spec["n_sweep"]) // 2]
    cells = []

    def point(sweep: str, engine: str, n: int, k: int, rep: int) -> GridCell:
        return GridCell(
            experiment="SCALE",
            runner=GRID_RUNNER,
            params={
                "n": n,
                "k": k,
                "engine": engine,
                "budget": spec["budget"],
                "rep": rep,
            },
            tags={"sweep": sweep},
        )

    for engine in spec["engines"]:
        for n in spec["n_sweep"]:
            for rep in range(spec["reps"]):
                cells.append(point("N", engine, n, mid_k, rep))
        for k in spec["k_sweep"]:
            for rep in range(spec["reps"]):
                cells.append(point("K", engine, mid_n, k, rep))
    return ExperimentGrid("SCALE", cells)


#: Module entry point — `Sweep N (at mid K) and K (at mid N) for every engine.`
run = make_run(grid)


def report(table: ResultTable) -> str:
    """Build/session CPU per sweep point and engine."""
    aggregated = table.aggregate(
        ["sweep", "engine", "n", "k"],
        ["build_cpu", "session_cpu", "orderings"],
    )
    aggregated.rows.sort(
        key=lambda r: (r["sweep"], r["engine"], r["n"], r["k"])
    )
    return "SCALE  engine scalability in N and K\n" + aggregated.format(
        ["sweep", "engine", "n", "k", "build_cpu", "session_cpu", "orderings"]
    )


def main(fast: bool = True) -> ResultTable:
    """Run and print."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
