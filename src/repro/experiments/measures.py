"""MEAS — uncertainty-measure comparison (§IV prose claim).

The paper observes that measures aware of the tree's *structure*
(``U_MPO``, ``U_Hw``, ``U_ORA``) outperform the state-of-the-art leaf
entropy ``U_H`` when used as the objective driving question selection.
This experiment runs ``T1-on`` with each measure as its objective and
compares the final distance to the real ordering at equal budgets.

Expected shape: ``Hw``/``ORA``/``MPO`` reach a lower distance than ``H``
for small-to-medium budgets (they spend questions on the ranks that matter).
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.grid import ExperimentGrid
from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    config_cells,
    format_series,
)
from repro.experiments.runner import make_run

MEASURES = ["H", "Hw", "ORA", "MPO"]

FAST_CONFIG = ExperimentConfig(
    n=12, k=6, workload_params={"width": 0.26}, repetitions=3
)
FAST_BUDGETS = [4, 8, 12]

FULL_CONFIG = ExperimentConfig(
    n=16, k=8, workload_params={"width": 0.18}, repetitions=4
)
FULL_BUDGETS = [5, 10, 15, 20]


def grid(fast: bool = True) -> ExperimentGrid:
    """Declare the MEAS grid: one T1-on block per driving measure."""
    base = FAST_CONFIG if fast else FULL_CONFIG
    budgets = FAST_BUDGETS if fast else FULL_BUDGETS
    cells = []
    for measure in MEASURES:
        config = replace(base, measure=measure, measure_params={})
        cells.extend(
            config_cells(
                "MEAS",
                config,
                {"T1-on": None},
                budgets,
                tags={"measure": measure},
            )
        )
    return ExperimentGrid("MEAS", cells)


#: Module entry point — `Drive T1-on with each uncertainty measure.`
run = make_run(grid)


def report(table: ResultTable) -> str:
    """Mean final distance per (measure, budget)."""
    aggregated = table.aggregate(["measure", "budget"], ["distance", "cpu"])
    series = aggregated.pivot("measure", "budget", "distance")
    return (
        "MEAS  final D(omega_r, T_K) by driving measure (T1-on)\n"
        + format_series(series)
    )


def main(fast: bool = True) -> ResultTable:
    """Run and print."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
