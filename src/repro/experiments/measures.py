"""MEAS — uncertainty-measure comparison (§IV prose claim).

The paper observes that measures aware of the tree's *structure*
(``U_MPO``, ``U_Hw``, ``U_ORA``) outperform the state-of-the-art leaf
entropy ``U_H`` when used as the objective driving question selection.
This experiment runs ``T1-on`` with each measure as its objective and
compares the final distance to the real ordering at equal budgets.

Expected shape: ``Hw``/``ORA``/``MPO`` reach a lower distance than ``H``
for small-to-medium budgets (they spend questions on the ranks that matter).
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    format_series,
    run_cell,
)

MEASURES = ["H", "Hw", "ORA", "MPO"]

FAST_CONFIG = ExperimentConfig(
    n=12, k=6, workload_params={"width": 0.26}, repetitions=3
)
FAST_BUDGETS = [4, 8, 12]

FULL_CONFIG = ExperimentConfig(
    n=16, k=8, workload_params={"width": 0.18}, repetitions=4
)
FULL_BUDGETS = [5, 10, 15, 20]


def run(fast: bool = True) -> ResultTable:
    """Drive T1-on with each uncertainty measure."""
    base = FAST_CONFIG if fast else FULL_CONFIG
    budgets = FAST_BUDGETS if fast else FULL_BUDGETS
    table = ResultTable()
    for measure in MEASURES:
        config = ExperimentConfig(
            **{**base.__dict__, "measure": measure, "measure_params": {}}
        )
        for budget in budgets:
            for rep in range(config.repetitions):
                result = run_cell(config, "T1-on", budget, rep)
                table.add_result(result, rep=rep, measure=measure)
    return table


def report(table: ResultTable) -> str:
    """Mean final distance per (measure, budget)."""
    aggregated = table.aggregate(["measure", "budget"], ["distance", "cpu"])
    series = aggregated.pivot("measure", "budget", "distance")
    return (
        "MEAS  final D(omega_r, T_K) by driving measure (T1-on)\n"
        + format_series(series)
    )


def main(fast: bool = True) -> ResultTable:
    """Run and print."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
