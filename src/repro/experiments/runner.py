"""Parallel, resumable execution of experiment grids.

``run_grid`` takes a declared :class:`~repro.experiments.grid.ExperimentGrid`
and executes its cells either in-process (``workers <= 1``) or fanned out
over a :class:`concurrent.futures.ProcessPoolExecutor`.  Reproducibility
does not depend on the execution mode: every cell derives its RNG streams
from its own parameters via :func:`repro.utils.rng.derive_seed` (process-
stable hashing), so a pool worker sees exactly the seeds the serial loop
would, and the assembled table is ordered by grid position, not completion
order.

With a :class:`~repro.experiments.store.ResultStore` attached, every
finished cell is durably appended as it completes; ``resume=True`` skips
cells the store already holds, which is how an interrupted fan-out run
picks up where it stopped.
"""

from __future__ import annotations

import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.experiments.grid import ExperimentGrid, GridCell, execute_cell
from repro.experiments.harness import ResultTable
from repro.experiments.store import ResultStore
from repro.utils.timing import timed_wall

#: ``progress(done, total, cell)`` callback signature.
ProgressFn = Callable[[int, int, GridCell], None]


@dataclass
class GridRunReport:
    """What one ``run_grid`` invocation did.

    ``executed``/``skipped`` hold cell ids: *executed* cells were computed
    in this invocation, *skipped* ones were satisfied from the store
    (resume).  ``table`` always contains one row per grid cell, in grid
    order, whichever way the row was obtained.
    """

    grid_name: str
    table: ResultTable
    executed: List[str]
    skipped: List[str]
    workers: int
    wall_seconds: float = 0.0

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.grid_name}: {len(self.table)} rows, "
            f"executed {len(self.executed)}, skipped {len(self.skipped)}, "
            f"workers {self.workers}, {self.wall_seconds:.1f}s wall"
        )


def _extend_sys_path(paths: List[str]) -> None:
    """Pool-worker initializer: mirror the parent's import path.

    Under the ``spawn`` start method children do not inherit ``sys.path``
    mutations (e.g. a ``PYTHONPATH=src`` dev checkout added by the test
    harness), and cell runners are resolved by dotted import path.
    """
    for path in paths:
        if path not in sys.path:
            sys.path.append(path)


def _execute_serial(
    pending: List[GridCell],
    rows: Dict[str, Dict[str, Any]],
    store: Optional[ResultStore],
    progress: Optional[ProgressFn],
    done: int,
    total: int,
) -> None:
    for cell in pending:
        rows[cell.cell_id] = execute_cell(cell)
        if store is not None:
            store.append(cell.cell_id, cell.experiment, rows[cell.cell_id])
        done += 1
        if progress is not None:
            progress(done, total, cell)


def _execute_pool(
    pending: List[GridCell],
    rows: Dict[str, Dict[str, Any]],
    store: Optional[ResultStore],
    progress: Optional[ProgressFn],
    done: int,
    total: int,
    workers: int,
) -> None:
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_extend_sys_path,
        initargs=(list(sys.path),),
    ) as pool:
        futures = {pool.submit(execute_cell, cell): cell for cell in pending}
        try:
            # as_completed, not wait(): each cell must reach the store the
            # moment it finishes, or an interrupted run would lose every
            # in-flight result and resume would have nothing to skip.
            for future in as_completed(futures):
                cell = futures[future]
                row = future.result()  # re-raises worker failures
                rows[cell.cell_id] = row
                if store is not None:
                    store.append(cell.cell_id, cell.experiment, row)
                done += 1
                if progress is not None:
                    progress(done, total, cell)
        finally:
            # On a worker failure drop the queue instead of draining it;
            # everything already appended to the store stays resumable.
            for future in futures:
                future.cancel()


def run_grid(
    grid: ExperimentGrid,
    workers: int = 0,
    store: Optional[ResultStore] = None,
    resume: bool = False,
    progress: Optional[ProgressFn] = None,
) -> GridRunReport:
    """Execute ``grid`` and return its report (table + run statistics).

    Parameters
    ----------
    workers:
        ``<= 1`` runs serially in-process; ``>= 2`` fans cells out over
        that many pool workers.  Results are identical either way.
    store:
        Optional durable store; every finished cell is appended to it.
    resume:
        Skip cells whose id the store already holds (requires ``store``).
    progress:
        Optional ``progress(done, total, cell)`` callback, invoked after
        every executed cell.
    """
    if resume and store is None:
        raise ValueError("resume=True requires a result store")

    rows: Dict[str, Dict[str, Any]] = {}
    skipped: List[str] = []
    if resume:
        stored = store.load()
        for cell in grid:
            record = stored.get(cell.cell_id)
            if record is not None and cell.cell_id not in rows:
                rows[cell.cell_id] = record["row"]
                skipped.append(cell.cell_id)

    pending: List[GridCell] = []
    pending_ids = set(rows)
    for cell in grid:
        if cell.cell_id not in pending_ids:
            pending.append(cell)
            pending_ids.add(cell.cell_id)

    def execute_all() -> None:
        done, total = len(skipped), len(skipped) + len(pending)
        if workers >= 2 and len(pending) > 1:
            _execute_pool(pending, rows, store, progress, done, total, workers)
        else:
            _execute_serial(pending, rows, store, progress, done, total)

    _, wall_seconds = timed_wall(execute_all)

    table = ResultTable([{**rows[cell.cell_id], **cell.tags} for cell in grid])
    return GridRunReport(
        grid_name=grid.name,
        table=table,
        executed=[cell.cell_id for cell in pending],
        skipped=skipped,
        workers=max(workers, 1),
        wall_seconds=wall_seconds,
    )


def make_run(
    grid_fn: Callable[[bool], ExperimentGrid],
) -> Callable[..., ResultTable]:
    """Build a figure driver's ``run`` from its ``grid`` declaration.

    Every driver exposes the same entry point; this keeps the signature in
    one place instead of nine::

        run = make_run(grid)   # at module level, after def grid(fast)
    """

    def run(
        fast: bool = True,
        workers: int = 0,
        store: Optional[ResultStore] = None,
        resume: bool = False,
    ) -> ResultTable:
        """Run the declared grid; returns raw per-cell records."""
        return run_grid(
            grid_fn(fast), workers=workers, store=store, resume=resume
        ).table

    return run


__all__ = ["GridRunReport", "run_grid", "make_run"]
