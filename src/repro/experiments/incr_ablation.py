"""INCR — round-size ablation of the incremental algorithm (§III-D).

``incr`` poses ``n`` questions per round between tree extensions;
``n = 1`` approaches fully online behaviour (best information per
question, most interaction rounds), ``n = B`` a single offline batch.
This experiment sweeps ``n`` at a fixed budget and reports quality and
CPU, plus the full-construction ``T1-on`` for reference.

Expected shape: quality degrades mildly as ``n`` grows; CPU stays far
below the full-tree algorithms for all ``n`` (the paper's "much lower CPU
times … with slightly lower quality").
"""

from __future__ import annotations

from repro.experiments.grid import ExperimentGrid
from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    config_cells,
)
from repro.experiments.runner import make_run

FAST_CONFIG = ExperimentConfig(
    n=14, k=7, workload_params={"width": 0.2}, repetitions=2
)
FAST_BUDGET = 12
FAST_ROUND_SIZES = [1, 4, 12]

FULL_CONFIG = ExperimentConfig(
    n=20, k=10, workload_params={"width": 0.15}, repetitions=4
)
FULL_BUDGET = 30
FULL_ROUND_SIZES = [1, 2, 5, 10, 30]


def grid(fast: bool = True) -> ExperimentGrid:
    """Declare the INCR grid: the round-size sweep plus the T1-on ceiling."""
    config = FAST_CONFIG if fast else FULL_CONFIG
    budget = FAST_BUDGET if fast else FULL_BUDGET
    round_sizes = FAST_ROUND_SIZES if fast else FULL_ROUND_SIZES
    cells = []
    for n in round_sizes:
        cells.extend(
            config_cells(
                "INCR",
                config,
                {"incr": {"round_size": n}},
                [budget],
                tags={"arm": f"incr n={n}"},
            )
        )
    cells.extend(
        config_cells(
            "INCR",
            config,
            {"T1-on": None},
            [budget],
            tags={"arm": "T1-on (full tree)"},
        )
    )
    return ExperimentGrid("INCR", cells)


#: Module entry point — `Sweep the incr round size; include T1-on as the quality ceiling.`
run = make_run(grid)


def report(table: ResultTable) -> str:
    """Distance and CPU per arm at the fixed budget."""
    aggregated = table.aggregate(["arm"], ["distance", "cpu", "asked"])
    aggregated.rows.sort(key=lambda r: r["cpu"])
    return "INCR  round-size ablation at fixed budget\n" + aggregated.format(
        ["arm", "distance", "cpu", "asked", "reps"]
    )


def main(fast: bool = True) -> ResultTable:
    """Run and print."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
