"""ASTAR — A*-based algorithms vs. the fast algorithms (§IV prose claim).

The paper: ``T1-on`` and ``C-off`` are "nearly as good as with the A*-based
algorithms, but at a fraction of the cost".  This experiment runs all five
proposed algorithms on deliberately small instances (A* is exponential) and
reports quality and CPU side by side.

Expected shape: distances within a few percent of each other; A* CPU one or
more orders of magnitude above ``T1-on``/``TB-off``.
"""

from __future__ import annotations

from repro.experiments.grid import ExperimentGrid
from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    config_cells,
)
from repro.experiments.runner import make_run

POLICIES = {
    "A*-off": {"max_expansions": 3000},
    "A*-on": {"max_expansions": 1500},
    "C-off": {},
    "TB-off": {},
    "T1-on": {},
}

FAST_CONFIG = ExperimentConfig(
    n=9, k=4, workload_params={"width": 0.25}, repetitions=2
)
FAST_BUDGETS = [3]

FULL_CONFIG = ExperimentConfig(
    n=10, k=5, workload_params={"width": 0.25}, repetitions=3
)
FULL_BUDGETS = [2, 4, 6]


def grid(fast: bool = True) -> ExperimentGrid:
    """Declare the ASTAR grid: five policies × budgets × repetitions."""
    config = FAST_CONFIG if fast else FULL_CONFIG
    budgets = FAST_BUDGETS if fast else FULL_BUDGETS
    return ExperimentGrid(
        "ASTAR", config_cells("ASTAR", config, POLICIES, budgets)
    )


#: Module entry point — `Run the five proposed algorithms on small instances.`
run = make_run(grid)


def report(table: ResultTable) -> str:
    """Quality + CPU per algorithm and budget."""
    aggregated = table.aggregate(
        ["policy", "budget"], ["distance", "uncertainty", "cpu"]
    )
    aggregated.rows.sort(key=lambda r: (r["budget"], r["distance"]))
    return "ASTAR  quality vs cost of the A*-based algorithms\n" + (
        aggregated.format(
            ["policy", "budget", "distance", "uncertainty", "cpu", "reps"]
        )
    )


def main(fast: bool = True) -> ResultTable:
    """Run and print."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
