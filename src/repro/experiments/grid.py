"""Grid declaration and stable cell addressing for the experiment runner.

A *grid* is the declarative form of one experiment: a flat list of
:class:`GridCell`, each naming a picklable runner function plus its
JSON-serializable parameters.  Cells are addressed by a stable content
hash (:attr:`GridCell.cell_id`) so a result store can recognise work it
has already done — across processes, machines, and interpreter restarts.
The hash never involves Python's salted ``hash()``.

Figure drivers (``fig1a``, ``noisy``, …) declare their grid through
``grid(fast)`` instead of looping by hand; execution — serial or
process-pool fan-out, with resume — lives in
:mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

# Cell identity uses the repo-wide canonical-JSON/BLAKE2b scheme; re-export
# so existing ``from repro.experiments.grid import canonical_json`` callers
# keep working.
from repro.api.canonical import canonical_json, content_key


@dataclass
class GridCell:
    """One unit of experiment work.

    ``runner`` is a ``"module:function"`` dotted path resolved inside the
    executing process, so cells pickle cheaply and never capture closures.
    ``params`` are the runner's keyword arguments and must be
    JSON-serializable — together with ``experiment`` and ``runner`` they
    define the cell's identity.  ``tags`` are presentation-only fields
    (arm labels and the like) merged into the result row at table-assembly
    time; they do **not** participate in :attr:`cell_id`, so two arms may
    share one computed cell.
    """

    experiment: str
    runner: str
    params: Dict[str, Any]
    tags: Dict[str, Any] = field(default_factory=dict)

    @cached_property
    def cell_id(self) -> str:
        """Stable 16-hex-digit content address of this cell.

        Cached: the runner reads it several times per cell (resume lookup,
        dedup, store append, table assembly), and params never mutate after
        declaration.
        """
        return content_key(
            {
                "experiment": self.experiment,
                "runner": self.runner,
                "params": self.params,
            },
            digest_size=8,
        )


def resolve_runner(spec: str) -> Callable[..., Dict[str, Any]]:
    """Import the ``"module:function"`` runner named by ``spec``."""
    module_name, sep, func_name = spec.partition(":")
    if not (sep and module_name and func_name):
        raise ValueError(
            f"runner spec must look like 'package.module:function', got {spec!r}"
        )
    module = importlib.import_module(module_name)
    runner = getattr(module, func_name, None)
    if not callable(runner):
        raise ValueError(f"{spec!r} does not name a callable")
    return runner


def execute_cell(cell: GridCell) -> Dict[str, Any]:
    """Run one cell in the current process and return its raw result row.

    This is the function pool workers execute; the row contains only what
    the runner computed (``tags`` are merged later, by the caller that
    assembles the table).
    """
    return resolve_runner(cell.runner)(**cell.params)


@dataclass
class ExperimentGrid:
    """A named, ordered collection of grid cells."""

    name: str
    cells: List[GridCell]

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[GridCell]:
        return iter(self.cells)

    def cell_ids(self) -> List[str]:
        """Content addresses of all cells, in grid order."""
        return [cell.cell_id for cell in self.cells]

    def filter(
        self,
        policies: Optional[Sequence[str]] = None,
        budgets: Optional[Sequence[int]] = None,
    ) -> "ExperimentGrid":
        """Sub-grid keeping cells matching the given policy/budget values.

        Cells whose params lack the filtered key are kept (the filter is
        inapplicable to them): a ``policies`` filter passes scalability
        cells through untouched, since they carry no ``policy`` param.
        A filter that matches nothing yields an empty grid — callers
        (the CLI) should surface that rather than print empty reports.
        """

        def keep(cell: GridCell) -> bool:
            if policies is not None:
                policy = cell.params.get("policy")
                if policy is not None and policy not in policies:
                    return False
            if budgets is not None:
                budget = cell.params.get("budget")
                if budget is not None and budget not in budgets:
                    return False
            return True

        return ExperimentGrid(self.name, [c for c in self.cells if keep(c)])


__all__ = [
    "GridCell",
    "ExperimentGrid",
    "canonical_json",
    "resolve_runner",
    "execute_cell",
]
