"""FIG1B — Figure 1(b): CPU time vs. budget.

Reproduces the paper's cost plot for the same algorithms as Figure 1(a)
minus the baselines (whose selection cost is trivially near zero): CPU
seconds of TPO construction + question selection + pruning, as the budget
grows.

Expected shape (paper): ``C-off`` is the most expensive and grows steeply
with B (its joint-residual evaluations deepen); ``TB-off`` and ``T1-on``
sit orders of magnitude below; ``incr`` is cheapest of all because it never
materializes the full tree.  Absolute seconds differ from the paper's
testbed; the ordering and growth trends are the reproduction target.
"""

from __future__ import annotations

from repro.experiments.grid import ExperimentGrid
from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    config_cells,
    format_series,
)
from repro.experiments.runner import make_run

POLICIES = {
    "T1-on": {},
    "TB-off": {},
    "C-off": {},
    "incr": {"round_size": 5},
}

FAST_CONFIG = ExperimentConfig(
    n=12, k=6, workload_params={"width": 0.26}, repetitions=2
)
FAST_BUDGETS = [5, 10, 20]

FULL_CONFIG = ExperimentConfig(
    n=20, k=10, workload_params={"width": 0.15}, repetitions=3
)
FULL_BUDGETS = [5, 10, 20, 30, 40, 50]


def grid(fast: bool = True) -> ExperimentGrid:
    """Declare the FIG1B grid: policies × budgets × repetitions."""
    config = FAST_CONFIG if fast else FULL_CONFIG
    budgets = FAST_BUDGETS if fast else FULL_BUDGETS
    return ExperimentGrid(
        "FIG1B", config_cells("FIG1B", config, POLICIES, budgets)
    )


#: Module entry point — `Run the grid, recording CPU seconds per cell.`
run = make_run(grid)


def report(table: ResultTable) -> str:
    """The figure as text: mean CPU seconds per (policy, budget)."""
    aggregated = table.aggregate(["policy", "budget"], ["cpu"])
    series = aggregated.pivot("policy", "budget", "cpu")
    return "FIG1B  CPU seconds vs budget B (mean over repetitions)\n" + (
        format_series(series, value_format="{:.3g}")
    )


def main(fast: bool = True) -> ResultTable:
    """Run and print."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
