"""FIG1B — Figure 1(b): CPU time vs. budget.

Reproduces the paper's cost plot for the same algorithms as Figure 1(a)
minus the baselines (whose selection cost is trivially near zero): CPU
seconds of TPO construction + question selection + pruning, as the budget
grows.

Expected shape (paper): ``C-off`` is the most expensive and grows steeply
with B (its joint-residual evaluations deepen); ``TB-off`` and ``T1-on``
sit orders of magnitude below; ``incr`` is cheapest of all because it never
materializes the full tree.  Absolute seconds differ from the paper's
testbed; the ordering and growth trends are the reproduction target.
"""

from __future__ import annotations

from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    format_series,
    run_cell,
)

POLICIES = {
    "T1-on": {},
    "TB-off": {},
    "C-off": {},
    "incr": {"round_size": 5},
}

FAST_CONFIG = ExperimentConfig(
    n=12, k=6, workload_params={"width": 0.26}, repetitions=2
)
FAST_BUDGETS = [5, 10, 20]

FULL_CONFIG = ExperimentConfig(
    n=20, k=10, workload_params={"width": 0.15}, repetitions=3
)
FULL_BUDGETS = [5, 10, 20, 30, 40, 50]


def run(fast: bool = True) -> ResultTable:
    """Run the grid, recording CPU seconds per cell."""
    config = FAST_CONFIG if fast else FULL_CONFIG
    budgets = FAST_BUDGETS if fast else FULL_BUDGETS
    table = ResultTable()
    for policy_name, params in POLICIES.items():
        for budget in budgets:
            for rep in range(config.repetitions):
                result = run_cell(config, policy_name, budget, rep, params)
                table.add_result(result, rep=rep)
    return table


def report(table: ResultTable) -> str:
    """The figure as text: mean CPU seconds per (policy, budget)."""
    aggregated = table.aggregate(["policy", "budget"], ["cpu"])
    series = aggregated.pivot("policy", "budget", "cpu")
    return "FIG1B  CPU seconds vs budget B (mean over repetitions)\n" + (
        format_series(series, value_format="{:.3g}")
    )


def main(fast: bool = True) -> ResultTable:
    """Run and print."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
