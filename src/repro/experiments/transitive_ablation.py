"""TRANS — ablation: transitive answer inference (library extension).

Not a paper artifact: the paper's model admits, but never evaluates,
answering questions *for free* when they are implied by the transitive
closure of earlier reliable answers (``a ≺ b`` and ``b ≺ c`` imply
``a ≺ c``).  This ablation runs identical sessions with and without the
closure and reports the distance at equal *paid* budgets plus the number
of free answers gained.

Expected shape: with inference on, the same paid budget reaches a lower
(or equal) distance, with savings growing with the budget; policies that
naturally ask transitively-related questions (Naive/Random) save the most.
"""

from __future__ import annotations

from typing import Any, Dict, Union

from repro.api.catalog import ENGINES, MEASURES, POLICIES as POLICY_REGISTRY
from repro.core.session import UncertaintyReductionSession
from repro.crowd.simulator import SimulatedCrowd
from repro.experiments.grid import ExperimentGrid, GridCell
from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    format_series,
    standard_row,
)
from repro.experiments.runner import make_run
from repro.utils.rng import derive_seed

POLICIES = ["T1-on", "naive"]

FAST_CONFIG = ExperimentConfig(
    n=12, k=6, workload_params={"width": 0.26}, repetitions=2
)
FAST_BUDGETS = [5, 10, 15]

FULL_CONFIG = ExperimentConfig(
    n=16, k=8, workload_params={"width": 0.2}, repetitions=4
)
FULL_BUDGETS = [5, 10, 20, 30]


def _run(config, policy_name, budget, rep, inference):
    distributions = config.workload_for(rep)
    truth = config.truth_for(rep, distributions)
    crowd = SimulatedCrowd(
        truth,
        rng=derive_seed(config.base_seed, "crowd", rep, policy_name, budget),
    )
    session = UncertaintyReductionSession(
        distributions,
        config.k,
        crowd,
        builder=ENGINES.create(config.engine, **config.engine_params),
        measure=MEASURES.create(config.measure),
        rng=derive_seed(config.base_seed, "p", rep, policy_name, budget),
        use_transitive_inference=inference,
    )
    return session.run(POLICY_REGISTRY.create(policy_name), budget)


def run_trans_record(
    config: Union[ExperimentConfig, Dict[str, Any]],
    policy: str,
    budget: int,
    rep: int,
    inference: bool,
) -> Dict[str, Any]:
    """Picklable grid-cell runner for one (policy, budget, rep, closure) arm.

    Unlike the generic harness runner this one must see the session result
    itself: the ``inferred`` column (free answers gained) is not part of the
    standard row projection.
    """
    if isinstance(config, dict):
        config = ExperimentConfig(**config)
    result = _run(config, policy, budget, rep, inference)
    suffix = "+closure" if inference else ""
    return standard_row(
        result,
        rep=rep,
        arm=f"{policy}{suffix}",
        inferred=result.inferred_answers,
    )


GRID_RUNNER = "repro.experiments.transitive_ablation:run_trans_record"


def grid(fast: bool = True) -> ExperimentGrid:
    """Declare the TRANS grid: paired closure-on/off cells per policy."""
    config = FAST_CONFIG if fast else FULL_CONFIG
    budgets = FAST_BUDGETS if fast else FULL_BUDGETS
    cells = []
    for policy_name in POLICIES:
        for budget in budgets:
            for rep in range(config.repetitions):
                for inference in (False, True):
                    cells.append(
                        GridCell(
                            experiment="TRANS",
                            runner=GRID_RUNNER,
                            params={
                                "config": config.to_params(),
                                "policy": policy_name,
                                "budget": budget,
                                "rep": rep,
                                "inference": inference,
                            },
                        )
                    )
    return ExperimentGrid("TRANS", cells)


#: Module entry point — `Paired runs with the closure on and off.`
run = make_run(grid)


def report(table: ResultTable) -> str:
    """Distance vs paid budget, with and without the closure."""
    aggregated = table.aggregate(["arm", "budget"], ["distance", "inferred"])
    series = aggregated.pivot("arm", "budget", "distance")
    lines = [
        "TRANS  transitive-inference ablation (distance vs paid budget)",
        format_series(series),
        "",
        "free answers gained (mean):",
        format_series(
            aggregated.pivot("arm", "budget", "inferred"),
            value_format="{:.2f}",
        ),
    ]
    return "\n".join(lines)


def main(fast: bool = True) -> ResultTable:
    """Run and print."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
