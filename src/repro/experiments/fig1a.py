"""FIG1A — Figure 1(a): distance to the real ordering vs. budget.

Reproduces the paper's headline quality plot: the expected normalized
distance ``D(ω_r, T_K)`` after spending a budget ``B`` of crowd questions,
for the fast algorithms (``T1-on``, ``TB-off``, ``C-off``, ``incr``) against
the ``Naive`` and ``Random`` baselines.

Expected shape (paper): all proposed algorithms decay far faster than the
baselines; ``T1-on`` and ``C-off`` are best and reach ~0 within the budget
range; ``incr`` tracks them closely at a fraction of the cost; ``Random``
barely moves.
"""

from __future__ import annotations

from repro.experiments.grid import ExperimentGrid
from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    config_cells,
    format_series,
)
from repro.experiments.runner import make_run

#: Algorithms of Figure 1(a), with per-policy constructor arguments.
POLICIES = {
    "T1-on": {},
    "TB-off": {},
    "C-off": {},
    "incr": {"round_size": 5},
    "naive": {},
    "random": {},
}

FAST_CONFIG = ExperimentConfig(
    n=12, k=6, workload_params={"width": 0.26}, repetitions=2
)
FAST_BUDGETS = [0, 5, 10, 20]

FULL_CONFIG = ExperimentConfig(
    n=20, k=10, workload_params={"width": 0.15}, repetitions=5
)
FULL_BUDGETS = [0, 5, 10, 20, 30, 40, 50]


def grid(fast: bool = True) -> ExperimentGrid:
    """Declare the FIG1A grid: policies × budgets × repetitions."""
    config = FAST_CONFIG if fast else FULL_CONFIG
    budgets = FAST_BUDGETS if fast else FULL_BUDGETS
    return ExperimentGrid(
        "FIG1A", config_cells("FIG1A", config, POLICIES, budgets)
    )


#: Module entry point — `Run the whole grid; returns raw per-repetition records.`
run = make_run(grid)


def report(table: ResultTable) -> str:
    """The figure as text: mean distance per (policy, budget)."""
    aggregated = table.aggregate(["policy", "budget"], ["distance"])
    series = aggregated.pivot("policy", "budget", "distance")
    return (
        "FIG1A  D(omega_r, T_K) vs budget B (mean over repetitions)\n"
        + format_series(series)
    )


def main(fast: bool = True) -> ResultTable:
    """Run and print (entry point used by the benchmark harness)."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
