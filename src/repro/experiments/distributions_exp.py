"""DIST — non-uniform score distributions (§IV prose claim).

The paper reports that the proposed algorithms "work also with non-uniform
tuple score distributions".  This experiment runs ``T1-on`` and the
``Naive`` baseline over uniform, Gaussian, triangular, and heavy-tailed
(Pareto) score models.

Expected shape: T1-on beats Naive under every distribution family; the
Pareto workload starts from a lower initial distance (a few tuples dominate
outright) while clustered Gaussians are the hard case.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.grid import ExperimentGrid
from repro.experiments.harness import (
    ExperimentConfig,
    ResultTable,
    config_cells,
    format_series,
)
from repro.experiments.runner import make_run

#: Workload families and their generator parameters.
WORKLOADS: Dict[str, Dict] = {
    "uniform": {"width": 0.2},
    "gaussian": {"sigma": 0.07},
    "triangular": {"width": 0.25},
    "pareto": {"shape": 1.5},
}

POLICIES = {"T1-on": {}, "naive": {}}

FAST_N, FAST_K, FAST_REPS = 10, 5, 2
FAST_BUDGETS = [0, 5, 10]

FULL_N, FULL_K, FULL_REPS = 15, 8, 3
FULL_BUDGETS = [0, 5, 10, 20]


def grid(fast: bool = True) -> ExperimentGrid:
    """Declare the DIST grid: policies × budgets per workload family."""
    n, k, reps = (FAST_N, FAST_K, FAST_REPS) if fast else (FULL_N, FULL_K, FULL_REPS)
    budgets = FAST_BUDGETS if fast else FULL_BUDGETS
    cells = []
    for workload, params in WORKLOADS.items():
        config = ExperimentConfig(
            n=n,
            k=k,
            workload=workload,
            workload_params=params,
            repetitions=reps,
        )
        for policy_name, policy_params in POLICIES.items():
            cells.extend(
                config_cells(
                    "DIST",
                    config,
                    {policy_name: policy_params},
                    budgets,
                    tags={
                        "workload": workload,
                        "arm": f"{workload}/{policy_name}",
                    },
                )
            )
    return ExperimentGrid("DIST", cells)


#: Module entry point — `Run both policies over all four score-distribution families.`
run = make_run(grid)


def report(table: ResultTable) -> str:
    """Distance vs budget per workload × policy."""
    aggregated = table.aggregate(["arm", "budget"], ["distance"])
    series = aggregated.pivot("arm", "budget", "distance")
    return (
        "DIST  D(omega_r, T_K) vs budget across score distributions\n"
        + format_series(series)
    )


def main(fast: bool = True) -> ResultTable:
    """Run and print."""
    table = run(fast)
    print(report(table))
    return table


if __name__ == "__main__":
    main(fast=False)
