"""Experiment harness: configs, multi-seed runners, result tables.

Every experiment in EXPERIMENTS.md is a grid of cells
``(policy, budget, repetition)`` over one workload family.  The harness
guarantees *paired* comparisons: all policies inside a repetition face the
same score distributions and the same ground-truth realization, while
worker noise and policy randomness get per-cell independent streams.
"""

from __future__ import annotations

import csv
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.catalog import ENGINES, WORKLOADS
from repro.api.specs import MeasureSpec, PolicySpec
from repro.core.session import SessionResult, UncertaintyReductionSession
from repro.crowd.oracle import GroundTruth
from repro.crowd.simulator import SimulatedCrowd
from repro.experiments.grid import GridCell
from repro.utils.rng import derive_seed


@dataclass
class ExperimentConfig:
    """One workload family plus global run options."""

    n: int = 20
    k: int = 10
    workload: str = "uniform"
    workload_params: Dict = field(default_factory=lambda: {"width": 0.15})
    worker_accuracy: float = 1.0
    replication: int = 1
    assumed_accuracy: Optional[float] = None
    measure: str = "H"
    measure_params: Dict = field(default_factory=dict)
    engine: str = "grid"
    engine_params: Dict = field(default_factory=lambda: {"resolution": 800})
    repetitions: int = 3
    base_seed: int = 2016
    track_trajectory: bool = False

    def to_params(self) -> Dict[str, Any]:
        """JSON-serializable dict form, used as grid-cell identity."""
        return asdict(self)

    def workload_for(self, rep: int):
        """Score distributions of repetition ``rep`` (policy-independent)."""
        seed = derive_seed(self.base_seed, "workload", rep)
        return WORKLOADS.create(
            self.workload, self.n, rng=seed, **self.workload_params
        )

    def truth_for(self, rep: int, distributions) -> GroundTruth:
        """Ground-truth realization of repetition ``rep``."""
        seed = derive_seed(self.base_seed, "truth", rep)
        return GroundTruth.sample(distributions, rng=seed)


def run_cell(
    config: ExperimentConfig,
    policy_name: str,
    budget: int,
    rep: int,
    policy_params: Optional[Dict] = None,
) -> SessionResult:
    """Run one (policy, budget, repetition) cell and return its books."""
    distributions = config.workload_for(rep)
    truth = config.truth_for(rep, distributions)
    crowd = SimulatedCrowd(
        truth,
        worker_accuracy=config.worker_accuracy,
        replication=config.replication,
        assumed_accuracy=config.assumed_accuracy,
        rng=derive_seed(config.base_seed, "crowd", rep, policy_name, budget),
    )
    session = UncertaintyReductionSession(
        distributions,
        config.k,
        crowd,
        builder=ENGINES.create(config.engine, **config.engine_params),
        measure=MeasureSpec(config.measure, config.measure_params).build(),
        rng=derive_seed(config.base_seed, "policy", rep, policy_name, budget),
        track_trajectory=config.track_trajectory,
    )
    policy = PolicySpec(policy_name, policy_params or {}).build()
    return session.run(policy, budget)


def standard_row(result: SessionResult, **extra) -> Dict[str, Any]:
    """The standard flat projection of a :class:`SessionResult`.

    This is the row shape shared by every figure driver's result table and
    by the grid store — plain JSON-serializable scalars only.
    """
    row: Dict[str, Any] = dict(
        policy=result.policy,
        budget=result.budget,
        asked=result.questions_asked,
        distance=result.distance_to_truth,
        initial_distance=result.initial_distance,
        uncertainty=result.final_uncertainty,
        cpu=result.cpu_seconds,
        orderings=result.orderings_final,
    )
    row.update(extra)
    return row


def run_cell_record(
    config: Union[ExperimentConfig, Dict[str, Any]],
    policy: str,
    budget: int,
    rep: int,
    policy_params: Optional[Dict] = None,
) -> Dict[str, Any]:
    """Picklable grid-cell runner: run one cell, return its standard row.

    ``config`` may arrive as the :meth:`ExperimentConfig.to_params` dict —
    the form grid cells carry so they stay JSON-addressable.
    """
    if isinstance(config, dict):
        config = ExperimentConfig(**config)
    result = run_cell(config, policy, budget, rep, policy_params)
    return standard_row(result, rep=rep)


#: Default grid-cell runner: the dotted path of :func:`run_cell_record`.
CELL_RUNNER = "repro.experiments.harness:run_cell_record"


def config_cells(
    experiment: str,
    config: ExperimentConfig,
    policies: Dict[str, Optional[Dict]],
    budgets: Sequence[int],
    tags: Optional[Dict[str, Any]] = None,
) -> List[GridCell]:
    """Declare the common ``policy × budget × repetition`` cell block.

    Every figure driver whose cells are plain :func:`run_cell` invocations
    builds its grid from one or more of these blocks; ``tags`` label all
    cells of the block (e.g. an arm name) without entering cell identity.
    """
    cells: List[GridCell] = []
    for policy_name, policy_params in policies.items():
        for budget in budgets:
            for rep in range(config.repetitions):
                cells.append(
                    GridCell(
                        experiment=experiment,
                        runner=CELL_RUNNER,
                        params={
                            "config": config.to_params(),
                            "policy": policy_name,
                            "budget": budget,
                            "rep": rep,
                            "policy_params": policy_params,
                        },
                        tags=dict(tags or {}),
                    )
                )
    return cells


class ResultTable:
    """A flat collection of result records with aggregation & formatting."""

    def __init__(self, rows: Optional[List[Dict]] = None) -> None:
        self.rows: List[Dict] = list(rows) if rows else []

    def add(self, **record) -> None:
        """Append one record."""
        self.rows.append(record)

    def add_result(self, result: SessionResult, **extra) -> None:
        """Append the standard projection of a :class:`SessionResult`."""
        self.add(**standard_row(result, **extra))

    # ------------------------------------------------------------------

    def aggregate(
        self, group_keys: Sequence[str], value_keys: Sequence[str]
    ) -> "ResultTable":
        """Mean/std over repetitions per group (NaN-aware)."""
        groups: Dict[Tuple, List[Dict]] = {}
        for row in self.rows:
            key = tuple(row.get(k) for k in group_keys)
            groups.setdefault(key, []).append(row)
        aggregated = ResultTable()
        for key, members in groups.items():
            record = dict(zip(group_keys, key, strict=True))
            record["reps"] = len(members)
            for value_key in value_keys:
                values = np.asarray(
                    [float(m.get(value_key, math.nan)) for m in members]
                )
                finite = values[np.isfinite(values)]
                record[value_key] = (
                    float(finite.mean()) if finite.size else math.nan
                )
                record[value_key + "_std"] = (
                    float(finite.std()) if finite.size > 1 else 0.0
                )
            aggregated.add(**record)
        return aggregated

    def pivot(
        self, series_key: str, x_key: str, value_key: str
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Series view: ``{series: [(x, value), …]}`` sorted by x."""
        series: Dict[str, List[Tuple[float, float]]] = {}
        for row in self.rows:
            series.setdefault(str(row[series_key]), []).append(
                (row[x_key], row[value_key])
            )
        for points in series.values():
            points.sort(key=lambda pair: pair[0])
        return series

    # ------------------------------------------------------------------

    def columns(self) -> List[str]:
        """Union of record keys, in first-seen order."""
        seen: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def to_csv(self, path) -> None:
        """Write all records to CSV."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        columns = self.columns()
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)

    def format(self, columns: Optional[Sequence[str]] = None) -> str:
        """Aligned plain-text table (what the benches print)."""
        columns = list(columns) if columns else self.columns()

        def fmt(value) -> str:
            if isinstance(value, float):
                if math.isnan(value):
                    return "nan"
                return f"{value:.4g}"
            return str(value)

        body = [[fmt(row.get(c, "")) for c in columns] for row in self.rows]
        widths = [
            max(len(c), *(len(line[i]) for line in body)) if body else len(c)
            for i, c in enumerate(columns)
        ]
        header = "  ".join(c.ljust(w) for c, w in zip(columns, widths, strict=True))
        rule = "  ".join("-" * w for w in widths)
        lines = [header, rule]
        for line in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(line, widths, strict=True)))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"ResultTable(rows={len(self.rows)})"


def format_series(
    series: Dict[str, List[Tuple[float, float]]],
    x_label: str = "B",
    value_format: str = "{:.4f}",
) -> str:
    """Print figure-style series: one row per algorithm, one column per x.

    This mirrors how the paper's figures are read: who wins at each budget.
    """
    xs = sorted({x for points in series.values() for x, _ in points})
    name_width = max(len(name) for name in series) if series else 4
    header = " " * (name_width + 2) + "  ".join(
        f"{x_label}={x:<8g}" for x in xs
    )
    lines = [header]
    for name in sorted(series):
        lookup = dict(series[name])
        cells = [
            value_format.format(lookup[x]) if x in lookup else "-"
            for x in xs
        ]
        lines.append(
            f"{name.ljust(name_width)}  " + "  ".join(c.ljust(10) for c in cells)
        )
    return "\n".join(lines)


__all__ = [
    "ExperimentConfig",
    "run_cell",
    "run_cell_record",
    "standard_row",
    "config_cells",
    "CELL_RUNNER",
    "ResultTable",
    "format_series",
]
