"""Durable JSON-lines store of grid-cell results.

One line per completed cell::

    {"cell_id": "9f31…", "experiment": "FIG1A", "row": {…}}

Append-only and flushed per completed cell, so an interrupted run loses at
most the cells still in flight (up to ``--workers`` of them in a fan-out
run); :meth:`ResultStore.load` tolerates a torn final line (and skips any
other unparsable line — those cells simply rerun).
Rerunning a grid with ``resume=True`` skips every cell already present,
which is what makes long fan-out runs restartable.

Lines are strict JSON (parseable by jq/pandas/other languages): non-finite
floats — ``incr`` cells report NaN initial metrics — are written as
``null`` and restored to NaN on load.  Row values are scalars, so a null
is never ambiguous.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Dict, Set


def ensure_trailing_newline(path: Path) -> None:
    """Terminate a torn final line so the next append starts fresh.

    A run killed mid-write leaves a line without a newline; appending
    straight after it would glue the new record onto the torn JSON and
    lose *both*.  Called before every append.
    """
    try:
        with open(path, "rb+") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":
                handle.write(b"\n")
    except FileNotFoundError:
        pass


def _sanitize(value: Any) -> Any:
    """Strict-JSON form of a row value: non-finite floats become null."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_sanitize(item) for item in value]
    return value


def _restore(value: Any) -> Any:
    """Undo :func:`_sanitize`: null row values come back as NaN."""
    if value is None:
        return float("nan")
    if isinstance(value, dict):
        return {key: _restore(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_restore(item) for item in value]
    return value


class ResultStore:
    """Append-only JSON-lines result store keyed by grid cell id."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def append(self, cell_id: str, experiment: str, row: Dict[str, Any]) -> None:
        """Durably record one completed cell."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        ensure_trailing_newline(self.path)
        record = {
            "cell_id": cell_id,
            "experiment": experiment,
            "row": _sanitize(row),
        }
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, allow_nan=False) + "\n")
            handle.flush()

    def load(self) -> Dict[str, Dict[str, Any]]:
        """All stored records as ``{cell_id: record}``, deduplicated.

        Unparsable lines — a torn tail from a killed run — are skipped, so
        their cells are simply treated as not yet computed.  Duplicate
        cell ids keep the **last** record: a resumed run that re-executes
        a torn cell appends a second line for the same cell hash, and
        merged reports must see exactly one row per cell (the freshest).
        """
        records: Dict[str, Dict[str, Any]] = {}
        if not self.path.exists():
            return records
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and "cell_id" in record:
                    record["row"] = _restore(record.get("row", {}))
                    records[record["cell_id"]] = record

        return records

    def completed_ids(self) -> Set[str]:
        """Cell ids with a stored result."""
        return set(self.load())

    def compact(self) -> int:
        """Rewrite the file with one (deduplicated) line per cell.

        Long-lived stores — e.g. the nightly grid's cached store, appended
        to across many resumed runs — accumulate torn lines and duplicate
        cell records; compaction keeps the surviving record of each cell
        (last write wins, matching :meth:`load`) and drops the rest.
        Returns the number of lines removed.  Atomic: the compacted file
        is written alongside and renamed over the original, so a crash
        mid-compaction cannot lose records.
        """
        if not self.path.exists():
            return 0
        with open(self.path) as handle:
            total_lines = sum(1 for line in handle if line.strip())
        records = self.load()
        temporary = self.path.with_suffix(self.path.suffix + ".compact")
        with open(temporary, "w") as handle:
            for record in records.values():
                sanitized = {**record, "row": _sanitize(record.get("row", {}))}
                handle.write(json.dumps(sanitized, allow_nan=False) + "\n")
            handle.flush()
        temporary.replace(self.path)
        return total_lines - len(records)

    def __len__(self) -> int:
        return len(self.load())

    def __repr__(self) -> str:
        return f"ResultStore({str(self.path)!r})"


__all__ = ["ResultStore", "ensure_trailing_newline"]
