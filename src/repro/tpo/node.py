"""Nodes of the tree of possible orderings (TPO).

Following Soliman & Ilyas (ICDE'09), every non-root node holds one tuple
index, and the path from the root to a depth-``k`` node is a possible
top-``k`` prefix ranking; the node's probability is the probability that
this prefix *is* the top-``k`` ranking.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

#: Tuple index stored by the synthetic root node.
ROOT_TUPLE = -1


class TPONode:
    """One node of a TPO.

    Attributes
    ----------
    tuple_index:
        Index of the tuple this node ranks (``ROOT_TUPLE`` for the root).
    probability:
        Probability that the root-to-node prefix equals the true prefix
        ranking of the underlying scores.
    children:
        Child nodes, each extending the prefix by one rank.
    state:
        Opaque builder payload (e.g. the prefix density ``h_k``), used to
        extend the tree level by level; dropped by :meth:`clear_state`.
    """

    __slots__ = ("tuple_index", "probability", "children", "parent", "state")

    def __init__(
        self,
        tuple_index: int,
        probability: float,
        parent: Optional["TPONode"] = None,
    ) -> None:
        self.tuple_index = tuple_index
        self.probability = probability
        self.children: List["TPONode"] = []
        self.parent = parent
        self.state: Any = None

    # ------------------------------------------------------------------

    @property
    def is_root(self) -> bool:
        """True for the synthetic root."""
        return self.tuple_index == ROOT_TUPLE

    @property
    def is_leaf(self) -> bool:
        """True when the node currently has no children."""
        return not self.children

    @property
    def depth(self) -> int:
        """Number of tuples on the root-to-node path (root = 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def prefix(self) -> Tuple[int, ...]:
        """Tuple indices on the root-to-node path, best rank first."""
        indices: List[int] = []
        node = self
        while node.parent is not None:
            indices.append(node.tuple_index)
            node = node.parent
        return tuple(reversed(indices))

    # ------------------------------------------------------------------

    def add_child(self, tuple_index: int, probability: float) -> "TPONode":
        """Append a child extending this prefix and return it."""
        child = TPONode(tuple_index, probability, parent=self)
        self.children.append(child)
        return child

    def remove_child(self, child: "TPONode") -> None:
        """Detach ``child`` from this node."""
        self.children.remove(child)
        child.parent = None

    def iter_subtree(self) -> Iterator["TPONode"]:
        """Yield this node and all descendants (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def clear_state(self, recursive: bool = True) -> None:
        """Drop builder payloads to free memory once building is done."""
        if recursive:
            for node in self.iter_subtree():
                node.state = None
        else:
            self.state = None

    def __repr__(self) -> str:
        label = "root" if self.is_root else f"t{self.tuple_index}"
        return f"TPONode({label}, p={self.probability:.4g}, children={len(self.children)})"


__all__ = ["TPONode", "ROOT_TUPLE"]
