"""Node objects of the tree of possible orderings (TPO).

Following Soliman & Ilyas (ICDE'09), every non-root node holds one tuple
index, and the path from the root to a depth-``k`` node is a possible
top-``k`` prefix ranking; the node's probability is the probability that
this prefix *is* the top-``k`` ranking.

Since the flat level-table refactor, :class:`~repro.tpo.tree.TPOTree` no
longer stores :class:`TPONode` objects internally — levels are
structure-of-arrays tables and nodes are materialized on demand as
:class:`TPONodeView` objects (``tree.root``, ``tree.leaves()``,
``tree.iter_nodes()``).  :class:`TPONode` remains as a standalone
pointer-based node for hand-built trees in tests and tools.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # circular at runtime: tree.py imports this module
    from repro.tpo.tree import TPOTree

import numpy as np

#: Tuple index stored by the synthetic root node.
ROOT_TUPLE = -1


class TPONode:
    """One pointer-based node of a hand-built TPO.

    Attributes
    ----------
    tuple_index:
        Index of the tuple this node ranks (``ROOT_TUPLE`` for the root).
    probability:
        Probability that the root-to-node prefix equals the true prefix
        ranking of the underlying scores.
    children:
        Child nodes, each extending the prefix by one rank.
    state:
        Opaque builder payload (e.g. the prefix density ``h_k``), used by
        the pointer-based reference engines; dropped by :meth:`clear_state`.
    """

    __slots__ = ("tuple_index", "probability", "children", "parent", "state")

    def __init__(
        self,
        tuple_index: int,
        probability: float,
        parent: Optional["TPONode"] = None,
    ) -> None:
        self.tuple_index = tuple_index
        self.probability = probability
        self.children: List["TPONode"] = []
        self.parent = parent
        self.state: Any = None

    # ------------------------------------------------------------------

    @property
    def is_root(self) -> bool:
        """True for the synthetic root."""
        return self.tuple_index == ROOT_TUPLE

    @property
    def is_leaf(self) -> bool:
        """True when the node currently has no children."""
        return not self.children

    @property
    def depth(self) -> int:
        """Number of tuples on the root-to-node path (root = 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def prefix(self) -> Tuple[int, ...]:
        """Tuple indices on the root-to-node path, best rank first."""
        indices: List[int] = []
        node = self
        while node.parent is not None:
            indices.append(node.tuple_index)
            node = node.parent
        return tuple(reversed(indices))

    # ------------------------------------------------------------------

    def add_child(self, tuple_index: int, probability: float) -> "TPONode":
        """Append a child extending this prefix and return it."""
        child = TPONode(tuple_index, probability, parent=self)
        self.children.append(child)
        return child

    def remove_child(self, child: "TPONode") -> None:
        """Detach ``child`` from this node."""
        self.children.remove(child)
        child.parent = None

    def iter_subtree(self) -> Iterator["TPONode"]:
        """Yield this node and all descendants (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def clear_state(self, recursive: bool = True) -> None:
        """Drop builder payloads to free memory once building is done."""
        if recursive:
            for node in self.iter_subtree():
                node.state = None
        else:
            self.state = None

    def __repr__(self) -> str:
        label = "root" if self.is_root else f"t{self.tuple_index}"
        return f"TPONode({label}, p={self.probability:.4g}, children={len(self.children)})"


class TPONodeView:
    """Read-only node facade over a flat level-table tree.

    A view is just ``(tree, depth, index)`` — it materializes nothing and
    reads the level tables on every attribute access, so a view stays
    current across prunings of the tree that created it only as long as
    its ``(depth, index)`` coordinate still names the same node; callers
    should treat views as ephemeral (re-fetch after structural updates).

    Children are resolved with a binary search: levels are stored
    parent-major (``parent_idx`` is non-decreasing), so the children of
    node ``i`` at depth ``d`` are a contiguous slice of level ``d + 1``.

    ``state`` is always ``None``: builder payloads live in the engine
    cache as frontier-aligned arrays, not on nodes.
    """

    __slots__ = ("_tree", "_depth", "_index")

    def __init__(self, tree: "TPOTree", depth: int, index: int) -> None:
        self._tree = tree
        self._depth = depth
        self._index = index

    # ------------------------------------------------------------------

    @property
    def is_root(self) -> bool:
        """True for the synthetic depth-0 root."""
        return self._depth == 0

    @property
    def depth(self) -> int:
        """Number of tuples on the root-to-node path (root = 0)."""
        return self._depth

    @property
    def tuple_index(self) -> int:
        """Tuple this node ranks (``ROOT_TUPLE`` for the root)."""
        if self._depth == 0:
            return ROOT_TUPLE
        return int(self._tree.levels[self._depth - 1].tuple_ids[self._index])

    @property
    def probability(self) -> float:
        """Probability mass of the root-to-node prefix."""
        if self._depth == 0:
            return 1.0
        return float(self._tree.levels[self._depth - 1].probs[self._index])

    @property
    def state(self) -> None:
        """Always ``None``: engine payloads live in frontier arrays."""
        return None

    @property
    def parent(self) -> Optional["TPONodeView"]:
        """Parent view, or ``None`` for the root."""
        if self._depth == 0:
            return None
        if self._depth == 1:
            return TPONodeView(self._tree, 0, 0)
        parent_index = int(
            self._tree.levels[self._depth - 1].parent_idx[self._index]
        )
        return TPONodeView(self._tree, self._depth - 1, parent_index)

    @property
    def children(self) -> List["TPONodeView"]:
        """Child views (contiguous slice of the next level table)."""
        lo, hi = self._child_range()
        return [
            TPONodeView(self._tree, self._depth + 1, child)
            for child in range(lo, hi)
        ]

    @property
    def is_leaf(self) -> bool:
        """True when the node has no materialized children."""
        lo, hi = self._child_range()
        return lo == hi

    def _child_range(self) -> Tuple[int, int]:
        """``[lo, hi)`` slice of this node's children in the next level."""
        if self._depth >= self._tree.built_depth:
            return 0, 0
        parent_idx = self._tree.levels[self._depth].parent_idx
        lo, hi = np.searchsorted(
            parent_idx, [self._index, self._index + 1], side="left"
        )
        return int(lo), int(hi)

    def prefix(self) -> Tuple[int, ...]:
        """Tuple indices on the root-to-node path, best rank first."""
        if self._depth == 0:
            return ()
        return tuple(
            int(t) for t in self._tree.path_of(self._depth, self._index)
        )

    def iter_subtree(self) -> Iterator["TPONodeView"]:
        """Yield this view and all descendants (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def __repr__(self) -> str:
        label = "root" if self.is_root else f"t{self.tuple_index}"
        return (
            f"TPONodeView({label}, p={self.probability:.4g}, "
            f"children={len(self.children)})"
        )


__all__ = ["TPONode", "TPONodeView", "ROOT_TUPLE"]
