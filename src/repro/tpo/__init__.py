"""Tree-of-possible-orderings substrate (S2 in DESIGN.md).

Builds, extends, prunes, and flattens the TPO ``T_K`` of Soliman & Ilyas
that the paper's uncertainty-reduction algorithms operate on.  The tree
is stored as flat per-level ``(tuple_ids, parent_idx, probs)`` array
tables (see :mod:`repro.tpo.tree`), and every engine extends the whole
frontier in one batched pass (:mod:`repro.tpo.builders`); the pointer
node API survives as read-only views.
"""

from repro.tpo.builders import (
    ENGINES,
    ExactBuilder,
    GridBuilder,
    MonteCarloBuilder,
    TPOBuilder,
    TPOSizeError,
    make_builder,
)
from repro.tpo.analysis import (
    overlap_statistics,
    profile_space,
    question_impact_table,
    tuple_volatility,
)
from repro.tpo.node import ROOT_TUPLE, TPONode, TPONodeView
from repro.tpo.semantics import (
    answer_report,
    expected_ranks,
    pt_k,
    u_kranks,
    u_topk,
)
from repro.tpo.serialize import tree_from_dict, tree_to_dict, tree_to_dot
from repro.tpo.space import DegenerateSpaceError, OrderingSpace
from repro.tpo.tree import TPOLevel, TPOTree

__all__ = [
    "TPONode",
    "TPONodeView",
    "ROOT_TUPLE",
    "TPOTree",
    "TPOLevel",
    "OrderingSpace",
    "DegenerateSpaceError",
    "TPOBuilder",
    "TPOSizeError",
    "GridBuilder",
    "ExactBuilder",
    "MonteCarloBuilder",
    "make_builder",
    "ENGINES",
    "tree_to_dict",
    "tree_from_dict",
    "tree_to_dot",
    "u_topk",
    "u_kranks",
    "pt_k",
    "expected_ranks",
    "answer_report",
    "profile_space",
    "question_impact_table",
    "tuple_volatility",
    "overlap_statistics",
]
