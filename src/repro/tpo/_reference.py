"""The retired pointer-chasing grid engine, kept as oracle and baseline.

Before the flat level-table refactor, :class:`~repro.tpo.builders.GridBuilder`
grew a tree of :class:`~repro.tpo.node.TPONode` objects: a Python loop over
the frontier, one ``TPONode`` allocation per child, and one exclude-one
CDF-product sweep per parent.  This module preserves that exact numeric
path — same recursion, same operation order, same ``min_probability``
policy — for two jobs:

* **parity oracle** — the engine cross-validation tests assert that the
  flat batched path reproduces these leaf probabilities to ≤ 1e-9;
* **regression baseline** — ``repro bench-engines`` gates the flat grid
  engine at ≥ 4× the build throughput of this implementation.

It is intentionally *not* registered in :data:`repro.api.ENGINES` and
returns its own minimal pointer tree; production code should never import
it outside tests and benchmarks.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.distributions.base import ScoreDistribution
from repro.distributions.grid import Grid
from repro.tpo.builders import TPOSizeError, _effective
from repro.tpo.node import ROOT_TUPLE, TPONode
from repro.tpo.space import OrderingSpace


class PointerTPOTree:
    """Minimal pointer-based TPO: just enough to build and flatten."""

    def __init__(
        self, distributions: Sequence[ScoreDistribution], k: int
    ) -> None:
        self.distributions = list(distributions)
        self.k = min(k, len(self.distributions))
        self.root = TPONode(ROOT_TUPLE, 1.0)
        self.built_depth = 0

    @property
    def n_tuples(self) -> int:
        return len(self.distributions)

    @property
    def is_complete(self) -> bool:
        return self.built_depth >= self.k

    def nodes_at_depth(self, depth: int) -> List[TPONode]:
        current = [self.root]
        for _ in range(depth):
            current = [child for node in current for child in node.children]
        return current

    def leaves(self) -> List[TPONode]:
        return self.nodes_at_depth(self.built_depth)

    def renormalize(self) -> None:
        leaves = self.leaves()
        total = sum(leaf.probability for leaf in leaves)
        for leaf in leaves:
            leaf.probability /= total

    def to_space(self) -> OrderingSpace:
        leaves = self.leaves()
        paths = np.array([leaf.prefix() for leaf in leaves], dtype=np.int32)
        probs = np.array([leaf.probability for leaf in leaves], dtype=float)
        return OrderingSpace(paths, probs, self.n_tuples)


class ReferenceGridBuilder:
    """The pointer-era grid engine, verbatim numeric path.

    Matches the pre-refactor ``GridBuilder`` node for node: per-parent
    Python loop, per-child state arrays, identical integration and
    pruning.  See the module docstring for why it is preserved.
    """

    def __init__(
        self,
        resolution: int = 1024,
        min_probability: float = 1e-9,
        max_orderings: int = 200000,
    ) -> None:
        self.resolution = resolution
        self.min_probability = min_probability
        self.max_orderings = max_orderings

    def build(
        self, distributions: Sequence[ScoreDistribution], k: int
    ) -> PointerTPOTree:
        tree = PointerTPOTree(distributions, k)
        dists = [_effective(d) for d in tree.distributions]
        grid = Grid.for_distributions(dists, self.resolution)
        densities = np.stack([grid.density(d) for d in dists])
        cdfs = np.stack([grid.cdf(d) for d in dists])
        while not tree.is_complete:
            self._extend(tree, grid, densities, cdfs)
        tree.renormalize()
        return tree

    def _extend(
        self,
        tree: PointerTPOTree,
        grid: Grid,
        densities: np.ndarray,
        cdfs: np.ndarray,
    ) -> None:
        n = tree.n_tuples
        created = 0
        parents = tree.nodes_at_depth(tree.built_depth)
        for node in parents:
            prefix = node.prefix()
            remaining = [t for t in range(n) if t not in set(prefix)]
            if not remaining:
                continue
            if node.is_root:
                tail = np.ones(grid.cell_count)
            else:
                tail = grid.upper_tail(node.state)
            stacked = cdfs[remaining]
            exclusive = _exclude_one_products_2d(stacked)
            candidate_h = densities[remaining] * tail[None, :]
            probs = (candidate_h * exclusive) @ grid.widths
            for idx, t in enumerate(remaining):
                if probs[idx] > self.min_probability:
                    child = node.add_child(t, float(probs[idx]))
                    child.state = candidate_h[idx]
                    created += 1
            if created > self.max_orderings:
                raise TPOSizeError(
                    f"TPO level {tree.built_depth + 1} holds {created} "
                    f"orderings, above the limit of {self.max_orderings}"
                )
        for node in parents:
            node.state = None
        tree.built_depth += 1


def _exclude_one_products_2d(stacked: np.ndarray) -> np.ndarray:
    """Pointer-era 2-D exclude-one products (``out[i] = Π_{j≠i} rows[j]``)."""
    m = stacked.shape[0]
    if m == 1:
        return np.ones_like(stacked)
    prefix = np.ones_like(stacked)
    suffix = np.ones_like(stacked)
    for i in range(1, m):
        prefix[i] = prefix[i - 1] * stacked[i - 1]
    for i in range(m - 2, -1, -1):
        suffix[i] = suffix[i + 1] * stacked[i + 1]
    return prefix * suffix


__all__ = ["PointerTPOTree", "ReferenceGridBuilder"]
