"""Classical uncertain top-K query semantics over an ordering space.

The TPO (Soliman & Ilyas, ICDE'09 — reference [4] of the paper) was
introduced to answer uncertain top-K queries under several *semantics*,
each collapsing the space of possible orderings into one answer:

* **U-Top-k** — the top-K *vector* with the highest aggregate probability
  (= the most probable ordering of the space);
* **U-kRanks** — for each rank position, the tuple most likely to occupy
  exactly that position (a winner per rank; tuples may repeat);
* **PT-k** — all tuples whose probability of appearing in the top-K
  exceeds a threshold;
* **expected ranks** — tuples ordered by expected rank (absent = K).

The crowdsourcing layer reduces uncertainty; these functions are how a
client finally *reads* the (possibly still uncertain) result, and they
make the library a usable uncertain-top-K engine rather than only a
reproduction harness.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.tpo.space import OrderingSpace
from repro.utils.validation import check_fraction


def u_topk(space: OrderingSpace) -> Tuple[np.ndarray, float]:
    """U-Top-k: the most probable complete top-K vector.

    Returns ``(ordering, probability)``.  Because every path of the space
    *is* a top-K vector, this is the modal path.
    """
    index = int(np.argmax(space.probabilities))
    return space.paths[index].copy(), float(space.probabilities[index])


def u_kranks(space: OrderingSpace) -> List[Tuple[int, float]]:
    """U-kRanks: per rank, the tuple most likely to hold exactly that rank.

    Returns one ``(tuple_index, probability)`` pair per rank.  Unlike
    U-Top-k the winners need not form a consistent vector — the classical
    quirk of this semantics (a tuple can win several ranks).
    """
    marginals = space.rank_marginals()
    winners = []
    for rank in range(space.depth):
        tuple_index = int(np.argmax(marginals[:, rank]))
        winners.append((tuple_index, float(marginals[tuple_index, rank])))
    return winners


def pt_k(space: OrderingSpace, threshold: float = 0.5) -> List[Tuple[int, float]]:
    """PT-k: tuples whose top-K membership probability clears ``threshold``.

    Returns ``(tuple_index, Pr(in top-K))`` sorted by decreasing
    probability.  ``threshold = 0`` lists every tuple with any chance.
    """
    check_fraction("threshold", threshold)
    membership = space.rank_marginals().sum(axis=1)
    rows = [
        (int(t), float(membership[t]))
        for t in np.flatnonzero(membership > max(threshold, 1e-15))
    ]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def expected_ranks(space: OrderingSpace) -> List[Tuple[int, float]]:
    """Tuples by expected rank, counting absence as rank K.

    The cheapest single-ranking readout; coincides with the Borda
    aggregation seed used by the ORA machinery.
    """
    pos = space.positions().astype(float)
    expectation = space.probabilities @ pos
    present = space.present_tuples()
    rows = [(int(t), float(expectation[t])) for t in present]
    rows.sort(key=lambda row: (row[1], row[0]))
    return rows


def answer_report(space: OrderingSpace, threshold: float = 0.5) -> str:
    """All four semantics rendered side by side (debug/demo helper)."""
    vector, probability = u_topk(space)
    lines = [
        f"U-Top-{space.depth}: {[int(t) for t in vector]} "
        f"(p={probability:.4f})",
        "U-kRanks: "
        + ", ".join(
            f"rank{r + 1}=t{t} (p={p:.3f})"
            for r, (t, p) in enumerate(u_kranks(space))
        ),
        f"PT-{space.depth} (>{threshold:g}): "
        + ", ".join(f"t{t} ({p:.3f})" for t, p in pt_k(space, threshold)),
        "expected ranks: "
        + ", ".join(f"t{t}={e:.2f}" for t, e in expected_ranks(space)),
    ]
    return "\n".join(lines)


__all__ = ["u_topk", "u_kranks", "pt_k", "expected_ranks", "answer_report"]
