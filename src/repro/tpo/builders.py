"""TPO construction engines over the flat level-table tree.

All builders implement the same level-by-level recursion for prefix-ranking
probabilities (Li & Deshpande, PVLDB'10): with independent score variables,
the event "prefix ``t_1 ≻ … ≻ t_d`` is the top-d ranking" has probability

``Pr = ∫ h_d(x) · Π_{j ∉ prefix} F_j(x) dx``, where
``h_1 = f_{t_1}`` and ``h_{d+1}(x) = f_{t_{d+1}}(x) · ∫_x^∞ h_d(u) du``.

``h_d`` — the *prefix density* — is what makes one-level extension (and
hence the paper's ``incr`` algorithm) cheap.  Since the flat level-table
refactor, it no longer lives on per-node objects: each engine keeps a
payload *aligned with the frontier level's row order* in
``tree.engine_cache`` (a ``(W, C)`` density matrix for the grid engine, a
list of piecewise polynomials for the exact engine, a sample→node index
vector for Monte Carlo) and extends the whole frontier in one batched
pass — no Python loop over nodes on the numeric hot path.

Three interchangeable engines:

* :class:`ExactBuilder` — closed-form piecewise-polynomial integration;
  exact for the polynomial distribution family, used as ground truth.
* :class:`GridBuilder` — vectorized midpoint integration on a shared grid;
  the default workhorse.
* :class:`MonteCarloBuilder` — empirical tree over joint score samples;
  used for cross-validation and very large instances.

The engines deliberately ship different ``min_probability`` defaults —
grid ``1e-9`` (matches its integration error), exact ``1e-12`` (the
polynomial calculus is precise enough to keep far smaller branches), and
Monte Carlo ``0.0`` (an empirical count is either zero or at least
``1/samples``, so a threshold would silently shadow the sample budget).
The defaults are part of the engine signature that keys the TPO cache
(see :meth:`repro.api.specs.EngineSpec.signature_for`) and are pinned by
the dtype/default contract tests.

**Anytime beam.**  Every engine also supports a mass-bounded beam:
``beam_epsilon`` is a per-level lost-mass budget (the lightest candidate
children are dropped while the level's cumulative dropped mass stays
within it) and ``beam_width`` caps each level at the W heaviest
children.  Because sibling masses partition their parent's mass, the
dropped prefix mass is an exact upper bound on the ordering mass lost
through the dropped subtrees, so a beam build certifies
``tree.lost_mass ≤ beam_epsilon · levels`` (when the width cap does not
bind) and every retained ordering keeps its exact mass.  With the beam
off, construction is bit-identical to the exact path.

The retired pointer-chasing grid path survives in
:mod:`repro.tpo._reference` as the parity oracle and the baseline of the
``bench-engines`` regression gate.
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.api._deprecation import warn_deprecated
from repro.api.catalog import ENGINES
from repro.distributions.base import ScoreDistribution
from repro.distributions.grid import Grid
from repro.distributions.piecewise import PiecewisePolynomial, product
from repro.distributions.uniform import Uniform
from repro.tpo.tree import TPOTree
from repro.utils.rng import SeedLike, ensure_rng

def _effective(dist: ScoreDistribution) -> ScoreDistribution:
    """Replace deterministic scores by negligible-width intervals.

    The continuous engines integrate densities; an atom has none, so a
    point mass is modeled as a uniform of width ``1e-9`` around its value.
    The substitution changes no ordering probability by more than the
    engines' own tolerance.
    """
    if dist.is_deterministic:
        value = dist.lower
        half = 5e-10 * max(1.0, abs(value))
        return Uniform(value - half, value + half)
    return dist


class TPOSizeError(RuntimeError):
    """Raised when a TPO would exceed the configured ordering budget.

    Exponentially bushy trees are the motivation for the paper's ``incr``
    algorithm; this guard turns an out-of-memory crash into an actionable
    error suggesting a narrower workload, a smaller K, ``incr``, or the
    anytime beam (``beam_epsilon`` / ``beam_width``).
    """


class TPOBuilder(abc.ABC):
    """Common interface of the TPO construction engines.

    ``build`` materializes all K levels; ``extend`` adds exactly one level
    to a partially built tree (the hook the ``incr`` algorithm uses).
    """

    #: Children with probability below this are not materialized.
    min_probability: float

    def __init__(
        self,
        min_probability: float = 1e-9,
        max_orderings: int = 200000,
        beam_epsilon: float = 0.0,
        beam_width: Optional[int] = None,
    ) -> None:
        if min_probability < 0:
            raise ValueError("min_probability must be non-negative")
        if max_orderings < 1:
            raise ValueError("max_orderings must be positive")
        if not 0.0 <= beam_epsilon < 1.0:
            raise ValueError(
                f"beam_epsilon must lie in [0, 1), got {beam_epsilon}"
            )
        if beam_width is not None and beam_width < 1:
            raise ValueError(f"beam_width must be >= 1, got {beam_width}")
        self.min_probability = min_probability
        self.max_orderings = max_orderings
        self.beam_epsilon = float(beam_epsilon)
        self.beam_width = beam_width

    @property
    def beam_active(self) -> bool:
        """True when either anytime-beam knob is engaged."""
        return self.beam_epsilon > 0.0 or self.beam_width is not None

    def _check_size(self, tree: TPOTree, level_width: int) -> None:
        """Abort level construction that exceeds ``max_orderings``."""
        if level_width > self.max_orderings:
            raise TPOSizeError(
                f"TPO level {tree.built_depth + 1} holds {level_width} "
                f"orderings, above the limit of {self.max_orderings}; "
                "narrow the score pdfs, lower k, use the incr algorithm, "
                "or build anytime with a beam (try beam_epsilon=1e-3 per "
                f"level, or beam_width={self.max_orderings}) for a "
                "certified approximation"
            )

    def _apply_beam(
        self, probs: np.ndarray, keep: np.ndarray
    ) -> Tuple[np.ndarray, Optional[Tuple[float, float, int]]]:
        """Apply the anytime beam to one level's candidate children.

        ``probs``/``keep`` are flat, parent-major-aligned arrays of every
        candidate child's prefix mass and the ``min_probability``
        survivor mask.  The beam (a) drops the lightest survivors while
        the level's cumulative dropped mass — counting what
        ``min_probability`` already discarded — stays within the
        ``beam_epsilon`` budget, and (b) caps the level at the
        ``beam_width`` heaviest survivors.  Both steps break mass ties
        toward keeping the earlier (parent-major) child, so beam builds
        are deterministic.  At least one child always survives.

        Returns ``(keep, loss)`` where ``loss`` is the
        ``(mass, node_max, count)`` triple for
        :meth:`TPOTree.record_level_loss`, or ``None`` when the beam is
        off (the mask is returned untouched) or nothing was dropped.
        """
        probs = np.asarray(probs, dtype=float).reshape(-1)
        keep = np.asarray(keep, dtype=bool).reshape(-1)
        if not self.beam_active:
            return keep, None
        keep = keep.copy()
        total = float(probs.sum())
        dropped_mass = total - float(probs[keep].sum())
        if self.beam_epsilon > 0.0:
            survivors = np.flatnonzero(keep)
            if survivors.size > 1:
                order = np.argsort(probs[survivors], kind="stable")
                cumulative = dropped_mass + np.cumsum(
                    probs[survivors[order]]
                )
                cut = int(
                    np.searchsorted(
                        cumulative, self.beam_epsilon, side="right"
                    )
                )
                cut = min(cut, survivors.size - 1)
                if cut > 0:
                    keep[survivors[order[:cut]]] = False
        if self.beam_width is not None:
            survivors = np.flatnonzero(keep)
            if survivors.size > self.beam_width:
                order = np.argsort(-probs[survivors], kind="stable")
                keep[survivors[order[self.beam_width :]]] = False
        dropped = ~keep & (probs > 0.0)
        if not dropped.any():
            return keep, None
        lost = float(probs[dropped].sum())
        if lost <= 0.0:
            return keep, None
        return keep, (lost, float(probs[dropped].max()), int(dropped.sum()))

    def build(self, distributions: Sequence[ScoreDistribution], k: int) -> TPOTree:
        """Materialize the full depth-K tree of possible orderings."""
        tree = self.start(distributions, k)
        while not tree.is_complete:
            self.extend(tree)
        tree.renormalize()
        return tree

    def start(
        self, distributions: Sequence[ScoreDistribution], k: int
    ) -> TPOTree:
        """Create an empty tree and attach engine state (no levels built)."""
        tree = TPOTree(distributions, k)
        self._initialize(tree)
        return tree

    @abc.abstractmethod
    def _initialize(self, tree: TPOTree) -> None:
        """Attach engine-specific caches to a fresh tree."""

    @abc.abstractmethod
    def extend(self, tree: TPOTree) -> None:
        """Materialize one more level of ``tree``."""

    def _remaining_candidates(self, tree: TPOTree) -> np.ndarray:
        """``(W, N − depth)`` per-frontier-node candidate tuples, ascending.

        Every depth-``d`` prefix holds ``d`` distinct tuples, so each
        frontier node has exactly ``N − d`` candidates; row-major
        ``np.nonzero`` of the absent-tuple mask yields them sorted, which
        reproduces the pointer-era child order exactly.
        """
        n = tree.n_tuples
        depth = tree.built_depth
        if depth == 0:
            return np.arange(n, dtype=np.intp).reshape(1, n)
        paths = tree.paths_at_depth(depth)
        width = paths.shape[0]
        present = np.zeros((width, n), dtype=bool)
        present[np.arange(width)[:, None], paths] = True
        return np.nonzero(~present)[1].reshape(width, n - depth)


# ----------------------------------------------------------------------
# Grid engine
# ----------------------------------------------------------------------


class GridBuilder(TPOBuilder):
    """Numeric TPO construction on a shared integration grid.

    ``extend`` is one batched pass over the whole frontier: one
    vectorized upper-tail sweep over the ``(W, C)`` prefix-density
    matrix, one exclude-one cumulative-product integrand per distinct
    candidate *set* (``m = N − depth`` candidates per node, ``C`` grid
    cells), and one ``(W_g, C) × (C, m)`` matmul per set-group —
    probabilities for every child of every frontier node with no
    per-node Python work.

    Parameters
    ----------
    resolution:
        Target number of grid cells across the union of supports.
    min_probability:
        Branches below this probability are dropped (their total mass is
        bounded by ``N · min_probability`` per level).
    """

    def __init__(
        self,
        resolution: int = 1024,
        min_probability: float = 1e-9,
        max_orderings: int = 200000,
        beam_epsilon: float = 0.0,
        beam_width: Optional[int] = None,
    ) -> None:
        super().__init__(
            min_probability, max_orderings, beam_epsilon, beam_width
        )
        if resolution < 8:
            raise ValueError(f"resolution must be >= 8, got {resolution}")
        self.resolution = resolution

    def _initialize(self, tree: TPOTree) -> None:
        dists = [_effective(d) for d in tree.distributions]
        grid = Grid.for_distributions(dists, self.resolution)
        densities = np.stack([grid.density(d) for d in dists])
        cdfs = np.stack([grid.cdf(d) for d in dists])
        tree.engine_cache = _GridCache(grid, densities, cdfs)

    def extend(self, tree: TPOTree) -> None:
        cache: _GridCache = tree.engine_cache
        grid = cache.grid
        depth = tree.built_depth
        if depth >= tree.k:
            return
        cells = grid.cell_count
        remaining = self._remaining_candidates(tree)
        width, m = remaining.shape
        if depth == 0:
            tails = np.ones((1, cells), dtype=np.float64)
        else:
            tails = _upper_tail_rows(cache.frontier_h, grid)

        # The child probability ∫ f_t · T_node · Π_{j≠t} F_j factors into
        # (tail of the node) × (integrand of the candidate *set*): the
        # exclude-one CDF products depend on which tuples remain, not on
        # the order the prefix ranked them.  Group the frontier by
        # candidate set, build each set's (m, C) integrand once, and all
        # of a group's children drop out of a single (W_g, C) × (C, m)
        # matmul — the per-node pointer loop becomes one GEMM per set.
        sets, inverse = np.unique(remaining, axis=0, return_inverse=True)
        order = np.argsort(inverse.ravel(), kind="stable")
        bounds = np.append(
            np.flatnonzero(np.diff(inverse.ravel()[order], prepend=-1)),
            order.size,
        )
        probs = np.empty((width, m), dtype=np.float64)
        created = 0
        anytime = self.beam_active
        for group in range(sets.shape[0]):
            rows = order[bounds[group] : bounds[group + 1]]
            cand = sets[group]
            integrand = (
                cache.densities[cand]
                * _exclude_one_products(cache.cdfs[cand])
                * grid.widths
            )
            block = tails[rows] @ integrand.T  # (W_g, m)
            probs[rows] = block
            if not anytime:
                # The incremental count aborts runaway levels before all
                # groups are computed; a beam decides what survives only
                # once the whole level is known, so it checks post-beam.
                created += int(
                    np.count_nonzero(block > self.min_probability)
                )
                self._check_size(tree, created)
        keep_flat, loss = self._apply_beam(
            probs, probs.ravel() > self.min_probability
        )
        if anytime:
            self._check_size(tree, int(np.count_nonzero(keep_flat)))
        keep_rows, keep_cols = np.nonzero(keep_flat.reshape(width, m))
        child_tuples = remaining[keep_rows, keep_cols]
        if depth + 1 < tree.k:
            # Child prefix densities h_{d+1} = f_t · T(h_d), kept rows
            # only.  The deepest level never extends again, so its (far
            # widest) density matrix is never materialized at all.
            cache.frontier_h = cache.densities[child_tuples] * tails[keep_rows]
        else:
            cache.frontier_h = None
        tree.append_level(
            child_tuples, keep_rows, probs[keep_rows, keep_cols]
        )
        if loss is not None:
            tree.record_level_loss(*loss)


class _GridCache:
    """Per-tree numeric context for :class:`GridBuilder`.

    ``frontier_h`` is the ``(W, C)`` matrix of prefix densities of the
    deepest level's nodes, row-aligned with that level — the only mutable
    piece, replaced wholesale on every extension and compacted by
    :meth:`prune_frontier` when the tree is pruned mid-build.
    """

    __slots__ = ("grid", "densities", "cdfs", "frontier_h")

    def __init__(
        self, grid: Grid, densities: np.ndarray, cdfs: np.ndarray
    ) -> None:
        self.grid = grid
        self.densities = densities
        self.cdfs = cdfs
        self.frontier_h: Optional[np.ndarray] = None

    def prune_frontier(
        self, alive: np.ndarray, index_map: np.ndarray
    ) -> None:
        """Drop the prefix-density rows of pruned frontier nodes."""
        if self.frontier_h is not None:
            self.frontier_h = self.frontier_h[alive]


def _exclude_one_products(stacked: np.ndarray) -> np.ndarray:
    """Products of all *other* rows: ``out[…, i, :] = Π_{j≠i} rows[…, j, :]``.

    Operates on the second-to-last axis of an ``(…, m, C)`` stack, so one
    call covers every frontier node of a chunk.  Computed with
    prefix/suffix cumulative products in O(m·C) per node; avoids the
    numerically hazardous divide-by-row alternative (CDFs are 0 on the
    left of each support).
    """
    m = stacked.shape[-2]
    if m == 1:
        return np.ones_like(stacked)
    prefix = np.ones_like(stacked)
    suffix = np.ones_like(stacked)
    for i in range(1, m):
        prefix[..., i, :] = prefix[..., i - 1, :] * stacked[..., i - 1, :]
    for i in range(m - 2, -1, -1):
        suffix[..., i, :] = suffix[..., i + 1, :] * stacked[..., i + 1, :]
    return prefix * suffix


def _upper_tail_rows(cell_values: np.ndarray, grid: Grid) -> np.ndarray:
    """Row-wise :meth:`Grid.upper_tail` of a ``(W, C)`` density matrix."""
    masses = cell_values * grid.widths
    suffix = np.cumsum(masses[:, ::-1], axis=1)[:, ::-1]
    after = np.concatenate(
        [suffix[:, 1:], np.zeros((masses.shape[0], 1), dtype=np.float64)],
        axis=1,
    )
    return after + 0.5 * masses


# ----------------------------------------------------------------------
# Exact engine
# ----------------------------------------------------------------------


class ExactBuilder(TPOBuilder):
    """Closed-form TPO construction via piecewise-polynomial calculus.

    Exact for uniform, triangular, histogram, and point-mass scores; smooth
    distributions are first discretized through their
    :meth:`~repro.distributions.base.ScoreDistribution.piecewise_pdf`.
    Intended for small instances (it is the test oracle for the other
    engines); cost grows with the product polynomial degrees, roughly
    ``O(nodes · N² · pieces)``.  Per-frontier prefix densities are a list
    of polynomials aligned with the top level's rows; the node loop stays
    in Python because the polynomial calculus itself dominates.
    """

    def __init__(
        self,
        min_probability: float = 1e-12,
        resolution: Optional[int] = None,
        max_orderings: int = 200000,
        beam_epsilon: float = 0.0,
        beam_width: Optional[int] = None,
    ) -> None:
        super().__init__(
            min_probability, max_orderings, beam_epsilon, beam_width
        )
        self.resolution = resolution

    def _initialize(self, tree: TPOTree) -> None:
        dists = [_effective(d) for d in tree.distributions]
        lo = min(d.lower for d in dists)
        hi = max(d.upper for d in dists)
        pdfs = [d.piecewise_pdf(self.resolution) for d in dists]
        cdfs = [
            p.antiderivative().extend_right_constant(hi).extend_domain(lo, hi)
            for p in pdfs
        ]
        tree.engine_cache = _ExactCache(lo, hi, pdfs, cdfs)

    def extend(self, tree: TPOTree) -> None:
        cache: _ExactCache = tree.engine_cache
        depth = tree.built_depth
        if depth >= tree.k:
            return
        remaining = self._remaining_candidates(tree)
        if depth == 0:
            tails: List[Optional[PiecewisePolynomial]] = [None]
        else:
            tails = [
                _upper_tail_poly(h, cache.lo, cache.hi)
                for h in cache.frontier_polys
            ]
        tuple_ids: List[int] = []
        parent_idx: List[int] = []
        probs: List[float] = []
        new_polys: List[PiecewisePolynomial] = []
        anytime = self.beam_active
        for parent, (candidates, tail) in enumerate(zip(remaining, tails, strict=True)):
            for position, t in enumerate(candidates):
                others = np.delete(candidates, position)
                h_child = (
                    cache.pdfs[t] if tail is None else cache.pdfs[t] * tail
                )
                if h_child.is_zero():
                    continue
                integrand = h_child
                if others.size:
                    integrand = h_child * product(
                        [cache.cdfs[j] for j in others]
                    )
                prob = integrand.definite_integral()
                if anytime:
                    # A beam ranks the whole level at once, so every
                    # positive-mass candidate is collected first.
                    if prob > 0.0:
                        tuple_ids.append(int(t))
                        parent_idx.append(parent)
                        probs.append(float(prob))
                        new_polys.append(h_child)
                elif prob > self.min_probability:
                    tuple_ids.append(int(t))
                    parent_idx.append(parent)
                    probs.append(float(prob))
                    new_polys.append(h_child)
            if not anytime:
                self._check_size(tree, len(tuple_ids))
        if anytime:
            probs_arr = np.asarray(probs, dtype=float)
            keep, loss = self._apply_beam(
                probs_arr, probs_arr > self.min_probability
            )
            self._check_size(tree, int(np.count_nonzero(keep)))
            kept = np.flatnonzero(keep)
            tuple_ids = [tuple_ids[i] for i in kept]
            parent_idx = [parent_idx[i] for i in kept]
            probs = [probs[i] for i in kept]
            new_polys = [new_polys[i] for i in kept]
        else:
            loss = None
        cache.frontier_polys = new_polys
        tree.append_level(
            np.asarray(tuple_ids), np.asarray(parent_idx), np.asarray(probs)
        )
        if loss is not None:
            tree.record_level_loss(*loss)


class _ExactCache:
    """Per-tree symbolic context for :class:`ExactBuilder`."""

    __slots__ = ("lo", "hi", "pdfs", "cdfs", "frontier_polys")

    def __init__(
        self,
        lo: float,
        hi: float,
        pdfs: List[PiecewisePolynomial],
        cdfs: List[PiecewisePolynomial],
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.pdfs = pdfs
        self.cdfs = cdfs
        self.frontier_polys: List[PiecewisePolynomial] = []

    def prune_frontier(
        self, alive: np.ndarray, index_map: np.ndarray
    ) -> None:
        """Drop the prefix-density polynomials of pruned frontier nodes."""
        if self.frontier_polys:
            self.frontier_polys = [
                poly
                for poly, keep in zip(self.frontier_polys, alive, strict=True)
                if keep
            ]


def _upper_tail_poly(
    h: PiecewisePolynomial, lo: float, hi: float
) -> PiecewisePolynomial:
    """``T(x) = ∫_x^∞ h`` as a piecewise polynomial on ``[lo, hi]``."""
    total = h.definite_integral()
    antiderivative = (
        h.antiderivative().extend_right_constant(hi).extend_domain(lo, hi)
    )
    return PiecewisePolynomial.constant(total, lo, hi) - antiderivative


# ----------------------------------------------------------------------
# Monte Carlo engine
# ----------------------------------------------------------------------


class MonteCarloBuilder(TPOBuilder):
    """Empirical TPO over joint samples of the score vector.

    The engine cache maps every sample to the frontier node whose prefix
    it is consistent with (``-1`` once dropped), so extension is one
    global stable group-by over ``(node, next_tuple)`` keys — a single
    argsort of the active samples replaces the pointer-era per-node
    argsorts.  The tree converges to the exact one as ``samples → ∞`` at
    the usual ``O(1/√M)`` rate.
    """

    def __init__(
        self,
        samples: int = 20000,
        seed: SeedLike = None,
        min_probability: float = 0.0,
        max_orderings: int = 200000,
        beam_epsilon: float = 0.0,
        beam_width: Optional[int] = None,
    ) -> None:
        super().__init__(
            min_probability, max_orderings, beam_epsilon, beam_width
        )
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        self.samples = samples
        self.seed = seed

    def _initialize(self, tree: TPOTree) -> None:
        rng = ensure_rng(self.seed)
        dists = tree.distributions
        matrix = np.column_stack(
            [np.atleast_1d(d.sample(rng, self.samples)) for d in dists]
        )
        # Random jitter breaks ties between equal samples (e.g. atoms).
        matrix = matrix + rng.random(matrix.shape) * 1e-12
        ranks = np.argsort(-matrix, axis=1)[:, : tree.k]
        tree.engine_cache = _MonteCarloCache(ranks)

    def extend(self, tree: TPOTree) -> None:
        cache: _MonteCarloCache = tree.engine_cache
        depth = tree.built_depth
        if depth >= tree.k:
            return
        total = cache.ranks.shape[0]
        n = tree.n_tuples
        active = np.flatnonzero(cache.sample_node >= 0)
        if active.size == 0:
            tree.append_level(
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.intp),
                np.empty(0, dtype=np.float64),
            )
            return
        # One global stable group-by over (frontier node, next tuple).
        keys = cache.sample_node[active] * n + cache.ranks[active, depth]
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        starts = np.flatnonzero(
            np.diff(sorted_keys, prepend=sorted_keys[0] - 1)
        )
        counts = np.diff(np.append(starts, sorted_keys.size))
        group_keys = sorted_keys[starts]
        probs = counts / total
        keep, loss = self._apply_beam(probs, probs > self.min_probability)
        self._check_size(tree, int(np.count_nonzero(keep)))
        child_of_group = np.full(group_keys.size, -1, dtype=np.int64)
        child_of_group[keep] = np.arange(int(np.count_nonzero(keep)))
        # Reassign every active sample to its (possibly dropped) child.
        group_per_sample = np.repeat(
            np.arange(group_keys.size), counts
        )
        new_assignment = np.full(total, -1, dtype=np.int64)
        new_assignment[active[order]] = child_of_group[group_per_sample]
        cache.sample_node = new_assignment
        tree.append_level(
            (group_keys % n)[keep],
            (group_keys // n)[keep],
            probs[keep],
        )
        if loss is not None:
            # Empirical masses, so the bound is certified w.r.t. the
            # sampled distribution the tree itself represents.
            tree.record_level_loss(*loss)


class _MonteCarloCache:
    """Per-tree sample context for :class:`MonteCarloBuilder`.

    ``sample_node[s]`` is the frontier-level row index whose prefix sample
    ``s`` realizes, or ``-1`` once the sample's prefix was dropped
    (pruned, or below ``min_probability``).
    """

    __slots__ = ("ranks", "sample_node")

    def __init__(self, ranks: np.ndarray) -> None:
        self.ranks = ranks
        self.sample_node = np.zeros(ranks.shape[0], dtype=np.int64)

    def prune_frontier(
        self, alive: np.ndarray, index_map: np.ndarray
    ) -> None:
        """Remap sample assignments through the level compaction."""
        assigned = self.sample_node >= 0
        remapped = self.sample_node.copy()
        remapped[assigned] = index_map[self.sample_node[assigned]]
        self.sample_node = remapped


# ----------------------------------------------------------------------

def make_builder(engine: str = "grid", **kwargs: Any) -> TPOBuilder:
    """Deprecated shim: use ``repro.api.ENGINES.create`` instead."""
    warn_deprecated("repro.tpo.make_builder", "repro.api.ENGINES.create")
    return ENGINES.create(engine, **kwargs)


__all__ = [
    "TPOBuilder",
    "TPOSizeError",
    "GridBuilder",
    "ExactBuilder",
    "MonteCarloBuilder",
    "make_builder",
    "ENGINES",
]
