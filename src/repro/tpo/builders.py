"""TPO construction engines.

All builders implement the same level-by-level recursion for prefix-ranking
probabilities (Li & Deshpande, PVLDB'10): with independent score variables,
the event "prefix ``t_1 ≻ … ≻ t_d`` is the top-d ranking" has probability

``Pr = ∫ h_d(x) · Π_{j ∉ prefix} F_j(x) dx``, where
``h_1 = f_{t_1}`` and ``h_{d+1}(x) = f_{t_{d+1}}(x) · ∫_x^∞ h_d(u) du``.

``h_d`` — the *prefix density* — is stored on each node (``node.state``),
which is what makes one-level extension (and hence the paper's ``incr``
algorithm) cheap.

Three interchangeable engines:

* :class:`ExactBuilder` — closed-form piecewise-polynomial integration;
  exact for the polynomial distribution family, used as ground truth.
* :class:`GridBuilder` — vectorized midpoint integration on a shared grid;
  the default workhorse.
* :class:`MonteCarloBuilder` — empirical tree over joint score samples;
  used for cross-validation and very large instances.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.api._deprecation import warn_deprecated
from repro.api.catalog import ENGINES
from repro.distributions.base import ScoreDistribution
from repro.distributions.grid import Grid
from repro.distributions.piecewise import PiecewisePolynomial, product
from repro.distributions.uniform import Uniform
from repro.tpo.tree import TPOTree
from repro.utils.rng import SeedLike, ensure_rng


def _effective(dist: ScoreDistribution) -> ScoreDistribution:
    """Replace deterministic scores by negligible-width intervals.

    The continuous engines integrate densities; an atom has none, so a
    point mass is modeled as a uniform of width ``1e-9`` around its value.
    The substitution changes no ordering probability by more than the
    engines' own tolerance.
    """
    if dist.is_deterministic:
        value = dist.lower
        half = 5e-10 * max(1.0, abs(value))
        return Uniform(value - half, value + half)
    return dist


class TPOSizeError(RuntimeError):
    """Raised when a TPO would exceed the configured ordering budget.

    Exponentially bushy trees are the motivation for the paper's ``incr``
    algorithm; this guard turns an out-of-memory crash into an actionable
    error suggesting a narrower workload, a smaller K, or ``incr``.
    """


class TPOBuilder(abc.ABC):
    """Common interface of the TPO construction engines.

    ``build`` materializes all K levels; ``extend`` adds exactly one level
    to a partially built tree (the hook the ``incr`` algorithm uses).
    """

    #: Children with probability below this are not materialized.
    min_probability: float

    def __init__(
        self,
        min_probability: float = 1e-9,
        max_orderings: int = 200000,
    ) -> None:
        if min_probability < 0:
            raise ValueError("min_probability must be non-negative")
        if max_orderings < 1:
            raise ValueError("max_orderings must be positive")
        self.min_probability = min_probability
        self.max_orderings = max_orderings

    def _check_size(self, tree: TPOTree, level_width: int) -> None:
        """Abort level construction that exceeds ``max_orderings``."""
        if level_width > self.max_orderings:
            raise TPOSizeError(
                f"TPO level {tree.built_depth + 1} holds {level_width} "
                f"orderings, above the limit of {self.max_orderings}; "
                "narrow the score pdfs, lower k, or use the incr algorithm"
            )

    def build(self, distributions: Sequence[ScoreDistribution], k: int) -> TPOTree:
        """Materialize the full depth-K tree of possible orderings."""
        tree = self.start(distributions, k)
        while not tree.is_complete:
            self.extend(tree)
        tree.renormalize()
        return tree

    def start(
        self, distributions: Sequence[ScoreDistribution], k: int
    ) -> TPOTree:
        """Create an empty tree and attach engine state (no levels built)."""
        tree = TPOTree(distributions, k)
        self._initialize(tree)
        return tree

    @abc.abstractmethod
    def _initialize(self, tree: TPOTree) -> None:
        """Attach engine-specific caches to a fresh tree."""

    @abc.abstractmethod
    def extend(self, tree: TPOTree) -> None:
        """Materialize one more level of ``tree``."""


# ----------------------------------------------------------------------
# Grid engine
# ----------------------------------------------------------------------


class GridBuilder(TPOBuilder):
    """Numeric TPO construction on a shared integration grid.

    Parameters
    ----------
    resolution:
        Target number of grid cells across the union of supports.
    min_probability:
        Branches below this probability are dropped (their total mass is
        bounded by ``N · min_probability`` per level).
    """

    def __init__(
        self,
        resolution: int = 1024,
        min_probability: float = 1e-9,
        max_orderings: int = 200000,
    ) -> None:
        super().__init__(min_probability, max_orderings)
        if resolution < 8:
            raise ValueError(f"resolution must be >= 8, got {resolution}")
        self.resolution = resolution

    def _initialize(self, tree: TPOTree) -> None:
        dists = [_effective(d) for d in tree.distributions]
        grid = Grid.for_distributions(dists, self.resolution)
        densities = np.stack([grid.density(d) for d in dists])
        cdfs = np.stack([grid.cdf(d) for d in dists])
        tree.engine_cache = _GridCache(grid, densities, cdfs)

    def extend(self, tree: TPOTree) -> None:
        cache: _GridCache = tree.engine_cache
        grid = cache.grid
        depth = tree.built_depth
        if depth >= tree.k:
            return
        n = tree.n_tuples
        created = 0
        parents = tree.nodes_at_depth(depth)
        for node in parents:
            prefix = node.prefix()
            remaining = [t for t in range(n) if t not in set(prefix)]
            if not remaining:
                continue
            if node.is_root:
                tail = np.ones(grid.cell_count)
            else:
                tail = grid.upper_tail(node.state)
            # Exclude-one products of the remaining tuples' CDFs.
            stacked = cache.cdfs[remaining]
            exclusive = _exclude_one_products(stacked)
            candidate_h = cache.densities[remaining] * tail[None, :]
            probs = (candidate_h * exclusive) @ grid.widths
            for idx, t in enumerate(remaining):
                if probs[idx] > self.min_probability:
                    child = node.add_child(t, float(probs[idx]))
                    child.state = candidate_h[idx]
                    created += 1
            self._check_size(tree, created)
        # Parent prefix densities are never needed again: free them so the
        # live state is bounded by one level, not the whole tree.
        for node in parents:
            node.state = None
        tree.built_depth += 1


class _GridCache:
    """Per-tree immutable numeric context for :class:`GridBuilder`."""

    __slots__ = ("grid", "densities", "cdfs")

    def __init__(self, grid: Grid, densities: np.ndarray, cdfs: np.ndarray):
        self.grid = grid
        self.densities = densities
        self.cdfs = cdfs


def _exclude_one_products(stacked: np.ndarray) -> np.ndarray:
    """Row-wise products of all *other* rows: ``out[i] = Π_{j≠i} rows[j]``.

    Computed with prefix/suffix cumulative products in O(m·C); avoids the
    numerically hazardous divide-by-row alternative (CDFs are 0 on the left
    of each support).
    """
    m = stacked.shape[0]
    if m == 1:
        return np.ones_like(stacked)
    prefix = np.ones_like(stacked)
    suffix = np.ones_like(stacked)
    for i in range(1, m):
        prefix[i] = prefix[i - 1] * stacked[i - 1]
    for i in range(m - 2, -1, -1):
        suffix[i] = suffix[i + 1] * stacked[i + 1]
    return prefix * suffix


# ----------------------------------------------------------------------
# Exact engine
# ----------------------------------------------------------------------


class ExactBuilder(TPOBuilder):
    """Closed-form TPO construction via piecewise-polynomial calculus.

    Exact for uniform, triangular, histogram, and point-mass scores; smooth
    distributions are first discretized through their
    :meth:`~repro.distributions.base.ScoreDistribution.piecewise_pdf`.
    Intended for small instances (it is the test oracle for the other
    engines); cost grows with the product polynomial degrees, roughly
    ``O(nodes · N² · pieces)``.
    """

    def __init__(
        self,
        min_probability: float = 1e-12,
        resolution: Optional[int] = None,
        max_orderings: int = 200000,
    ) -> None:
        super().__init__(min_probability, max_orderings)
        self.resolution = resolution

    def _initialize(self, tree: TPOTree) -> None:
        dists = [_effective(d) for d in tree.distributions]
        lo = min(d.lower for d in dists)
        hi = max(d.upper for d in dists)
        pdfs = [d.piecewise_pdf(self.resolution) for d in dists]
        cdfs = [
            p.antiderivative().extend_right_constant(hi).extend_domain(lo, hi)
            for p in pdfs
        ]
        tree.engine_cache = _ExactCache(lo, hi, pdfs, cdfs)

    def extend(self, tree: TPOTree) -> None:
        cache: _ExactCache = tree.engine_cache
        depth = tree.built_depth
        if depth >= tree.k:
            return
        n = tree.n_tuples
        created = 0
        parents = tree.nodes_at_depth(depth)
        for node in parents:
            prefix = set(node.prefix())
            remaining = [t for t in range(n) if t not in prefix]
            if not remaining:
                continue
            tail = (
                None
                if node.is_root
                else _upper_tail_poly(node.state, cache.lo, cache.hi)
            )
            for position, t in enumerate(remaining):
                others = remaining[:position] + remaining[position + 1 :]
                h_child = (
                    cache.pdfs[t] if tail is None else cache.pdfs[t] * tail
                )
                if h_child.is_zero():
                    continue
                integrand = h_child
                if others:
                    integrand = h_child * product(
                        [cache.cdfs[j] for j in others]
                    )
                prob = integrand.definite_integral()
                if prob > self.min_probability:
                    child = node.add_child(t, float(prob))
                    child.state = h_child
                    created += 1
            self._check_size(tree, created)
        for node in parents:
            node.state = None
        tree.built_depth += 1


class _ExactCache:
    """Per-tree symbolic context for :class:`ExactBuilder`."""

    __slots__ = ("lo", "hi", "pdfs", "cdfs")

    def __init__(
        self,
        lo: float,
        hi: float,
        pdfs: List[PiecewisePolynomial],
        cdfs: List[PiecewisePolynomial],
    ) -> None:
        self.lo = lo
        self.hi = hi
        self.pdfs = pdfs
        self.cdfs = cdfs


def _upper_tail_poly(
    h: PiecewisePolynomial, lo: float, hi: float
) -> PiecewisePolynomial:
    """``T(x) = ∫_x^∞ h`` as a piecewise polynomial on ``[lo, hi]``."""
    total = h.definite_integral()
    antiderivative = (
        h.antiderivative().extend_right_constant(hi).extend_domain(lo, hi)
    )
    return PiecewisePolynomial.constant(total, lo, hi) - antiderivative


# ----------------------------------------------------------------------
# Monte Carlo engine
# ----------------------------------------------------------------------


class MonteCarloBuilder(TPOBuilder):
    """Empirical TPO over joint samples of the score vector.

    Each node stores the indices of the samples consistent with its prefix,
    so extension is a group-by over the next rank — the tree converges to
    the exact one as ``samples → ∞`` at the usual ``O(1/√M)`` rate.
    """

    def __init__(
        self,
        samples: int = 20000,
        seed: SeedLike = None,
        min_probability: float = 0.0,
        max_orderings: int = 200000,
    ) -> None:
        super().__init__(min_probability, max_orderings)
        if samples < 1:
            raise ValueError(f"samples must be >= 1, got {samples}")
        self.samples = samples
        self.seed = seed

    def _initialize(self, tree: TPOTree) -> None:
        rng = ensure_rng(self.seed)
        dists = tree.distributions
        matrix = np.column_stack(
            [np.atleast_1d(d.sample(rng, self.samples)) for d in dists]
        )
        # Random jitter breaks ties between equal samples (e.g. atoms).
        matrix = matrix + rng.random(matrix.shape) * 1e-12
        ranks = np.argsort(-matrix, axis=1)[:, : tree.k]
        tree.engine_cache = _MonteCarloCache(ranks)
        tree.root.state = np.arange(self.samples)

    def extend(self, tree: TPOTree) -> None:
        cache: _MonteCarloCache = tree.engine_cache
        depth = tree.built_depth
        if depth >= tree.k:
            return
        total = cache.ranks.shape[0]
        for node in tree.nodes_at_depth(depth):
            sample_ids = node.state
            if sample_ids is None or sample_ids.size == 0:
                continue
            next_tuples = cache.ranks[sample_ids, depth]
            order = np.argsort(next_tuples, kind="stable")
            sorted_tuples = next_tuples[order]
            sorted_ids = sample_ids[order]
            boundaries = np.flatnonzero(
                np.diff(sorted_tuples, prepend=sorted_tuples[0] - 1)
            )
            boundaries = np.append(boundaries, sorted_tuples.size)
            for b in range(len(boundaries) - 1):
                lo, hi = boundaries[b], boundaries[b + 1]
                t = int(sorted_tuples[lo])
                prob = (hi - lo) / total
                if prob > self.min_probability:
                    child = node.add_child(t, float(prob))
                    child.state = sorted_ids[lo:hi]
        tree.built_depth += 1


class _MonteCarloCache:
    """Per-tree sample context for :class:`MonteCarloBuilder`."""

    __slots__ = ("ranks",)

    def __init__(self, ranks: np.ndarray) -> None:
        self.ranks = ranks


# ----------------------------------------------------------------------

def make_builder(engine: str = "grid", **kwargs) -> TPOBuilder:
    """Deprecated shim: use ``repro.api.ENGINES.create`` instead."""
    warn_deprecated("repro.tpo.make_builder", "repro.api.ENGINES.create")
    return ENGINES.create(engine, **kwargs)


__all__ = [
    "TPOBuilder",
    "TPOSizeError",
    "GridBuilder",
    "ExactBuilder",
    "MonteCarloBuilder",
    "make_builder",
    "ENGINES",
]
