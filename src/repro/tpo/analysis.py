"""Diagnostics over trees and spaces of possible orderings.

Answering "why is this query so uncertain?" needs more than a scalar
measure.  These helpers decompose a TPO's uncertainty the way a DBA would
want to see it: per level, per tuple, and per potential crowd question —
they power the example scripts and are handy in notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import ScoreDistribution
from repro.distributions.ops import overlap_matrix
from repro.tpo.space import OrderingSpace

# NOTE: repro.questions and repro.uncertainty import repro.tpo.space, so
# importing them at module scope from inside the repro.tpo package would be
# circular; they are imported lazily inside the functions below.

if False:  # pragma: no cover - typing aid only
    from repro.questions.model import Question  # noqa: F401
    from repro.uncertainty.base import UncertaintyMeasure  # noqa: F401


@dataclass
class SpaceProfile:
    """A structured uncertainty report for one ordering space."""

    orderings: int
    depth: int
    entropy: float
    level_entropies: List[float]
    effective_orderings: float
    contested_pairs: int
    most_uncertain_rank: int

    def format(self) -> str:
        """Multi-line human-readable rendering."""
        per_level = ", ".join(
            f"L{idx + 1}={value:.2f}"
            for idx, value in enumerate(self.level_entropies)
        )
        return "\n".join(
            [
                f"orderings:            {self.orderings}",
                f"entropy (bits):       {self.entropy:.3f}",
                f"effective orderings:  {self.effective_orderings:.1f}",
                f"per-level entropy:    {per_level}",
                f"contested pairs:      {self.contested_pairs}",
                f"most uncertain rank:  {self.most_uncertain_rank}",
            ]
        )


def profile_space(space: OrderingSpace) -> SpaceProfile:
    """Compute the standard diagnostic profile of a space.

    ``effective_orderings`` is the entropy-equivalent count ``2^H`` —
    "how many equally-likely orderings this space is worth"; the *most
    uncertain rank* is the level whose prefix distribution has maximal
    entropy (where crowd effort is most needed).
    """
    from repro.questions.candidates import informative_questions
    from repro.uncertainty.entropy import shannon_entropy

    level_entropies = []
    for level in range(1, space.depth + 1):
        _, masses = space.prefix_groups(level)
        level_entropies.append(shannon_entropy(masses))
    marginal_gain = np.diff([0.0] + level_entropies)
    entropy = shannon_entropy(space.probabilities)
    return SpaceProfile(
        orderings=space.size,
        depth=space.depth,
        entropy=entropy,
        level_entropies=level_entropies,
        effective_orderings=float(2.0**entropy),
        contested_pairs=len(informative_questions(space)),
        most_uncertain_rank=int(np.argmax(marginal_gain)) + 1,
    )


def question_impact_table(
    space: OrderingSpace,
    measure: Optional["UncertaintyMeasure"] = None,
    top: int = 10,
) -> List[Tuple["Question", float, float]]:
    """Rank candidate questions by expected uncertainty reduction.

    Returns ``(question, expected_residual, reduction)`` rows, most
    valuable first — the "what should I ask the crowd" report.
    """
    from repro.questions.candidates import informative_questions
    from repro.questions.residual import ResidualEvaluator
    from repro.uncertainty.entropy import EntropyMeasure

    measure = measure if measure is not None else EntropyMeasure()
    evaluator = ResidualEvaluator(measure)
    current = evaluator.uncertainty(space)
    rows = []
    for question in informative_questions(space):
        residual = evaluator.single(space, question)
        rows.append((question, residual, current - residual))
    rows.sort(key=lambda row: row[1])
    return rows[:top]


def tuple_volatility(space: OrderingSpace) -> np.ndarray:
    """Per-tuple rank volatility: entropy of each tuple's rank marginal.

    Tuples whose position is spread across many ranks (or across the
    in/out-of-top-K boundary) drive the ordering uncertainty.
    """
    from repro.uncertainty.entropy import shannon_entropy

    marginals = space.rank_marginals()
    presence = marginals.sum(axis=1, keepdims=True)
    # Append the "below rank K" outcome so each row is a distribution.
    full = np.concatenate([marginals, 1.0 - presence], axis=1)
    volatility = np.array([shannon_entropy(row) for row in full])
    return volatility


def overlap_statistics(
    distributions: Sequence[ScoreDistribution],
) -> Dict[str, float]:
    """Workload-level overlap summary (pre-TPO uncertainty forecast)."""
    overlap = overlap_matrix(distributions)
    n = len(distributions)
    pairs = n * (n - 1) / 2
    overlapping = float(np.triu(overlap, k=1).sum())
    degrees = overlap.sum(axis=1)
    return {
        "tuples": float(n),
        "overlapping_pairs": overlapping,
        "overlap_fraction": overlapping / pairs if pairs else 0.0,
        "max_overlap_degree": float(degrees.max(initial=0.0)),
        "mean_overlap_degree": float(degrees.mean()) if n else 0.0,
    }


__all__ = [
    "SpaceProfile",
    "profile_space",
    "question_impact_table",
    "tuple_volatility",
    "overlap_statistics",
]
