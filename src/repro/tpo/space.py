"""The space of possible orderings as a flat, vectorized leaf table.

Question-selection policies evaluate thousands of hypothetical prunings per
selected question; walking a pointer-based tree for each would dominate the
run time.  :class:`OrderingSpace` therefore flattens a TPO into

* ``paths``  — an ``(L, K)`` integer matrix, row = one possible top-K prefix
  ranking (best rank first), and
* ``probabilities`` — the ``(L,)`` leaf probability vector,

so that answer agreement, pruning, Bayesian reweighting, and uncertainty
evaluation are all numpy array operations.  Spaces are immutable: every
update returns a new space (the arrays are shared where possible).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_fraction


class DegenerateSpaceError(ValueError):
    """Raised when conditioning would leave an empty ordering space."""


class OrderingSpace:
    """A weighted set of possible top-K prefix orderings.

    Parameters
    ----------
    paths:
        ``(L, K)`` array of tuple indices; row = ordering, best rank first.
    probabilities:
        ``(L,)`` non-negative weights; normalized on construction.
    n_tuples:
        Size of the tuple universe (indices in ``paths`` are < ``n_tuples``).
    """

    __slots__ = ("paths", "probabilities", "n_tuples", "_positions")

    def __init__(
        self,
        paths: np.ndarray,
        probabilities: np.ndarray,
        n_tuples: int,
    ) -> None:
        paths = np.asarray(paths, dtype=np.int32)
        if paths.ndim != 2:
            raise ValueError(f"paths must be 2-D, got shape {paths.shape}")
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (paths.shape[0],):
            raise ValueError(
                f"probabilities shape {probabilities.shape} does not match "
                f"{paths.shape[0]} paths"
            )
        if paths.shape[0] == 0:
            raise DegenerateSpaceError("ordering space has no paths")
        if np.any(probabilities < 0):
            raise ValueError("probabilities must be non-negative")
        total = probabilities.sum()
        if total <= 0:
            raise DegenerateSpaceError("ordering space has zero total mass")
        self.paths = paths
        self.probabilities = probabilities / total
        self.n_tuples = int(n_tuples)
        self._positions: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Shape & views
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of possible orderings (leaves)."""
        return self.paths.shape[0]

    @property
    def depth(self) -> int:
        """Prefix length K of every ordering."""
        return self.paths.shape[1]

    @property
    def is_certain(self) -> bool:
        """True when a single ordering remains."""
        return self.size == 1

    def positions(self) -> np.ndarray:
        """``(L, N)`` rank of each tuple per path; ``depth`` marks "absent".

        The sentinel equals :attr:`depth`, i.e. absent tuples are treated
        as ranked strictly below every present tuple — exactly the
        semantics of a top-K prefix.
        """
        if self._positions is None:
            length, depth = self.paths.shape
            positions = np.full((length, self.n_tuples), depth, dtype=np.int32)
            rows = np.repeat(np.arange(length), depth)
            positions[rows, self.paths.ravel()] = np.tile(
                np.arange(depth), length
            )
            self._positions = positions
        return self._positions

    def present_tuples(self) -> np.ndarray:
        """Sorted indices of tuples appearing in at least one ordering."""
        return np.unique(self.paths)

    # ------------------------------------------------------------------
    # Question semantics
    # ------------------------------------------------------------------

    def agreement_codes(self, i: int, j: int) -> np.ndarray:
        """Per-path stance on the claim ``t_i ≺ t_j`` (ranked higher).

        Returns an ``(L,)`` int8 array: ``+1`` the path implies
        ``t_i ≺ t_j``; ``-1`` it implies ``t_j ≺ t_i``; ``0`` undetermined
        (neither tuple in the prefix).
        """
        pos = self.positions()
        pi, pj = pos[:, i], pos[:, j]
        return np.where(pi < pj, 1, np.where(pj < pi, -1, 0)).astype(np.int8)

    def answer_probability(self, i: int, j: int) -> float:
        """``Pr(t_i ≺ t_j)`` under the space's own distribution.

        Defined over the decisive paths only and renormalized; if no path
        is decisive the answer is uninformative and 0.5 is returned.
        """
        codes = self.agreement_codes(i, j)
        yes = float(self.probabilities[codes == 1].sum())
        no = float(self.probabilities[codes == -1].sum())
        if yes + no <= 0:
            return 0.5
        return yes / (yes + no)

    def condition(self, i: int, j: int, holds: bool) -> "OrderingSpace":
        """Prune paths disagreeing with the answer to ``t_i ?≺ t_j``.

        ``holds=True`` keeps paths consistent with ``t_i ≺ t_j`` (including
        undetermined ones) and renormalizes — the paper's pruning step for
        reliable workers.  Raises :class:`DegenerateSpaceError` when the
        answer contradicts every remaining ordering.
        """
        codes = self.agreement_codes(i, j)
        forbidden = -1 if holds else 1
        keep = codes != forbidden
        if not np.any(keep):
            raise DegenerateSpaceError(
                f"answer t{i} {'≺' if holds else '⊀'} t{j} contradicts all orderings"
            )
        return self.restrict(keep)

    def reweight_by_answer(
        self, i: int, j: int, holds: bool, accuracy: float
    ) -> "OrderingSpace":
        """Bayesian update for a noisy answer with worker ``accuracy``.

        Paths agreeing with the reported answer are scaled by ``accuracy``,
        disagreeing ones by ``1 − accuracy``, undetermined ones by ``0.5``
        (the answer carries no evidence about them); the result is
        renormalized.  With ``accuracy == 1`` this degenerates to
        :meth:`condition`.
        """
        check_fraction("accuracy", accuracy)
        codes = self.agreement_codes(i, j)
        agree_value = 1 if holds else -1
        weights = np.where(
            codes == agree_value,
            accuracy,
            np.where(codes == 0, 0.5, 1.0 - accuracy),
        )
        return self.reweight(weights)

    # ------------------------------------------------------------------
    # Generic updates
    # ------------------------------------------------------------------

    def restrict(self, keep: np.ndarray) -> "OrderingSpace":
        """Sub-space of the paths selected by boolean mask ``keep``."""
        keep = np.asarray(keep, dtype=bool)
        if keep.all():
            return self
        return OrderingSpace(
            self.paths[keep], self.probabilities[keep], self.n_tuples
        )

    def reweight(self, weights: np.ndarray) -> "OrderingSpace":
        """Multiply path masses by ``weights`` and renormalize."""
        weights = np.asarray(weights, dtype=float)
        updated = self.probabilities * weights
        total = updated.sum()
        if total <= 0:
            raise DegenerateSpaceError("reweighting removed all mass")
        return OrderingSpace(self.paths, updated, self.n_tuples)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def prefix_groups(self, depth: int) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate path mass by length-``depth`` prefix.

        Returns ``(prefixes, masses)`` where ``prefixes`` is ``(G, depth)``
        and ``masses`` sums to 1.  Used by the per-level entropy measure.
        """
        if not 1 <= depth <= self.depth:
            raise ValueError(
                f"depth must lie in [1, {self.depth}], got {depth}"
            )
        prefixes, inverse = np.unique(
            self.paths[:, :depth], axis=0, return_inverse=True
        )
        masses = np.bincount(inverse, weights=self.probabilities)
        return prefixes, masses

    def most_probable_ordering(self) -> np.ndarray:
        """The single most probable top-K prefix (the paper's MPO)."""
        return self.paths[int(np.argmax(self.probabilities))].copy()

    def rank_marginals(self) -> np.ndarray:
        """``(N, K)`` matrix of ``Pr(tuple i occupies rank k)``."""
        marginals = np.zeros((self.n_tuples, self.depth))
        for rank in range(self.depth):
            np.add.at(
                marginals[:, rank], self.paths[:, rank], self.probabilities
            )
        return marginals

    def pairwise_preference(self) -> np.ndarray:
        """``(N, N)`` matrix ``W[i, j] = Pr(t_i ≺ t_j)`` over the space.

        Undetermined paths split their mass evenly between the two orders,
        so ``W + Wᵀ = 1`` off the diagonal.  This is the weighted tournament
        the Optimal Rank Aggregation is computed from.
        """
        pos = self.positions().astype(np.int64)
        n = self.n_tuples
        w = np.zeros((n, n))
        p = self.probabilities
        less = pos[:, :, None] < pos[:, None, :]
        equal = pos[:, :, None] == pos[:, None, :]
        w = np.einsum("l,lij->ij", p, less.astype(float))
        w += 0.5 * np.einsum("l,lij->ij", p, equal.astype(float))
        np.fill_diagonal(w, 0.0)
        return w

    def sample_ordering(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one ordering according to the space's distribution."""
        index = rng.choice(self.size, p=self.probabilities)
        return self.paths[index].copy()

    def top_orderings(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ``count`` most probable orderings and their masses."""
        order = np.argsort(self.probabilities)[::-1][:count]
        return self.paths[order].copy(), self.probabilities[order].copy()

    # ------------------------------------------------------------------

    @classmethod
    def from_orderings(
        cls,
        orderings: Iterable[Sequence[int]],
        probabilities: Sequence[float],
        n_tuples: int,
    ) -> "OrderingSpace":
        """Build a space from explicit orderings (mostly for tests)."""
        paths = np.asarray(list(orderings), dtype=np.int32)
        if paths.ndim == 1:
            paths = paths.reshape(1, -1)
        return cls(paths, np.asarray(probabilities, dtype=float), n_tuples)

    def __repr__(self) -> str:
        return (
            f"OrderingSpace(orderings={self.size}, depth={self.depth}, "
            f"tuples={self.n_tuples})"
        )


__all__ = ["OrderingSpace", "DegenerateSpaceError"]
