"""The space of possible orderings as a flat, vectorized leaf table.

Question-selection policies evaluate thousands of hypothetical prunings per
selected question; walking a pointer-based tree for each would dominate the
run time.  :class:`OrderingSpace` therefore flattens a TPO into

* ``paths``  — an ``(L, K)`` integer matrix, row = one possible top-K prefix
  ranking (best rank first), and
* ``probabilities`` — the ``(L,)`` leaf probability vector,

so that answer agreement, pruning, Bayesian reweighting, and uncertainty
evaluation are all numpy array operations.  Spaces are immutable: every
update returns a new space (the arrays are shared where possible).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_fraction


class DegenerateSpaceError(ValueError):
    """Raised when conditioning would leave an empty ordering space."""


def conditioned_lost_mass(lost: float, kept: float) -> float:
    """Worst-case lost-mass bound after conditioning on retained mass.

    Of the true distribution, a ``1 − lost`` fraction is represented and
    a ``kept`` fraction of *that* survives the conditioning event; the
    unrepresented remainder may be entirely consistent with the evidence,
    so its conditional share is at most
    ``lost / (lost + (1 − lost) · kept)``.
    """
    if lost <= 0.0:
        return 0.0
    if lost >= 1.0:
        return 1.0
    denominator = lost + (1.0 - lost) * max(float(kept), 0.0)
    if denominator <= 0.0:
        return 1.0
    return min(1.0, lost / denominator)


class OrderingSpace:
    """A weighted set of possible top-K prefix orderings.

    Parameters
    ----------
    paths:
        ``(L, K)`` array of tuple indices; row = ordering, best rank first.
    probabilities:
        ``(L,)`` non-negative weights; normalized on construction.
    n_tuples:
        Size of the tuple universe (indices in ``paths`` are < ``n_tuples``).
    lost_mass:
        Certified upper bound on the fraction of the true ordering mass
        an anytime beam dropped during construction (0.0 = exact).  The
        stored ``probabilities`` are then the true distribution
        *conditioned on* the retained orderings.
    lost_leaves:
        Upper bound on how many orderings the dropped mass is spread
        over (feeds the entropy interval's support term).
    """

    __slots__ = (
        "paths",
        "probabilities",
        "n_tuples",
        "lost_mass",
        "lost_leaves",
        "_positions",
        "_prefix_index",
        "__weakref__",
    )

    def __init__(
        self,
        paths: np.ndarray,
        probabilities: np.ndarray,
        n_tuples: int,
        lost_mass: float = 0.0,
        lost_leaves: float = 0.0,
    ) -> None:
        paths = np.asarray(paths, dtype=np.int32)
        if paths.ndim != 2:
            raise ValueError(f"paths must be 2-D, got shape {paths.shape}")
        probabilities = np.asarray(probabilities, dtype=float)
        if probabilities.shape != (paths.shape[0],):
            raise ValueError(
                f"probabilities shape {probabilities.shape} does not match "
                f"{paths.shape[0]} paths"
            )
        if paths.shape[0] == 0:
            raise DegenerateSpaceError("ordering space has no paths")
        if np.any(probabilities < 0):
            raise ValueError("probabilities must be non-negative")
        total = probabilities.sum()
        if total <= 0:
            raise DegenerateSpaceError("ordering space has zero total mass")
        if not 0.0 <= lost_mass <= 1.0:
            raise ValueError(f"lost_mass must lie in [0, 1], got {lost_mass}")
        if lost_leaves < 0.0:
            raise ValueError(f"lost_leaves must be >= 0, got {lost_leaves}")
        self.paths = paths
        self.probabilities = probabilities / total
        self.n_tuples = int(n_tuples)
        self.lost_mass = float(lost_mass)
        self.lost_leaves = float(lost_leaves)
        self._positions: Optional[np.ndarray] = None
        #: depth → (order, starts) segment index of the prefix groups.
        self._prefix_index: dict = {}

    # ------------------------------------------------------------------
    # Shape & views
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of possible orderings (leaves)."""
        return self.paths.shape[0]

    @property
    def depth(self) -> int:
        """Prefix length K of every ordering."""
        return self.paths.shape[1]

    @property
    def is_certain(self) -> bool:
        """True when a single ordering remains."""
        return self.size == 1

    @property
    def is_approximate(self) -> bool:
        """True when an anytime beam dropped mass during construction."""
        return self.lost_mass > 0.0

    def positions(self) -> np.ndarray:
        """``(L, N)`` rank of each tuple per path; ``depth`` marks "absent".

        The sentinel equals :attr:`depth`, i.e. absent tuples are treated
        as ranked strictly below every present tuple — exactly the
        semantics of a top-K prefix.
        """
        if self._positions is None:
            length, depth = self.paths.shape
            positions = np.full((length, self.n_tuples), depth, dtype=np.int32)
            rows = np.repeat(np.arange(length), depth)
            positions[rows, self.paths.ravel()] = np.tile(
                np.arange(depth), length
            )
            self._positions = positions
        return self._positions

    def present_tuples(self) -> np.ndarray:
        """Sorted indices of tuples appearing in at least one ordering."""
        return np.unique(self.paths)

    # ------------------------------------------------------------------
    # Question semantics
    # ------------------------------------------------------------------

    def agreement_codes(self, i: int, j: int) -> np.ndarray:
        """Per-path stance on the claim ``t_i ≺ t_j`` (ranked higher).

        Returns an ``(L,)`` int8 array: ``+1`` the path implies
        ``t_i ≺ t_j``; ``-1`` it implies ``t_j ≺ t_i``; ``0`` undetermined
        (neither tuple in the prefix).
        """
        pos = self.positions()
        pi, pj = pos[:, i], pos[:, j]
        return np.where(pi < pj, 1, np.where(pj < pi, -1, 0)).astype(np.int8)

    def stance_matrix(
        self, i_indices: Sequence[int], j_indices: Sequence[int]
    ) -> np.ndarray:
        """Stances of every path on ``B`` pairs in one shot.

        Vectorized generalization of :meth:`agreement_codes`: given aligned
        index vectors ``i_indices``/``j_indices`` of length ``B``, returns
        the ``(L, B)`` int8 matrix whose column ``b`` equals
        ``agreement_codes(i_indices[b], j_indices[b])``.  This is the
        primitive the batched residual evaluator builds on — one
        :meth:`positions` lookup instead of ``B`` separate calls.
        """
        pos = self.positions()
        i_indices = np.asarray(i_indices, dtype=np.intp)
        j_indices = np.asarray(j_indices, dtype=np.intp)
        if i_indices.shape != j_indices.shape or i_indices.ndim != 1:
            raise ValueError("i_indices and j_indices must be aligned 1-D")
        pi = pos[:, i_indices]
        pj = pos[:, j_indices]
        return np.where(pi < pj, 1, np.where(pj < pi, -1, 0)).astype(np.int8)

    def answer_probability(self, i: int, j: int) -> float:
        """``Pr(t_i ≺ t_j)`` under the space's own distribution.

        Defined over the decisive paths only and renormalized; if no path
        is decisive the answer is uninformative and 0.5 is returned.
        """
        codes = self.agreement_codes(i, j)
        yes = float(self.probabilities[codes == 1].sum())
        no = float(self.probabilities[codes == -1].sum())
        if yes + no <= 0:
            return 0.5
        return yes / (yes + no)

    def condition(self, i: int, j: int, holds: bool) -> "OrderingSpace":
        """Prune paths disagreeing with the answer to ``t_i ?≺ t_j``.

        ``holds=True`` keeps paths consistent with ``t_i ≺ t_j`` (including
        undetermined ones) and renormalizes — the paper's pruning step for
        reliable workers.  Raises :class:`DegenerateSpaceError` when the
        answer contradicts every remaining ordering.
        """
        codes = self.agreement_codes(i, j)
        forbidden = -1 if holds else 1
        keep = codes != forbidden
        if not np.any(keep):
            raise DegenerateSpaceError(
                f"answer t{i} {'≺' if holds else '⊀'} t{j} contradicts all orderings"
            )
        return self.restrict(keep)

    def reweight_by_answer(
        self, i: int, j: int, holds: bool, accuracy: float
    ) -> "OrderingSpace":
        """Bayesian update for a noisy answer with worker ``accuracy``.

        Paths agreeing with the reported answer are scaled by ``accuracy``,
        disagreeing ones by ``1 − accuracy``, undetermined ones by ``0.5``
        (the answer carries no evidence about them); the result is
        renormalized.  With ``accuracy == 1`` this degenerates to
        :meth:`condition`.
        """
        check_fraction("accuracy", accuracy)
        codes = self.agreement_codes(i, j)
        agree_value = 1 if holds else -1
        weights = np.where(
            codes == agree_value,
            accuracy,
            np.where(codes == 0, 0.5, 1.0 - accuracy),
        )
        return self.reweight(
            weights, lost_weight_bound=max(accuracy, 1.0 - accuracy)
        )

    # ------------------------------------------------------------------
    # Generic updates
    # ------------------------------------------------------------------

    def restrict(self, keep: np.ndarray) -> "OrderingSpace":
        """Sub-space of the paths selected by boolean mask ``keep``.

        An already-computed positions matrix is sliced into the child
        (its rows depend on each path alone), so pruning never forces a
        from-scratch ``(L, N)`` rebuild.  The prefix-group index cannot
        carry over — dropping rows changes the grouping.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.all():
            return self
        child = OrderingSpace(
            self.paths[keep],
            self.probabilities[keep],
            self.n_tuples,
            lost_mass=conditioned_lost_mass(
                self.lost_mass, float(self.probabilities[keep].sum())
            ),
            lost_leaves=self.lost_leaves,
        )
        if self._positions is not None:
            child._positions = self._positions[keep]
        return child

    def reweight(
        self,
        weights: np.ndarray,
        lost_weight_bound: Optional[float] = None,
    ) -> "OrderingSpace":
        """Multiply path masses by ``weights`` and renormalize.

        ``lost_weight_bound`` caps the weight any beam-dropped (absent)
        ordering could have received; without it the maximum retained
        weight is used, which is only sound when the weighting rule
        cannot favour an absent path over every present one.

        The child shares this space's ``paths`` array, so the positions
        matrix and the prefix-group index — both functions of the paths
        alone — carry over instead of being silently dropped (rebuilding
        the ``(L, N)`` positions matrix after every noisy answer used to
        dominate noisy-worker sessions).  The index dict is shared, so a
        depth computed lazily by either space serves both.
        """
        weights = np.asarray(weights, dtype=float)
        updated = self.probabilities * weights
        total = updated.sum()
        if total <= 0:
            raise DegenerateSpaceError("reweighting removed all mass")
        lost = self.lost_mass
        if lost > 0.0:
            # Worst case the unrepresented mass carried the largest weight.
            w_max = (
                float(lost_weight_bound)
                if lost_weight_bound is not None
                else float(weights.max())
            )
            if w_max > 0.0:
                lost = conditioned_lost_mass(lost, float(total) / w_max)
        child = OrderingSpace(
            self.paths,
            updated,
            self.n_tuples,
            lost_mass=lost,
            lost_leaves=self.lost_leaves,
        )
        child._positions = self._positions
        child._prefix_index = self._prefix_index
        return child

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def prefix_groups(self, depth: int) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate path mass by length-``depth`` prefix.

        Returns ``(prefixes, masses)`` where ``prefixes`` is ``(G, depth)``
        and ``masses`` sums to 1.  Used by the per-level entropy measure.
        """
        if not 1 <= depth <= self.depth:
            raise ValueError(
                f"depth must lie in [1, {self.depth}], got {depth}"
            )
        prefixes, inverse = np.unique(
            self.paths[:, :depth], axis=0, return_inverse=True
        )
        masses = np.bincount(inverse, weights=self.probabilities)
        return prefixes, masses

    def prefix_group_index(self, depth: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cached segment index of the length-``depth`` prefix groups.

        Returns ``(order, starts)`` such that ``values[order]`` sorted by
        group can be segment-summed with ``np.add.reduceat(…, starts)``.
        Depends only on the immutable path table, so batched evaluators
        that regroup many hypothetical posteriors per space (e.g. the
        weighted-entropy measure) compute it once per depth.
        """
        cached = self._prefix_index.get(depth)
        if cached is None:
            if not 1 <= depth <= self.depth:
                raise ValueError(
                    f"depth must lie in [1, {self.depth}], got {depth}"
                )
            _, inverse = np.unique(
                self.paths[:, :depth], axis=0, return_inverse=True
            )
            inverse = inverse.ravel()
            order = np.argsort(inverse, kind="stable")
            starts = np.flatnonzero(
                np.diff(inverse[order], prepend=inverse[order[0]] - 1)
            )
            cached = (order, starts)
            self._prefix_index[depth] = cached
        return cached

    def most_probable_ordering(self) -> np.ndarray:
        """The single most probable top-K prefix (the paper's MPO).

        Ties on the maximal mass resolve to the lexicographically
        smallest path — the same deterministic policy as
        :meth:`top_orderings`, so the MPO is stable across platforms and
        numpy versions.
        """
        probabilities = self.probabilities
        ties = np.flatnonzero(probabilities == probabilities.max())
        if ties.size == 1:
            return self.paths[ties[0]].copy()
        tied_paths = self.paths[ties]
        first = np.lexsort(tuple(tied_paths.T[::-1]))[0]
        return tied_paths[first].copy()

    def rank_marginals(self) -> np.ndarray:
        """``(N, K)`` matrix of ``Pr(tuple i occupies rank k)``."""
        marginals = np.zeros((self.n_tuples, self.depth), dtype=np.float64)
        for rank in range(self.depth):
            np.add.at(
                marginals[:, rank], self.paths[:, rank], self.probabilities
            )
        return marginals

    def pairwise_order_masses(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-pair order and co-absence masses, accumulated over ranks.

        Returns two ``(N, N)`` arrays ``(less, both_absent)`` where
        ``less[i, j] = Pr(pos(t_i) < pos(t_j))`` (strictly ranked higher,
        counting "present beats absent") and ``both_absent[i, j]`` is the
        mass of paths containing neither tuple — the only way two distinct
        tuples share a position under the top-K prefix semantics.

        Accumulates rank-pair counts with ``bincount`` over the ``(L, K)``
        path table, so peak memory is ``O(L·N + N²)`` rather than the
        ``O(L·N²)`` of a dense per-path stance tensor — the blow-up that
        made the ORA objective unusable at large ``L``.
        """
        n = self.n_tuples
        p = self.probabilities
        paths = self.paths.astype(np.int64)
        flat_bins = n * n
        strict = np.zeros(flat_bins, dtype=np.float64)
        present_mass = np.zeros(n, dtype=np.float64)
        for r in range(self.depth):
            present_mass += np.bincount(paths[:, r], weights=p, minlength=n)
            for s in range(r + 1, self.depth):
                strict += np.bincount(
                    paths[:, r] * n + paths[:, s], weights=p, minlength=flat_bins
                )
        strict = strict.reshape(n, n)
        # The below-rank counts are exactly the transpose of the above-rank
        # counts, so co-presence needs no second bincount pass.
        both_present = strict + strict.T
        # present-i over absent-j, by inclusion–exclusion over presence.
        less = strict + present_mass[:, None] - both_present
        both_absent = (
            1.0 - present_mass[:, None] - present_mass[None, :] + both_present
        )
        np.clip(less, 0.0, 1.0, out=less)
        np.clip(both_absent, 0.0, 1.0, out=both_absent)
        np.fill_diagonal(less, 0.0)
        np.fill_diagonal(both_absent, 0.0)
        return less, both_absent

    def pairwise_preference(self) -> np.ndarray:
        """``(N, N)`` matrix ``W[i, j] = Pr(t_i ≺ t_j)`` over the space.

        Undetermined paths split their mass evenly between the two orders,
        so ``W + Wᵀ = 1`` off the diagonal.  This is the weighted tournament
        the Optimal Rank Aggregation is computed from.  Computed via
        :meth:`pairwise_order_masses` (no ``(L, N, N)`` intermediate).
        """
        less, both_absent = self.pairwise_order_masses()
        w = less + 0.5 * both_absent
        np.fill_diagonal(w, 0.0)
        return w

    def sample_ordering(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one ordering according to the space's distribution."""
        index = rng.choice(self.size, p=self.probabilities)
        return self.paths[index].copy()

    def top_orderings(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ``count`` most probable orderings and their masses.

        Sorted by descending mass with equal-mass orderings in ascending
        path (lexicographic) order — a deterministic total order, unlike
        the reversed unstable argsort it replaces, whose tie order
        depended on the platform's quicksort.  Mirrors the stable-tie
        policy of :mod:`repro.uncertainty.representative`.
        """
        keys = tuple(self.paths.T[::-1]) + (-self.probabilities,)
        order = np.lexsort(keys)[:count]
        return self.paths[order].copy(), self.probabilities[order].copy()

    # ------------------------------------------------------------------

    @classmethod
    def from_orderings(
        cls,
        orderings: Iterable[Sequence[int]],
        probabilities: Sequence[float],
        n_tuples: int,
    ) -> "OrderingSpace":
        """Build a space from explicit orderings (mostly for tests)."""
        paths = np.asarray(list(orderings), dtype=np.int32)
        if paths.ndim == 1:
            paths = paths.reshape(1, -1)
        return cls(paths, np.asarray(probabilities, dtype=float), n_tuples)

    def __repr__(self) -> str:
        return (
            f"OrderingSpace(orderings={self.size}, depth={self.depth}, "
            f"tuples={self.n_tuples})"
        )


__all__ = ["OrderingSpace", "DegenerateSpaceError", "conditioned_lost_mass"]
