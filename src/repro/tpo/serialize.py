"""TPO serialization: JSON-friendly dicts, binary npz, and DOT export.

The dict form round-trips a built tree (structure + probabilities, not the
engine caches); the DOT form is for eyeballing small trees, mirroring the
figures of Soliman & Ilyas.

The JSON wire format is unchanged from the pointer-tree era — a nested
``{"tuple", "p", "children"}`` payload — so cached artifacts and service
event logs replay byte-identically across the flat level-table refactor.
Internally, serialization converts directly between that nesting and the
flat ``(tuple_ids, parent_idx, probs)`` level tables: ``tree_to_dict``
links per-level dict rows through ``parent_idx`` (no recursion), and
``tree_from_dict`` flattens the payload one breadth-first level at a
time, which preserves the parent-major row order the tree requires.

Alongside the JSON wire dict there is a **binary** form for the
cross-process cold tier (:mod:`repro.service.store`):
:func:`tree_to_npz` / :func:`tree_from_npz` store the level tables
verbatim — per-level ``tuple_ids`` (int32), ``parent_idx`` (int64), and
``probs`` (float64) arrays in one uncompressed ``.npz`` archive — so a
TPO built by one worker process is shared with the others without
re-building or re-parsing JSON.  Three properties the store relies on:

* **leaf-order identity** — rows round-trip in place, so the rebuilt
  tree's leaf order (and therefore every derived space) is identical to
  the source tree's, exactly like the JSON path;
* **atomic writes** — :func:`tree_to_npz` writes to a same-directory
  temporary file, fsyncs, and ``os.replace``\\ s it into place, so a
  reader never observes a half-written archive at the final path (the
  event-log tmp+rename discipline);
* **torn-file tolerance** — a truncated or corrupt archive (a crash
  between a non-atomic copy, a torn scp) raises
  :class:`TPOSerializationError` rather than a random numpy/zipfile
  error, so callers can treat it as a cache miss and rebuild.

Because ``np.savez`` stores members uncompressed (``ZIP_STORED``), each
member is a contiguous, well-aligned ``.npy`` byte range inside the
archive — :func:`tree_from_npz` exploits that to **memory-map** the level
tables straight out of the file (``mmap=True``, the default), so N worker
processes loading the same cached TPO share one set of physical pages
instead of N heap copies.
"""

from __future__ import annotations

import io
import os
import tempfile
import zipfile
from pathlib import Path
from typing import BinaryIO, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.distributions.base import ScoreDistribution
from repro.tpo.node import TPONodeView
from repro.tpo.tree import TPOTree

#: Version stamp of the binary level-table layout (bump on layout change).
NPZ_FORMAT_VERSION = 1

#: Anything :class:`pathlib.Path` accepts.
PathLike = Union[str, Path]


class TPOSerializationError(ValueError):
    """A serialized TPO payload that cannot be decoded.

    Raised for truncated/corrupt npz archives and structurally invalid
    level tables, so the cold store can treat damage as a miss instead of
    crashing on a raw ``zipfile``/``numpy`` error.
    """


def tree_to_dict(tree: TPOTree) -> Dict:
    """Serialize structure and probabilities to plain Python data."""
    root: Dict = {"tuple": -1, "p": 1.0, "children": []}
    parent_rows: List[Dict] = [root]
    for level in tree.levels:
        rows = [
            {"tuple": int(t), "p": float(p), "children": []}
            for t, p in zip(level.tuple_ids, level.probs, strict=True)
        ]
        for row, parent in zip(rows, level.parent_idx, strict=True):
            parent_rows[parent]["children"].append(row)
        parent_rows = rows
    payload = {
        "k": tree.k,
        "n_tuples": tree.n_tuples,
        "built_depth": tree.built_depth,
        "root": root,
    }
    if tree.lost_mass > 0.0:
        # Only beam-approximate trees carry the block, so exact-mode
        # payloads (and their cached/logged JSON bytes) are unchanged.
        payload["approximation"] = {
            "lost_mass": float(tree.lost_mass),
            "lost_node_max": float(tree.lost_node_max),
            "lost_leaves": float(tree.lost_leaves),
            "level_lost": [float(value) for value in tree.level_lost],
        }
    return payload


def tree_from_dict(
    data: Dict, distributions: Sequence[ScoreDistribution]
) -> TPOTree:
    """Rebuild a tree from :func:`tree_to_dict` output.

    ``distributions`` must be the same family used when serializing (the
    dict stores only indices).  Engine caches are not restored, so the tree
    can be inspected and pruned but not extended.
    """
    tree = TPOTree(distributions, data["k"])
    frontier = data["root"]["children"]
    parent_of = [0] * len(frontier)
    while frontier:
        tree.append_level(
            np.array([row["tuple"] for row in frontier], dtype=np.int32),
            np.array(parent_of, dtype=np.intp),
            np.array([row["p"] for row in frontier], dtype=float),
        )
        next_frontier: List[Dict] = []
        next_parent: List[int] = []
        for index, row in enumerate(frontier):
            for child in row["children"]:
                next_frontier.append(child)
                next_parent.append(index)
        frontier, parent_of = next_frontier, next_parent
    if tree.built_depth != data["built_depth"]:
        raise ValueError(
            f"serialized built_depth {data['built_depth']} does not match "
            f"the {tree.built_depth} materialized level(s)"
        )
    approximation = data.get("approximation")
    if approximation:
        _restore_loss(
            tree,
            float(approximation["lost_mass"]),
            float(approximation.get("lost_node_max", 0.0)),
            float(approximation.get("lost_leaves", 0.0)),
            [float(v) for v in approximation.get("level_lost", [])],
        )
    return tree


def _restore_loss(
    tree: TPOTree,
    lost_mass: float,
    lost_node_max: float,
    lost_leaves: float,
    level_lost: Sequence[float],
) -> None:
    """Reattach deserialized beam-loss bookkeeping to a rebuilt tree."""
    if level_lost and len(level_lost) != tree.built_depth:
        raise TPOSerializationError(
            f"level_lost has {len(level_lost)} entries for "
            f"{tree.built_depth} level(s)"
        )
    tree.lost_mass = lost_mass
    tree.lost_node_max = lost_node_max
    tree.lost_leaves = lost_leaves
    if level_lost:
        tree.level_lost = list(level_lost)


# ----------------------------------------------------------------------
# Binary (npz) level-table serialization
# ----------------------------------------------------------------------


def _npz_payload(tree: TPOTree) -> Dict[str, np.ndarray]:
    """The named arrays of the binary form (level tables + metadata)."""
    payload: Dict[str, np.ndarray] = {
        "meta": np.array(
            [NPZ_FORMAT_VERSION, tree.k, tree.n_tuples, tree.built_depth],
            dtype=np.int64,
        )
    }
    for depth, level in enumerate(tree.levels, start=1):
        payload[f"level{depth}_tuple_ids"] = np.ascontiguousarray(
            level.tuple_ids, dtype=np.int32
        )
        # intp is stored widened to int64 so 32- and 64-bit readers agree
        # on the byte layout; append_level narrows it back on load.
        payload[f"level{depth}_parent_idx"] = np.ascontiguousarray(
            level.parent_idx, dtype=np.int64
        )
        payload[f"level{depth}_probs"] = np.ascontiguousarray(
            level.probs, dtype=np.float64
        )
    if tree.lost_mass > 0.0:
        # Optional members, written only for beam-approximate trees —
        # exact-mode archives stay byte-identical (same version, same
        # member list) and old readers of exact archives are unaffected.
        payload["lost"] = np.array(
            [tree.lost_mass, tree.lost_node_max, tree.lost_leaves],
            dtype=np.float64,
        )
        payload["level_lost"] = np.asarray(
            tree.level_lost, dtype=np.float64
        )
    return payload


def _tree_from_arrays(
    fetch: Callable[[str], np.ndarray],
    distributions: Sequence[ScoreDistribution],
) -> TPOTree:
    """Rebuild a tree from named arrays (shared npz/memmap decode path)."""
    try:
        meta = np.asarray(fetch("meta"), dtype=np.int64).reshape(-1)
        if meta.size != 4:
            raise TPOSerializationError(
                f"npz meta must have 4 fields, got {meta.size}"
            )
        version, k, n_tuples, built_depth = (int(value) for value in meta)
        if version != NPZ_FORMAT_VERSION:
            raise TPOSerializationError(
                f"unsupported npz format version {version} "
                f"(this build reads {NPZ_FORMAT_VERSION})"
            )
        if n_tuples != len(distributions):
            raise TPOSerializationError(
                f"npz payload describes {n_tuples} tuples but "
                f"{len(distributions)} distributions were supplied"
            )
        tree = TPOTree(distributions, k)
        for depth in range(1, built_depth + 1):
            tree.append_level(
                fetch(f"level{depth}_tuple_ids"),
                fetch(f"level{depth}_parent_idx"),
                fetch(f"level{depth}_probs"),
            )
        try:
            lost = np.asarray(fetch("lost"), dtype=np.float64).reshape(-1)
        except (KeyError, TPOSerializationError):
            lost = None
        if lost is not None:
            if lost.size != 3:
                raise TPOSerializationError(
                    f"npz lost member must have 3 fields, got {lost.size}"
                )
            try:
                level_lost = np.asarray(
                    fetch("level_lost"), dtype=np.float64
                ).reshape(-1)
            except (KeyError, TPOSerializationError):
                level_lost = np.zeros(0)
            _restore_loss(
                tree,
                float(lost[0]),
                float(lost[1]),
                float(lost[2]),
                [float(v) for v in level_lost],
            )
    except TPOSerializationError:
        raise
    except (KeyError, ValueError, TypeError) as exc:
        raise TPOSerializationError(
            f"invalid TPO npz payload: {exc}"
        ) from exc
    return tree


def tree_to_npz(tree: TPOTree, path: PathLike) -> Path:
    """Atomically write the binary level-table form of ``tree`` to ``path``.

    The archive is staged in a same-directory temporary file, flushed and
    fsynced, then ``os.replace``\\ d into place — a concurrent reader sees
    either the previous content or the complete new archive, never a torn
    one.  Returns the final path.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = _npz_payload(tree)
    handle = tempfile.NamedTemporaryFile(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp", delete=False
    )
    try:
        with handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def tree_to_npz_bytes(tree: TPOTree) -> bytes:
    """The binary level-table form of ``tree`` as in-memory bytes.

    Byte-compatible with :func:`tree_to_npz` — the memory and
    shared-memory cold tiers store exactly what the disk tier would.
    """
    buffer = io.BytesIO()
    np.savez(buffer, **_npz_payload(tree))
    return buffer.getvalue()


def _load_npz_copying(
    source: Union[Path, BinaryIO],
    distributions: Sequence[ScoreDistribution],
) -> TPOTree:
    """Decode via ``np.load`` (heap copies; works for any npz source)."""
    try:
        with np.load(source, allow_pickle=False) as archive:
            return _tree_from_arrays(archive.__getitem__, distributions)
    except TPOSerializationError:
        raise
    except (OSError, EOFError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise TPOSerializationError(
            f"unreadable TPO npz archive: {exc}"
        ) from exc


def _memmap_npz_members(path: Path) -> Dict[str, np.ndarray]:
    """Memory-map every array member of an uncompressed npz archive.

    ``np.savez`` stores members with ``ZIP_STORED``, so each ``.npy``
    payload is a contiguous byte range of the archive file: seek past the
    member's local zip header, parse the npy header, and hand the
    remaining range to :class:`np.memmap`.  Raises
    :class:`TPOSerializationError` on anything unexpected (compressed
    members, truncation, foreign formats) — callers fall back to the
    copying loader or treat the file as torn.
    """
    arrays: Dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path) as archive:
            members = archive.infolist()
        with open(path, "rb") as handle:
            for member in members:
                if member.compress_type != zipfile.ZIP_STORED:
                    raise TPOSerializationError(
                        f"npz member {member.filename!r} is compressed; "
                        "cannot memory-map"
                    )
                handle.seek(member.header_offset)
                local = handle.read(30)
                if len(local) != 30 or local[:4] != b"PK\x03\x04":
                    raise TPOSerializationError(
                        f"bad local zip header for {member.filename!r}"
                    )
                name_len = int.from_bytes(local[26:28], "little")
                extra_len = int.from_bytes(local[28:30], "little")
                handle.seek(
                    member.header_offset + 30 + name_len + extra_len
                )
                version = np.lib.format.read_magic(handle)
                if version == (1, 0):
                    shape, fortran, dtype = (
                        np.lib.format.read_array_header_1_0(handle)
                    )
                elif version == (2, 0):
                    shape, fortran, dtype = (
                        np.lib.format.read_array_header_2_0(handle)
                    )
                else:
                    raise TPOSerializationError(
                        f"unsupported npy version {version} in "
                        f"{member.filename!r}"
                    )
                name = member.filename
                if name.endswith(".npy"):
                    name = name[: -len(".npy")]
                arrays[name] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=handle.tell(),
                    shape=shape,
                    order="F" if fortran else "C",
                )
    except TPOSerializationError:
        raise
    except (OSError, EOFError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise TPOSerializationError(
            f"unreadable TPO npz archive: {exc}"
        ) from exc
    return arrays


def tree_from_npz(
    path: PathLike,
    distributions: Sequence[ScoreDistribution],
    mmap: bool = True,
) -> TPOTree:
    """Rebuild a tree from a :func:`tree_to_npz` archive.

    With ``mmap=True`` (the default) the level tables are read-only
    memory maps over the archive file — concurrent processes loading the
    same cached TPO share physical pages, and nothing is copied until a
    structural update (prune/renormalize) replaces an array wholesale.
    Damaged or truncated archives raise :class:`TPOSerializationError`.

    Like :func:`tree_from_dict`, engine caches are not restored: the tree
    can be inspected, converted to a space, and pruned, but not extended.
    """
    path = Path(path)
    if mmap:
        arrays = _memmap_npz_members(path)

        def fetch(name: str) -> np.ndarray:
            if name not in arrays:
                raise TPOSerializationError(f"npz member {name!r} missing")
            return arrays[name]

        return _tree_from_arrays(fetch, distributions)
    return _load_npz_copying(path, distributions)


def tree_from_npz_bytes(
    data: bytes, distributions: Sequence[ScoreDistribution]
) -> TPOTree:
    """Rebuild a tree from :func:`tree_to_npz_bytes` output."""
    return _load_npz_copying(io.BytesIO(data), distributions)


def tree_to_dot(
    tree: TPOTree,
    labels: Optional[List[str]] = None,
    max_nodes: int = 500,
) -> str:
    """Graphviz DOT rendering (truncated after ``max_nodes`` nodes)."""
    lines = [
        "digraph TPO {",
        '  node [shape=box, fontsize=10];',
        '  root [label="⊥", shape=circle];',
    ]
    counter = 0

    def label(node: TPONodeView) -> str:
        if labels and 0 <= node.tuple_index < len(labels):
            text = labels[node.tuple_index]
        else:
            text = f"t{node.tuple_index}"
        return f"{text}\\np={node.probability:.3f}"

    stack = [(tree.root, "root")]
    while stack and counter < max_nodes:
        node, node_name = stack.pop()
        for child in node.children:
            counter += 1
            child_name = f"n{counter}"
            lines.append(f'  {child_name} [label="{label(child)}"];')
            lines.append(f"  {node_name} -> {child_name};")
            stack.append((child, child_name))
    if stack:
        lines.append('  truncated [label="…", shape=plaintext];')
    lines.append("}")
    return "\n".join(lines)


__all__ = [
    "tree_to_dict",
    "tree_from_dict",
    "tree_to_npz",
    "tree_from_npz",
    "tree_to_npz_bytes",
    "tree_from_npz_bytes",
    "tree_to_dot",
    "TPOSerializationError",
    "NPZ_FORMAT_VERSION",
]
