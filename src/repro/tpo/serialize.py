"""TPO serialization: JSON-friendly dicts and Graphviz DOT export.

The dict form round-trips a built tree (structure + probabilities, not the
engine caches); the DOT form is for eyeballing small trees, mirroring the
figures of Soliman & Ilyas.
"""

from __future__ import annotations

from typing import Dict, List

from repro.tpo.node import TPONode
from repro.tpo.tree import TPOTree


def tree_to_dict(tree: TPOTree) -> Dict:
    """Serialize structure and probabilities to plain Python data."""

    def node_to_dict(node: TPONode) -> Dict:
        return {
            "tuple": node.tuple_index,
            "p": node.probability,
            "children": [node_to_dict(c) for c in node.children],
        }

    return {
        "k": tree.k,
        "n_tuples": tree.n_tuples,
        "built_depth": tree.built_depth,
        "root": node_to_dict(tree.root),
    }


def tree_from_dict(data: Dict, distributions) -> TPOTree:
    """Rebuild a tree from :func:`tree_to_dict` output.

    ``distributions`` must be the same family used when serializing (the
    dict stores only indices).  Engine caches are not restored, so the tree
    can be inspected and pruned but not extended.
    """
    tree = TPOTree(distributions, data["k"])
    tree.built_depth = data["built_depth"]

    def attach(parent: TPONode, payload: Dict) -> None:
        child = parent.add_child(payload["tuple"], payload["p"])
        for grandchild in payload["children"]:
            attach(child, grandchild)

    root_payload = data["root"]
    tree.root.probability = root_payload["p"]
    for child_payload in root_payload["children"]:
        attach(tree.root, child_payload)
    return tree


def tree_to_dot(
    tree: TPOTree,
    labels: List[str] = None,
    max_nodes: int = 500,
) -> str:
    """Graphviz DOT rendering (truncated after ``max_nodes`` nodes)."""
    lines = [
        "digraph TPO {",
        '  node [shape=box, fontsize=10];',
        '  root [label="⊥", shape=circle];',
    ]
    counter = 0

    def name(node: TPONode, index: int) -> str:
        return "root" if node.is_root else f"n{index}"

    def label(node: TPONode) -> str:
        if labels and 0 <= node.tuple_index < len(labels):
            text = labels[node.tuple_index]
        else:
            text = f"t{node.tuple_index}"
        return f"{text}\\np={node.probability:.3f}"

    stack = [(tree.root, "root")]
    while stack and counter < max_nodes:
        node, node_name = stack.pop()
        for child in node.children:
            counter += 1
            child_name = f"n{counter}"
            lines.append(f'  {child_name} [label="{label(child)}"];')
            lines.append(f"  {node_name} -> {child_name};")
            stack.append((child, child_name))
    if stack:
        lines.append('  truncated [label="…", shape=plaintext];')
    lines.append("}")
    return "\n".join(lines)


__all__ = ["tree_to_dict", "tree_from_dict", "tree_to_dot"]
