"""TPO serialization: JSON-friendly dicts and Graphviz DOT export.

The dict form round-trips a built tree (structure + probabilities, not the
engine caches); the DOT form is for eyeballing small trees, mirroring the
figures of Soliman & Ilyas.

The wire format is unchanged from the pointer-tree era — a nested
``{"tuple", "p", "children"}`` payload — so cached artifacts and service
event logs replay byte-identically across the flat level-table refactor.
Internally, serialization converts directly between that nesting and the
flat ``(tuple_ids, parent_idx, probs)`` level tables: ``tree_to_dict``
links per-level dict rows through ``parent_idx`` (no recursion), and
``tree_from_dict`` flattens the payload one breadth-first level at a
time, which preserves the parent-major row order the tree requires.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.distributions.base import ScoreDistribution
from repro.tpo.node import TPONodeView
from repro.tpo.tree import TPOTree


def tree_to_dict(tree: TPOTree) -> Dict:
    """Serialize structure and probabilities to plain Python data."""
    root: Dict = {"tuple": -1, "p": 1.0, "children": []}
    parent_rows: List[Dict] = [root]
    for level in tree.levels:
        rows = [
            {"tuple": int(t), "p": float(p), "children": []}
            for t, p in zip(level.tuple_ids, level.probs, strict=True)
        ]
        for row, parent in zip(rows, level.parent_idx, strict=True):
            parent_rows[parent]["children"].append(row)
        parent_rows = rows
    return {
        "k": tree.k,
        "n_tuples": tree.n_tuples,
        "built_depth": tree.built_depth,
        "root": root,
    }


def tree_from_dict(
    data: Dict, distributions: Sequence[ScoreDistribution]
) -> TPOTree:
    """Rebuild a tree from :func:`tree_to_dict` output.

    ``distributions`` must be the same family used when serializing (the
    dict stores only indices).  Engine caches are not restored, so the tree
    can be inspected and pruned but not extended.
    """
    tree = TPOTree(distributions, data["k"])
    frontier = data["root"]["children"]
    parent_of = [0] * len(frontier)
    while frontier:
        tree.append_level(
            np.array([row["tuple"] for row in frontier], dtype=np.int32),
            np.array(parent_of, dtype=np.intp),
            np.array([row["p"] for row in frontier], dtype=float),
        )
        next_frontier: List[Dict] = []
        next_parent: List[int] = []
        for index, row in enumerate(frontier):
            for child in row["children"]:
                next_frontier.append(child)
                next_parent.append(index)
        frontier, parent_of = next_frontier, next_parent
    if tree.built_depth != data["built_depth"]:
        raise ValueError(
            f"serialized built_depth {data['built_depth']} does not match "
            f"the {tree.built_depth} materialized level(s)"
        )
    return tree


def tree_to_dot(
    tree: TPOTree,
    labels: Optional[List[str]] = None,
    max_nodes: int = 500,
) -> str:
    """Graphviz DOT rendering (truncated after ``max_nodes`` nodes)."""
    lines = [
        "digraph TPO {",
        '  node [shape=box, fontsize=10];',
        '  root [label="⊥", shape=circle];',
    ]
    counter = 0

    def label(node: TPONodeView) -> str:
        if labels and 0 <= node.tuple_index < len(labels):
            text = labels[node.tuple_index]
        else:
            text = f"t{node.tuple_index}"
        return f"{text}\\np={node.probability:.3f}"

    stack = [(tree.root, "root")]
    while stack and counter < max_nodes:
        node, node_name = stack.pop()
        for child in node.children:
            counter += 1
            child_name = f"n{counter}"
            lines.append(f'  {child_name} [label="{label(child)}"];')
            lines.append(f"  {node_name} -> {child_name};")
            stack.append((child, child_name))
    if stack:
        lines.append('  truncated [label="…", shape=plaintext];')
    lines.append("}")
    return "\n".join(lines)


__all__ = ["tree_to_dict", "tree_from_dict", "tree_to_dot"]
