"""The tree of possible orderings (TPO) ``T_K`` as a flat level table.

The tree is the *construction* view of the ordering space: builders grow it
level by level (which the ``incr`` algorithm exploits), structural pruning
applies crowd answers to partially built trees, and
:meth:`TPOTree.to_space` flattens the current leaves into the vectorized
:class:`~repro.tpo.space.OrderingSpace` that policies and uncertainty
measures consume.

Internally the tree is **not** a pointer structure.  Each materialized
level ``d`` is one :class:`TPOLevel` — a structure-of-arrays triple

* ``tuple_ids``  — ``(W_d,)`` int32, the tuple ranked at depth ``d``;
* ``parent_idx`` — ``(W_d,)`` intp index into level ``d − 1``
  (non-decreasing, so every node's children are a contiguous slice);
* ``probs``      — ``(W_d,)`` float64 prefix-ranking probabilities

— which makes every structural operation a handful of numpy passes:
``renormalize`` is a ``bincount`` sweep from the leaves up,
``prune_with_answer`` propagates alive/winner-seen masks down the levels,
and ``to_space`` is ``K`` vectorized gathers along the ``parent_idx``
chains (no per-leaf walk).  Builders append whole levels at once with
:meth:`append_level` and keep their per-frontier numeric payloads (prefix
densities, sample assignments) in ``engine_cache``, aligned with the top
level's row order.

The pointer-era introspection API (``root``, ``leaves``,
``nodes_at_depth``, ``iter_nodes``) survives as thin
:class:`~repro.tpo.node.TPONodeView` facades over the level tables, so
serialization, diagnostics, and tests keep working unchanged.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import ScoreDistribution
from repro.tpo.node import TPONodeView
from repro.tpo.space import (
    DegenerateSpaceError,
    OrderingSpace,
    conditioned_lost_mass,
)


class TPOLevel:
    """One materialized level of a :class:`TPOTree` (plain array triple)."""

    __slots__ = ("tuple_ids", "parent_idx", "probs")

    def __init__(
        self,
        tuple_ids: np.ndarray,
        parent_idx: np.ndarray,
        probs: np.ndarray,
    ) -> None:
        self.tuple_ids = tuple_ids
        self.parent_idx = parent_idx
        self.probs = probs

    @property
    def width(self) -> int:
        """Number of nodes in this level."""
        return self.tuple_ids.size

    def __repr__(self) -> str:
        return f"TPOLevel(width={self.width})"


class TPOTree:
    """A (possibly partially built) tree of possible orderings.

    Parameters
    ----------
    distributions:
        Score distributions of the N tuples; index = tuple identity.
    k:
        Target depth (the K of the top-K query).
    """

    def __init__(
        self, distributions: Sequence[ScoreDistribution], k: int
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not distributions:
            raise ValueError("need at least one tuple")
        self.distributions = list(distributions)
        self.k = min(k, len(self.distributions))
        #: Flat level tables; ``levels[d - 1]`` holds depth ``d``.
        self.levels: List[TPOLevel] = []
        #: Engine-managed numeric context (set by the builder in use).
        self.engine_cache = None
        #: Certified upper bound on the fraction of ordering mass dropped
        #: by an anytime beam (0.0 for exact builds).
        self.lost_mass = 0.0
        #: Per-level dropped prefix mass, aligned with ``levels``.
        self.level_lost: List[float] = []
        #: Largest single dropped node's prefix mass (bounds any one lost
        #: ordering's mass, used for modal certification).
        self.lost_node_max = 0.0
        #: Upper bound on how many orderings the dropped subtrees held.
        self.lost_leaves = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_tuples(self) -> int:
        """Universe size N."""
        return len(self.distributions)

    @property
    def built_depth(self) -> int:
        """Depth to which the tree has been materialized so far."""
        return len(self.levels)

    @property
    def is_complete(self) -> bool:
        """True once all K levels are materialized."""
        return self.built_depth >= self.k

    @property
    def is_approximate(self) -> bool:
        """True when an anytime beam dropped mass during construction."""
        return self.lost_mass > 0.0

    @property
    def root(self) -> TPONodeView:
        """View of the synthetic depth-0 root."""
        return TPONodeView(self, 0, 0)

    def iter_nodes(self) -> Iterator[TPONodeView]:
        """All nodes except the synthetic root (pre-order)."""
        for node in self.root.iter_subtree():
            if not node.is_root:
                yield node

    def nodes_at_depth(self, depth: int) -> List[TPONodeView]:
        """All nodes at exactly ``depth`` (1-based levels)."""
        if depth == 0:
            return [self.root]
        if depth > self.built_depth:
            return []
        return [
            TPONodeView(self, depth, index)
            for index in range(self.levels[depth - 1].width)
        ]

    def leaves(self) -> List[TPONodeView]:
        """Deepest materialized nodes (= paths of the current space)."""
        return self.nodes_at_depth(self.built_depth)

    def node_count(self) -> int:
        """Number of non-root nodes."""
        return sum(level.width for level in self.levels)

    def ordering_count(self) -> int:
        """Number of possible orderings currently represented."""
        if not self.levels:
            return 1  # the root alone represents the empty prefix
        return self.levels[-1].width

    def level_mass(self, depth: int) -> float:
        """Total probability mass at ``depth`` (≈1 up to numeric error)."""
        if depth == 0:
            return 1.0
        return float(self.levels[depth - 1].probs.sum())

    # ------------------------------------------------------------------
    # Level-table primitives
    # ------------------------------------------------------------------

    def append_level(
        self,
        tuple_ids: np.ndarray,
        parent_idx: np.ndarray,
        probs: np.ndarray,
    ) -> None:
        """Materialize one more level from builder output arrays.

        ``parent_idx`` must be non-decreasing (parent-major row order);
        this is what keeps every node's children a contiguous slice and
        the leaf order identical to the pointer-era depth-first layout.
        """
        tuple_ids = np.asarray(tuple_ids, dtype=np.int32).reshape(-1)
        parent_idx = np.asarray(parent_idx, dtype=np.intp).reshape(-1)
        probs = np.asarray(probs, dtype=float).reshape(-1)
        if not (tuple_ids.size == parent_idx.size == probs.size):
            raise ValueError("level arrays must be aligned")
        parent_width = self.levels[-1].width if self.levels else 1
        if parent_idx.size:
            if parent_idx.min() < 0 or parent_idx.max() >= parent_width:
                raise ValueError(
                    f"parent indices must lie in [0, {parent_width})"
                )
            if np.any(np.diff(parent_idx) < 0):
                raise ValueError("parent_idx must be non-decreasing")
        self.levels.append(TPOLevel(tuple_ids, parent_idx, probs))
        self.level_lost.append(0.0)

    def record_level_loss(
        self, mass: float, node_max: float, dropped: int
    ) -> None:
        """Record the anytime beam's certified loss for the newest level.

        ``mass`` is the exact prefix mass of the candidate children the
        beam dropped while building the level just appended.  Sibling
        masses partition their parent's mass, so the ordering mass that
        would eventually flow through a dropped node is at most that
        node's prefix mass — summing the per-level drops therefore
        certifies ``lost_mass`` as an upper bound on the total ordering
        mass missing from the materialized tree.  ``node_max`` and
        ``dropped`` feed the modal-certification and entropy-slack bounds
        of the interval-aware uncertainty measures.
        """
        if not self.levels:
            raise ValueError("no level to record loss against")
        mass = float(mass)
        if mass <= 0.0:
            return
        self.level_lost[-1] += mass
        self.lost_mass = min(1.0, self.lost_mass + mass)
        self.lost_node_max = max(self.lost_node_max, float(node_max))
        # Each dropped node at the current depth roots at most
        # prod_{t=d}^{k-1} (n - t) completions (falling factorial).
        completions = 1.0
        for taken in range(self.built_depth, self.k):
            completions *= self.n_tuples - taken
        self.lost_leaves += float(dropped) * completions

    def paths_at_depth(self, depth: int) -> np.ndarray:
        """``(W_d, depth)`` prefix matrix of every node at ``depth``.

        Reconstructed with ``depth`` vectorized gathers up the
        ``parent_idx`` chains — this is the whole former "leaf walk".
        """
        if not 1 <= depth <= self.built_depth:
            raise ValueError(
                f"depth must lie in [1, {self.built_depth}], got {depth}"
            )
        width = self.levels[depth - 1].width
        paths = np.empty((width, depth), dtype=np.int32)
        index = np.arange(width)
        for level_depth in range(depth, 0, -1):
            level = self.levels[level_depth - 1]
            paths[:, level_depth - 1] = level.tuple_ids[index]
            index = level.parent_idx[index]
        return paths

    def path_of(self, depth: int, index: int) -> np.ndarray:
        """The root-to-node prefix of one node (used by node views)."""
        path = np.empty(depth, dtype=np.int32)
        for level_depth in range(depth, 0, -1):
            level = self.levels[level_depth - 1]
            path[level_depth - 1] = level.tuple_ids[index]
            index = int(level.parent_idx[index])
        return path

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------

    def to_space(self) -> OrderingSpace:
        """Flatten the current leaf table into an :class:`OrderingSpace`."""
        if self.built_depth == 0:
            raise ValueError("tree has no materialized levels yet")
        top = self.levels[-1]
        return OrderingSpace(
            self.paths_at_depth(self.built_depth),
            top.probs.copy(),
            self.n_tuples,
            lost_mass=self.lost_mass,
            lost_leaves=self.lost_leaves,
        )

    # ------------------------------------------------------------------
    # Lazy k-best enumeration
    # ------------------------------------------------------------------

    def iter_orderings(self) -> Iterator[Tuple[np.ndarray, float]]:
        """Stream materialized orderings best-first, without a full sort.

        Yields ``(path, mass)`` pairs in exactly the deterministic order
        of :meth:`OrderingSpace.top_orderings` — descending mass, ties in
        ascending path-lexicographic order — via a priority-queue
        expansion of the level tables (the disco-dop ``lazykbest``
        pattern over a packed chart).  ``mass`` is the raw leaf mass from
        the top level table; divide by the level total for the
        normalized probabilities an :class:`OrderingSpace` reports.

        Correctness relies on keys being monotone along root-to-leaf
        chains: a node's mass never exceeds its parent's (guaranteed
        exactly once internal masses are children's sums, which
        :meth:`renormalize` enforces and every builder runs), and a
        node's path tuple lexicographically precedes its extensions.  So
        nodes pop in globally sorted order and each yielded ordering
        costs ``O(branch · log frontier)`` — no ``O(L log L)`` sort and
        no ``(L, K)`` path materialization for the leaves never reached.
        """
        if self.built_depth == 0:
            return
        # Children of node (depth, index) are the contiguous slice
        # child_starts[depth][index : index + 2] of level depth + 1
        # (parent-major order makes this a searchsorted per level).
        child_starts = [
            np.searchsorted(
                self.levels[depth].parent_idx,
                np.arange(self.levels[depth - 1].width + 1),
            )
            for depth in range(1, self.built_depth)
        ]
        top = self.built_depth
        heap: List[Tuple[float, Tuple[int, ...], int, int]] = []

        def push(depth: int, index: int, prefix: Tuple[int, ...]) -> None:
            level = self.levels[depth - 1]
            heapq.heappush(
                heap,
                (
                    -float(level.probs[index]),
                    prefix + (int(level.tuple_ids[index]),),
                    depth,
                    index,
                ),
            )

        for index in range(self.levels[0].width):
            push(1, index, ())
        while heap:
            neg_mass, prefix, depth, index = heapq.heappop(heap)
            if depth == top:
                yield np.asarray(prefix, dtype=np.int32), -neg_mass
                continue
            starts = child_starts[depth - 1]
            for child in range(starts[index], starts[index + 1]):
                push(depth + 1, child, prefix)

    def top_orderings_lazy(
        self, count: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """First ``count`` rows of ``to_space().top_orderings(count)``.

        Same arrays bit-for-bit — paths ``(c, depth)`` int32 and
        normalized probabilities ``(c,)`` — but produced lazily through
        :meth:`iter_orderings`, so only the expanded prefix chains are
        ever materialized.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if self.built_depth == 0:
            raise ValueError("tree has no materialized levels yet")
        depth = self.built_depth
        total = float(self.levels[-1].probs.sum())
        if total <= 0:
            raise DegenerateSpaceError("tree has zero mass")
        paths: List[np.ndarray] = []
        masses: List[float] = []
        if count > 0:
            for path, mass in self.iter_orderings():
                paths.append(path)
                masses.append(mass)
                if len(paths) == count:
                    break
        if not paths:
            return (
                np.empty((0, depth), dtype=np.int32),
                np.empty(0, dtype=float),
            )
        # Dividing by the same level total OrderingSpace.__init__ uses
        # keeps the normalized masses bit-identical to the eager path.
        return np.vstack(paths), np.asarray(masses, dtype=float) / total

    # ------------------------------------------------------------------
    # Structural updates (used by the incremental algorithm)
    # ------------------------------------------------------------------

    def renormalize(self) -> None:
        """Rescale leaf masses to sum to 1; recompute internal masses."""
        if not self.levels:
            return
        top = self.levels[-1]
        total = float(top.probs.sum())
        if total <= 0:
            raise DegenerateSpaceError("tree has zero mass after pruning")
        top.probs = top.probs / total
        self._recompute_internal()

    def _recompute_internal(self) -> None:
        """Set every internal level's masses to its children's sums.

        One ``bincount`` per level from the leaves up; interior nodes
        whose entire subtree was pruned away end up with mass 0.
        """
        for depth in range(self.built_depth - 1, 0, -1):
            child = self.levels[depth]
            self.levels[depth - 1].probs = np.bincount(
                child.parent_idx,
                weights=child.probs,
                minlength=self.levels[depth - 1].width,
            )

    def prune_with_answer(self, i: int, j: int, holds: bool) -> int:
        """Remove subtrees whose prefix contradicts the answer ``t_i ?≺ t_j``.

        A prefix contradicts ``t_i ≺ t_j`` as soon as ``t_j`` appears while
        ``t_i`` has not appeared earlier — any completion would rank ``t_j``
        higher.  Works on partially built trees; remaining mass is
        renormalized.  Returns the number of removed nodes.

        Vectorized: alive/winner-seen masks propagate down the level
        tables through one ``parent_idx`` gather per level, then each
        level is compacted and its parent indices remapped.

        Atomic: a contradictory answer raises *before* any node is
        removed, so callers that swallow the error keep a usable tree (a
        half-pruned zero-mass tree used to crash the ``incr`` replay
        loop much later, in an unguarded ``renormalize``).
        """
        winner, loser = (i, j) if holds else (j, i)
        if not self.levels:
            return 0

        alive_masks: List[np.ndarray] = []
        parent_alive = np.ones(1, dtype=bool)
        parent_seen = np.zeros(1, dtype=bool)
        for level in self.levels:
            p_alive = parent_alive[level.parent_idx]
            p_seen = parent_seen[level.parent_idx]
            killed = (level.tuple_ids == loser) & ~p_seen
            alive = p_alive & ~killed
            alive_masks.append(alive)
            parent_alive = alive
            parent_seen = p_seen | (level.tuple_ids == winner)

        total = float(self.levels[-1].probs.sum())
        surviving = float(self.levels[-1].probs[alive_masks[-1]].sum())
        if surviving <= 0.0:
            raise DegenerateSpaceError(
                f"answer t{winner} ≺ t{loser} contradicts every ordering"
            )
        if self.lost_mass > 0.0 and total > 0.0:
            # The beam-dropped mass may be entirely consistent with the
            # answer, so conditioning can only inflate its share.
            self.lost_mass = conditioned_lost_mass(
                self.lost_mass, surviving / total
            )

        removed = int(sum(int((~mask).sum()) for mask in alive_masks))
        if removed:
            index_map: Optional[np.ndarray] = None
            for level, alive in zip(self.levels, alive_masks, strict=True):
                parent = (
                    level.parent_idx
                    if index_map is None
                    else index_map[level.parent_idx]
                )
                keep = np.flatnonzero(alive)
                index_map = np.full(alive.size, -1, dtype=np.intp)
                index_map[keep] = np.arange(keep.size)
                level.tuple_ids = level.tuple_ids[keep]
                level.parent_idx = parent[keep]
                level.probs = level.probs[keep]
            # Frontier-aligned engine payloads must follow the compaction.
            cache = self.engine_cache
            if cache is not None and hasattr(cache, "prune_frontier"):
                cache.prune_frontier(alive_masks[-1], index_map)
        self.renormalize()
        return removed

    def reweight_with_answer(
        self, i: int, j: int, holds: bool, accuracy: float
    ) -> None:
        """Noisy-answer Bayesian reweighting on the materialized leaves.

        Mirrors :meth:`OrderingSpace.reweight_by_answer` but acts in place
        on the tree, so the ``incr`` algorithm can keep extending it.
        """
        if not self.levels:
            return
        paths = self.paths_at_depth(self.built_depth)
        codes = _prefix_agreement_codes(paths, i, j)
        agree_value = 1 if holds else -1
        weights = np.where(
            codes == agree_value,
            accuracy,
            np.where(codes == 0, 0.5, 1.0 - accuracy),
        )
        top = self.levels[-1]
        if self.lost_mass > 0.0:
            # Worst case the dropped mass carried the largest weight.
            total = float(top.probs.sum())
            reweighted = float((top.probs * weights).sum())
            w_max = max(accuracy, 1.0 - accuracy)
            if total > 0.0 and w_max > 0.0:
                self.lost_mass = conditioned_lost_mass(
                    self.lost_mass, reweighted / (total * w_max)
                )
        top.probs = top.probs * weights
        self.renormalize()

    # ------------------------------------------------------------------

    def validate(self, tolerance: float = 1e-6) -> None:
        """Check structural invariants; raises :class:`AssertionError`.

        Invariants: every materialized level's mass is ~1; children masses
        never exceed their parent's (up to tolerance); parent indices are
        in range and non-decreasing; no tuple repeats along a path.
        """
        for depth in range(1, self.built_depth + 1):
            mass = self.level_mass(depth)
            assert abs(mass - 1.0) <= tolerance, (
                f"level {depth} mass {mass} differs from 1"
            )
        for depth, level in enumerate(self.levels, start=1):
            parent_width = self.levels[depth - 2].width if depth > 1 else 1
            if level.width:
                assert 0 <= level.parent_idx.min(), "negative parent index"
                assert level.parent_idx.max() < parent_width, (
                    f"level {depth} parent index out of range"
                )
                assert not np.any(np.diff(level.parent_idx) < 0), (
                    f"level {depth} is not parent-major"
                )
            if depth > 1:
                child_sums = np.bincount(
                    level.parent_idx,
                    weights=level.probs,
                    minlength=parent_width,
                )
                parents = self.levels[depth - 2].probs
                assert np.all(child_sums <= parents + tolerance), (
                    f"level {depth} children mass exceeds parents"
                )
            paths = self.paths_at_depth(depth)
            ordered = np.sort(paths, axis=1)
            assert not np.any(ordered[:, 1:] == ordered[:, :-1]), (
                f"a depth-{depth} path repeats a tuple"
            )

    def __repr__(self) -> str:
        return (
            f"TPOTree(n={self.n_tuples}, k={self.k}, "
            f"built={self.built_depth}, orderings={self.ordering_count()})"
        )


def _prefix_agreement_codes(
    paths: np.ndarray, i: int, j: int
) -> np.ndarray:
    """+1 / −1 / 0 stance of each prefix row on ``t_i ≺ t_j``.

    Absent tuples rank strictly below present ones — the top-K prefix
    semantics of :meth:`OrderingSpace.agreement_codes`.
    """
    depth = paths.shape[1]
    pi = np.where(paths == i, np.arange(depth), depth).min(axis=1)
    pj = np.where(paths == j, np.arange(depth), depth).min(axis=1)
    return np.where(pi < pj, 1, np.where(pj < pi, -1, 0)).astype(np.int8)


__all__ = ["TPOTree", "TPOLevel"]
