"""The tree of possible orderings (TPO) ``T_K``.

The tree is the *construction* view of the ordering space: builders grow it
level by level (which the ``incr`` algorithm exploits), structural pruning
applies crowd answers to partially built trees, and
:meth:`TPOTree.to_space` flattens the current leaves into the vectorized
:class:`~repro.tpo.space.OrderingSpace` that policies and uncertainty
measures consume.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.distributions.base import ScoreDistribution
from repro.tpo.node import ROOT_TUPLE, TPONode
from repro.tpo.space import DegenerateSpaceError, OrderingSpace


class TPOTree:
    """A (possibly partially built) tree of possible orderings.

    Parameters
    ----------
    distributions:
        Score distributions of the N tuples; index = tuple identity.
    k:
        Target depth (the K of the top-K query).
    """

    def __init__(
        self, distributions: Sequence[ScoreDistribution], k: int
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not distributions:
            raise ValueError("need at least one tuple")
        self.distributions = list(distributions)
        self.k = min(k, len(self.distributions))
        self.root = TPONode(ROOT_TUPLE, 1.0)
        #: Depth to which the tree has been materialized so far.
        self.built_depth = 0
        #: Engine-managed numeric context (set by the builder in use).
        self.engine_cache = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_tuples(self) -> int:
        """Universe size N."""
        return len(self.distributions)

    @property
    def is_complete(self) -> bool:
        """True once all K levels are materialized."""
        return self.built_depth >= self.k

    def iter_nodes(self) -> Iterator[TPONode]:
        """All nodes except the synthetic root (pre-order)."""
        for node in self.root.iter_subtree():
            if not node.is_root:
                yield node

    def nodes_at_depth(self, depth: int) -> List[TPONode]:
        """All nodes at exactly ``depth`` (1-based levels)."""
        current = [self.root]
        for _ in range(depth):
            current = [child for node in current for child in node.children]
        return current

    def leaves(self) -> List[TPONode]:
        """Deepest materialized nodes (= paths of the current space)."""
        return self.nodes_at_depth(self.built_depth)

    def node_count(self) -> int:
        """Number of non-root nodes."""
        return sum(1 for _ in self.iter_nodes())

    def ordering_count(self) -> int:
        """Number of possible orderings currently represented."""
        return len(self.leaves())

    def level_mass(self, depth: int) -> float:
        """Total probability mass at ``depth`` (≈1 up to numeric error)."""
        return float(sum(n.probability for n in self.nodes_at_depth(depth)))

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------

    def to_space(self) -> OrderingSpace:
        """Flatten current leaves into an :class:`OrderingSpace`."""
        if self.built_depth == 0:
            raise ValueError("tree has no materialized levels yet")
        leaves = self.leaves()
        paths = np.array([leaf.prefix() for leaf in leaves], dtype=np.int32)
        probs = np.array([leaf.probability for leaf in leaves], dtype=float)
        return OrderingSpace(paths, probs, self.n_tuples)

    # ------------------------------------------------------------------
    # Structural updates (used by the incremental algorithm)
    # ------------------------------------------------------------------

    def renormalize(self) -> None:
        """Rescale leaf masses to sum to 1; recompute internal masses."""
        leaves = self.leaves()
        total = sum(leaf.probability for leaf in leaves)
        if total <= 0:
            raise DegenerateSpaceError("tree has zero mass after pruning")
        for leaf in leaves:
            leaf.probability /= total
        self._recompute_internal()

    def _recompute_internal(self) -> None:
        """Set every internal node's mass to the sum of its children."""

        def recurse(node: TPONode, depth: int) -> float:
            if depth == self.built_depth or node.is_leaf:
                return node.probability
            node.probability = sum(
                recurse(child, depth + 1) for child in node.children
            )
            return node.probability

        recurse(self.root, 0)
        self.root.probability = 1.0

    def prune_with_answer(self, i: int, j: int, holds: bool) -> int:
        """Remove subtrees whose prefix contradicts the answer ``t_i ?≺ t_j``.

        A prefix contradicts ``t_i ≺ t_j`` as soon as ``t_j`` appears while
        ``t_i`` has not appeared earlier — any completion would rank ``t_j``
        higher.  Works on partially built trees; remaining mass is
        renormalized.  Returns the number of removed nodes.

        Atomic: a contradictory answer raises *before* any node is
        removed, so callers that swallow the error keep a usable tree (a
        half-pruned zero-mass tree used to crash the ``incr`` replay
        loop much later, in an unguarded ``renormalize``).
        """
        winner, loser = (i, j) if holds else (j, i)

        def surviving_mass(node: TPONode, winner_seen: bool, depth: int) -> float:
            if depth == self.built_depth:
                return node.probability
            total = 0.0
            for child in node.children:
                if child.tuple_index == loser and not winner_seen:
                    continue
                total += surviving_mass(
                    child, winner_seen or child.tuple_index == winner, depth + 1
                )
            return total

        if (
            self.built_depth > 0
            and surviving_mass(self.root, False, 0) <= 0.0
        ):
            raise DegenerateSpaceError(
                f"answer t{winner} ≺ t{loser} contradicts every ordering"
            )

        def recurse(node: TPONode, winner_seen: bool) -> int:
            count = 0
            for child in list(node.children):
                if child.tuple_index == loser and not winner_seen:
                    count += sum(1 for _ in child.iter_subtree())
                    node.remove_child(child)
                    continue
                count += recurse(
                    child, winner_seen or child.tuple_index == winner
                )
            return count

        removed = recurse(self.root, False)
        self.renormalize()
        return removed

    def reweight_with_answer(
        self, i: int, j: int, holds: bool, accuracy: float
    ) -> None:
        """Noisy-answer Bayesian reweighting on the materialized leaves.

        Mirrors :meth:`OrderingSpace.reweight_by_answer` but acts in place
        on the tree, so the ``incr`` algorithm can keep extending it.
        """
        agree_value = 1 if holds else -1
        for leaf in self.leaves():
            prefix = leaf.prefix()
            code = _prefix_agreement(prefix, i, j)
            if code == agree_value:
                weight = accuracy
            elif code == 0:
                weight = 0.5
            else:
                weight = 1.0 - accuracy
            leaf.probability *= weight
        self.renormalize()

    # ------------------------------------------------------------------

    def validate(self, tolerance: float = 1e-6) -> None:
        """Check structural invariants; raises :class:`AssertionError`.

        Invariants: every materialized level's mass is ~1; children masses
        never exceed their parent's (up to tolerance); no tuple repeats
        along a path.
        """
        for depth in range(1, self.built_depth + 1):
            mass = self.level_mass(depth)
            assert abs(mass - 1.0) <= tolerance, (
                f"level {depth} mass {mass} differs from 1"
            )
        for node in self.iter_nodes():
            if node.children:
                child_mass = sum(c.probability for c in node.children)
                assert child_mass <= node.probability + tolerance, (
                    f"children mass {child_mass} exceeds parent "
                    f"{node.probability}"
                )
            prefix = node.prefix()
            assert len(set(prefix)) == len(prefix), (
                f"path {prefix} repeats a tuple"
            )

    def __repr__(self) -> str:
        return (
            f"TPOTree(n={self.n_tuples}, k={self.k}, "
            f"built={self.built_depth}, orderings={self.ordering_count()})"
        )


def _prefix_agreement(prefix: Tuple[int, ...], i: int, j: int) -> int:
    """+1 / −1 / 0 stance of a prefix on ``t_i ≺ t_j`` (cf. OrderingSpace)."""
    try:
        pi = prefix.index(i)
    except ValueError:
        pi = None
    try:
        pj = prefix.index(j)
    except ValueError:
        pj = None
    if pi is None and pj is None:
        return 0
    if pj is None:
        return 1
    if pi is None:
        return -1
    return 1 if pi < pj else -1


__all__ = ["TPOTree"]
